#!/usr/bin/env python3
"""Append ``BENCH_*.json`` reports to the benchmark regression ledger.

Normalizes every numeric leaf of each report into one
:class:`repro.obs.history.BenchRecord` line and appends it to
``benchmarks/history/<bench>.jsonl`` — the append-only, committed
history that ``tools/bench_diff.py`` judges new runs against.

This is the only place ledger lines gain their ``created`` wall-clock
stamp: record *identity* (bench/case/metric/value) stays a pure
function of the report, the stamp is annotation (and ``--no-stamp``
drops it for byte-reproducible ledger writes, as used by tests).

Usage::

    python tools/bench_history.py [REPORT.json ...]
        [--results-dir benchmarks/results] [--history-dir benchmarks/history]
        [--context KEY=VALUE ...] [--no-stamp]

With no explicit reports, every ``BENCH_*.json`` under the results
directory is ingested.  Requires ``repro`` importable (PYTHONPATH=src).
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.history import append_records, records_from_report  # noqa: E402

__all__ = ["main"]


def _parse_context(specs: Sequence[str]) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for spec in specs:
        if "=" not in spec:
            raise SystemExit(f"--context expects KEY=VALUE (got {spec!r})")
        key, value = spec.split("=", 1)
        out[key] = value
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="append BENCH_*.json reports to benchmarks/history/"
    )
    parser.add_argument("reports", nargs="*", type=Path,
                        help="report files (default: scan --results-dir)")
    parser.add_argument("--results-dir", type=Path,
                        default=REPO_ROOT / "benchmarks" / "results")
    parser.add_argument("--history-dir", type=Path,
                        default=REPO_ROOT / "benchmarks" / "history")
    parser.add_argument("--context", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="context label stamped on every record"
                             " (repeatable)")
    parser.add_argument("--no-stamp", action="store_true",
                        help="omit the created timestamp (byte-"
                             "reproducible ledger lines)")
    args = parser.parse_args(argv)

    reports: List[Path] = list(args.reports) or sorted(
        args.results_dir.glob("BENCH_*.json")
    )
    if not reports:
        print(f"no BENCH_*.json reports under {args.results_dir}",
              file=sys.stderr)
        return 1
    context = _parse_context(args.context)
    created = (
        None if args.no_stamp
        else datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    )
    total = 0
    for path in reports:
        report = json.loads(path.read_text(encoding="utf-8"))
        records = records_from_report(
            report, context=context, created=created
        )
        if not records:
            print(f"{path}: no numeric metrics, skipped")
            continue
        bench = records[0].bench
        ledger = args.history_dir / f"{bench}.jsonl"
        count = append_records(ledger, records)
        total += count
        print(f"{path} -> {ledger}: {count} record(s) appended")
    print(f"{total} record(s) appended across {len(reports)} report(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
