"""Validate a benchmark ledger file against the checked-in schema.

Thin front-end over :mod:`validate_trace`'s dependency-free JSON-Schema
subset, defaulting to ``tools/schemas/bench_record.schema.json`` — the
contract for ``benchmarks/history/*.jsonl`` ledgers written by
``tools/bench_history.py`` via :mod:`repro.obs.history`.

Usage (CI and tests)::

    python tools/validate_bench_record.py LEDGER.jsonl [SCHEMA.json]

Exit status 0 when every line validates, 1 otherwise (errors on stderr).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional, Sequence, Tuple

from validate_trace import validate_trace_file

__all__ = ["main"]

DEFAULT_SCHEMA = Path(__file__).parent / "schemas" / "bench_record.schema.json"


def main(argv: Optional[Sequence[str]] = None) -> int:
    args: Tuple[str, ...] = tuple(sys.argv[1:] if argv is None else argv)
    if not 1 <= len(args) <= 2:
        print(
            "usage: validate_bench_record.py LEDGER.jsonl [SCHEMA.json]",
            file=sys.stderr,
        )
        return 2
    ledger = Path(args[0])
    schema = Path(args[1]) if len(args) == 2 else DEFAULT_SCHEMA
    errors = validate_trace_file(ledger, schema)
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"{ledger}: OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
