"""Validate a repro.obs JSONL trace against the checked-in JSON Schema.

A dependency-free validator implementing exactly the JSON-Schema subset
the checked-in schemas use — ``type`` (including union lists), ``enum``,
``minimum``, ``required``, ``properties``, ``additionalProperties``
(boolean or sub-schema), ``items`` (single-schema form), ``minItems`` /
``maxItems``, and ``oneOf``.  The container image
pins its dependency set, so pulling in the ``jsonschema`` package is not
an option; this keeps CI able to verify the export contract anyway.

Usage (CI and tests)::

    python tools/validate_trace.py TRACE.jsonl [SCHEMA.json]

Exit status 0 when every line validates, 1 otherwise (errors on stderr).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["validate", "validate_trace_file", "main"]

DEFAULT_SCHEMA = Path(__file__).parent / "schemas" / "trace_event.schema.json"


def _type_ok(value: Any, name: str) -> bool:
    # bool is an int subclass in Python; JSON Schema keeps them distinct
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(
            value, bool
        )
    if name == "string":
        return isinstance(value, str)
    if name == "boolean":
        return isinstance(value, bool)
    if name == "null":
        return value is None
    if name == "object":
        return isinstance(value, dict)
    if name == "array":
        return isinstance(value, list)
    raise ValueError(f"unsupported schema type {name!r}")


def validate(
    instance: Any, schema: Dict[str, Any], path: str = "$"
) -> Iterator[str]:
    """Yield one message per violation of ``schema`` by ``instance``."""
    stype = schema.get("type")
    if stype is not None:
        names = stype if isinstance(stype, list) else [stype]
        if not any(_type_ok(instance, n) for n in names):
            yield (
                f"{path}: expected type {'|'.join(names)},"
                f" got {type(instance).__name__}"
            )
            return  # further keyword checks assume the right type
    if "enum" in schema and instance not in schema["enum"]:
        yield f"{path}: {instance!r} not in enum {schema['enum']}"
    if "minimum" in schema and _type_ok(instance, "number"):
        if instance < schema["minimum"]:
            yield f"{path}: {instance!r} below minimum {schema['minimum']}"
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            yield f"{path}: fewer than {schema['minItems']} items"
        if "maxItems" in schema and len(instance) > schema["maxItems"]:
            yield f"{path}: more than {schema['maxItems']} items"
        if "items" in schema:
            for i, item in enumerate(instance):
                yield from validate(item, schema["items"], f"{path}[{i}]")
    if "oneOf" in schema:
        matched = sum(
            1
            for sub in schema["oneOf"]
            if not list(validate(instance, sub, path))
        )
        if matched != 1:
            yield (
                f"{path}: matched {matched} of {len(schema['oneOf'])}"
                " oneOf branches (need exactly 1)"
            )
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                yield f"{path}: missing required property {key!r}"
        props: Dict[str, Any] = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                yield from validate(value, props[key], f"{path}.{key}")
            elif extra is False:
                yield f"{path}: unexpected property {key!r}"
            elif isinstance(extra, dict):
                yield from validate(value, extra, f"{path}.{key}")


def validate_trace_file(
    trace_path: Path, schema_path: Optional[Path] = None
) -> List[str]:
    """All violations in a JSONL trace file (empty list = valid)."""
    schema = json.loads(
        (schema_path or DEFAULT_SCHEMA).read_text(encoding="utf-8")
    )
    errors: List[str] = []
    with open(trace_path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            errors.extend(
                f"line {lineno}: {msg}"
                for msg in validate(event, schema)
            )
    return errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    args: Tuple[str, ...] = tuple(sys.argv[1:] if argv is None else argv)
    if not 1 <= len(args) <= 2:
        print(
            "usage: validate_trace.py TRACE.jsonl [SCHEMA.json]",
            file=sys.stderr,
        )
        return 2
    trace = Path(args[0])
    schema = Path(args[1]) if len(args) == 2 else None
    errors = validate_trace_file(trace, schema)
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"{trace}: OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
