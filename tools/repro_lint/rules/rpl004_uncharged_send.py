"""RPL004 — wire copies that never touch the LogP meter.

Every byte that crosses ranks must be *charged*: the sender pays
``o + max(g, words*G)`` and the receiver pays latency + overhead on the
modeled clock (``Cluster.charge_comm_words`` / ``Worker.add_comm``).  A
code path that calls a delivery primitive (``receive_rows`` /
``receive_packet``) on another worker without charging in the same
function silently teleports data — the anytime-anywhere cost accounting
that the paper's speedup claims rest on becomes an undercount.

Heuristic: inside ``runtime/`` (the wire package), any function whose
body invokes a send primitive on a receiver *other than bare* ``self``
must also invoke one of the charge primitives somewhere in the same
body.  Calls on ``self`` are the worker's own intake path, which the
remote caller already priced.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..core import FileContext, Finding, LintRule, Registry


def _is_bare_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _function_nodes(
    tree: ast.Module,
) -> Iterator["ast.FunctionDef | ast.AsyncFunctionDef"]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_body_calls(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> List[ast.Call]:
    """Calls in ``fn``'s body, excluding nested function/class bodies."""
    out: List[ast.Call] = []
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


@Registry.register
class UnchargedSendRule(LintRule):
    code = "RPL004"
    name = "uncharged-wire-copy"
    description = (
        "a function that delivers a payload to another worker"
        " (receive_rows/receive_packet on a non-self receiver) must"
        " charge the modeled LogP clock in the same body"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.in_wire_package(ctx.path):
            return
        sends = set(ctx.config.send_primitives)
        charges = set(ctx.config.charge_primitives)
        for fn in _function_nodes(ctx.tree):
            calls = _own_body_calls(fn)
            send_sites = [
                c
                for c in calls
                if isinstance(c.func, ast.Attribute)
                and c.func.attr in sends
                and not _is_bare_self(c.func.value)
            ]
            if not send_sites:
                continue
            charged = any(
                isinstance(c.func, ast.Attribute) and c.func.attr in charges
                for c in calls
            )
            if charged:
                continue
            for site in send_sites:
                assert isinstance(site.func, ast.Attribute)
                yield ctx.finding(
                    site,
                    self.code,
                    f"{site.func.attr}() hands a payload to another rank"
                    f" but {fn.name}() never charges the LogP clock"
                    " (charge_comm_words/add_comm); the copy is free on"
                    " the modeled timeline",
                )
