"""RPL002 — nondeterministic iteration order.

In the order-sensitive packages (``runtime/``, ``partition/``,
``core/``) the iteration order of many loops *is* the message order, the
rank order, or the partition assignment order: boundary-exchange packets
are priced and delivered in loop order, placement strategies assign
ranks in loop order, and the chaos injector consumes one seeded RNG draw
per packet **in packet order** — so an order flip silently re-maps which
packet gets lost, destroying byte-identical fault traces even though
every individual draw is seeded.

Python ``set``/``frozenset`` iteration order depends on insertion
history and element hashes (and, for strings, on ``PYTHONHASHSEED``), so
iterating one in these packages is a reproducibility hazard.  The rule
tracks set-ness through local assignments, annotations (including
``Dict[..., Set[...]]`` lookups), and set operators, and flags

* ``for x in <set-like>`` loops and comprehensions, and
* ``list(<set-like>)`` / ``tuple(<set-like>)`` / ``enumerate(<set-like>)``
  materializations,

unless the iterable is first passed through ``sorted(...)``.  Loops
whose body is genuinely order-independent can carry a
``# repro-lint: disable=RPL002`` pragma with a justification.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from ..core import FileContext, Finding, LintRule, Registry

_SET_ANN = re.compile(r"^(typing\.)?(AbstractSet|Set|FrozenSet|set|frozenset)\b")
_SET_VALUED_MAP_ANN = re.compile(
    r"^(typing\.)?(Dict|dict|Mapping|MutableMapping|DefaultDict|defaultdict)"
    r"\[.*?(AbstractSet|Set|FrozenSet|set|frozenset)\["
)
_SET_CONTAINER_ANN = re.compile(
    r"^(typing\.)?(List|list|Sequence|Tuple|tuple)"
    r"\[.*?(AbstractSet|Set|FrozenSet|set|frozenset)\["
)

_SET_RETURNING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}

_SET_OPERATORS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: consumers whose result does not depend on the argument's iteration
#: order — a generator expression fed directly into one of these may
#: iterate a set freely
_ORDER_INSENSITIVE = {
    "sorted",
    "set",
    "frozenset",
    "sum",
    "min",
    "max",
    "len",
    "any",
    "all",
}


def _ann_kind(annotation: Optional[ast.expr]) -> Optional[str]:
    if annotation is None:
        return None
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return None
    text = text.replace('"', "").replace("'", "").strip()
    if text.startswith("Optional["):
        text = text[len("Optional[") : -1]
    if _SET_ANN.match(text):
        return "set"
    if _SET_VALUED_MAP_ANN.match(text):
        return "set_map"
    if _SET_CONTAINER_ANN.match(text):
        return "set_container"
    return None


class _AttrInfo:
    """Module-wide attribute classification from annotations/assignments."""

    def __init__(self, tree: ast.Module) -> None:
        self.sets: Set[str] = set()
        self.set_maps: Set[str] = set()
        self.set_containers: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Attribute
            ):
                self._record(node.target.attr, _ann_kind(node.annotation))

    def _record(self, name: str, kind: Optional[str]) -> None:
        if kind == "set":
            self.sets.add(name)
        elif kind == "set_map":
            self.set_maps.add(name)
        elif kind == "set_container":
            self.set_containers.add(name)


class _Scope:
    def __init__(self) -> None:
        self.sets: Set[str] = set()
        self.set_maps: Set[str] = set()
        self.set_containers: Set[str] = set()


class _Taint:
    """Light intra-function taint: which expressions are set-valued."""

    def __init__(self, attrs: _AttrInfo) -> None:
        self.attrs = attrs
        self.scopes: List[_Scope] = [_Scope()]

    # ------------------------------------------------------------------
    @property
    def scope(self) -> _Scope:
        return self.scopes[-1]

    def _lookup(self, name: str, field: str) -> bool:
        return any(name in getattr(s, field) for s in reversed(self.scopes))

    # ------------------------------------------------------------------
    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._lookup(node.id, "sets")
        if isinstance(node, ast.Attribute):
            return node.attr in self.attrs.sets
        if isinstance(node, ast.Subscript):
            return self.is_set_map(node.value) or self.is_set_container(
                node.value
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, _SET_OPERATORS
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body) or self.is_set(node.orelse)
        if isinstance(node, ast.BoolOp):
            return any(self.is_set(v) for v in node.values)
        if isinstance(node, ast.Call):
            return self._call_is_set(node)
        return False

    def is_set_map(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return self._lookup(node.id, "set_maps")
        if isinstance(node, ast.Attribute):
            return node.attr in self.attrs.set_maps
        return False

    def is_set_container(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return self._lookup(node.id, "set_containers")
        if isinstance(node, ast.Attribute):
            return node.attr in self.attrs.set_containers
        return False

    def _call_is_set(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_RETURNING_METHODS and self.is_set(
                func.value
            ):
                return True
            # dict.fromkeys(set_like) iterates in the set's order
            if (
                func.attr == "fromkeys"
                and node.args
                and self.is_set(node.args[0])
            ):
                return True
            # d.get(k, default) on a Dict[..., Set[...]]
            if func.attr == "get" and self.is_set_map(func.value):
                return True
            if func.attr == "pop" and self.is_set_map(func.value):
                return True
            if func.attr == "setdefault" and self.is_set_map(func.value):
                return True
            if func.attr == "copy" and self.is_set(func.value):
                return True
        return False

    # ------------------------------------------------------------------
    # assignment tracking
    # ------------------------------------------------------------------
    def _classify_value(self, value: ast.expr) -> Optional[str]:
        if self.is_set(value):
            return "set"
        if isinstance(value, ast.ListComp) and self.is_set(value.elt):
            return "set_container"
        if isinstance(value, (ast.List, ast.Tuple)) and value.elts and all(
            self.is_set(e) for e in value.elts
        ):
            return "set_container"
        return None

    def _bind(self, name: str, kind: Optional[str]) -> None:
        scope = self.scope
        scope.sets.discard(name)
        scope.set_maps.discard(name)
        scope.set_containers.discard(name)
        if kind == "set":
            scope.sets.add(name)
        elif kind == "set_map":
            scope.set_maps.add(name)
        elif kind == "set_container":
            scope.set_containers.add(name)

    def assign(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if not isinstance(target, ast.Name) or value is None:
            return
        self._bind(target.id, self._classify_value(value))

    def ann_assign(self, node: ast.AnnAssign) -> None:
        kind = _ann_kind(node.annotation)
        if isinstance(node.target, ast.Name):
            if kind is None and node.value is not None:
                kind = self._classify_value(node.value)
            self._bind(node.target.id, kind)

    def bind_arg(self, arg: ast.arg) -> None:
        kind = _ann_kind(arg.annotation)
        if kind is not None:
            self._bind(arg.arg, kind)


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext, rule: "SetIterationRule") -> None:
        self.ctx = ctx
        self.rule = rule
        self.taint = _Taint(_AttrInfo(ctx.tree))
        self.findings: List[Finding] = []
        self._exempt: Set[int] = set()

    # ------------------------------------------------------------------
    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.ctx.finding(
                node,
                self.rule.code,
                f"{what} iterates in hash/insertion-dependent order in an"
                " order-sensitive package; wrap it in sorted(...) or"
                " justify with a disable pragma",
            )
        )

    def _check_iter(self, iter_node: ast.expr) -> None:
        if self.taint.is_set(iter_node):
            self._flag(iter_node, "iterating a set here")

    # ------------------------------------------------------------------
    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self.taint.scopes.append(_Scope())
        args = node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            self.taint.bind_arg(arg)
        self.generic_visit(node)
        self.taint.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    # ------------------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self.taint.assign(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        self.taint.ann_assign(node)

    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, generators: List[ast.comprehension]) -> None:
        for gen in generators:
            self._check_iter(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        if id(node) not in self._exempt:
            self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    # set comprehensions over sets produce sets again — the *result* is
    # flagged wherever its order is consumed, so the comprehension body
    # itself is exempt (order inside a set build cannot leak)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_INSENSITIVE:
            # sorted(v for v in some_set) is fine: the consumer imposes
            # (or ignores) order, so the set's order cannot leak
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    self._exempt.add(id(arg))
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple", "enumerate")
            and len(node.args) == 1
            and self.taint.is_set(node.args[0])
        ):
            self._flag(node, f"{func.id}() over a set")
        self.generic_visit(node)


@Registry.register
class SetIterationRule(LintRule):
    code = "RPL002"
    name = "nondeterministic-iteration"
    description = (
        "set/frozenset iteration order feeds rank, message, or partition"
        " order in runtime/, partition/ and core/; iterate sorted(...)"
        " instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.is_order_sensitive(ctx.path):
            return
        visitor = _Visitor(ctx, self)
        visitor.visit(ctx.tree)
        yield from visitor.findings
