"""Rule modules; importing this package populates the registry."""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effects)
    rpl001_unseeded_random,
    rpl002_set_iteration,
    rpl003_wall_clock,
    rpl004_uncharged_send,
    rpl005_overbroad_except,
    rpl006_bare_print,
    rpl007_wall_clock_backoff,
    rpl008_seed_lineage,
    rpl009_charge_coverage,
    rpl010_phase_discipline,
)
