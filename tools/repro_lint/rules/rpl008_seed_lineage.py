"""RPL008 — seed lineage (whole-program).

RPL001 proves every RNG constructor receives *some* seed; RPL008 proves
the seed is the right one.  The determinism contract requires every
stream to be derived from ``AnytimeConfig.seed`` (or a documented
derived stream such as the per-worker sub-seeds), because a constant
seed buried three calls deep gives two *different* configurations
identical randomness — the partitioner stops responding to ``--seed``
and the chaos suite silently tests one fault schedule forever.

Three complementary checks share the :class:`SeedLineage` dataflow:

1. an RNG/bit-generator construction whose seed expression is not
   seed-derived;
2. any call passing a non-derived value to a ``seed=`` keyword — this
   catches dataclass constructors (``MultilevelPartitioner(seed=1)``)
   whose synthesised ``__init__`` the call graph cannot see;
3. a positional/keyword binding of a non-derived value to a seed-named
   parameter of a *resolved* project function.

A literal ``None`` seed is RPL001's finding, not ours.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..callgraph import FunctionInfo, ModuleInfo, ProjectContext
from ..core import Finding, ProjectRule, Registry
from ..dataflow import _rng_seed_argument, lineage_for
from ..summaries import _expr_bindings
from .rpl001_unseeded_random import _SEEDABLE


def _canonical(module: ModuleInfo, expr: ast.expr) -> Optional[str]:
    """Dotted call-target name through the module's import aliases."""
    parts: List[str] = []
    cur = expr
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    parts.reverse()
    head = parts[0]
    if head in module.module_aliases:
        parts[0] = module.module_aliases[head]
    elif head in module.symbol_aliases:
        parts[0] = module.symbol_aliases[head]
    return ".".join(parts)


def _is_none(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is None


@Registry.register
class SeedLineageRule(ProjectRule):
    code = "RPL008"
    name = "seed-lineage"
    description = (
        "every RNG stream must be data-flow-derived from the config"
        " seed (or a documented derived stream); constant or ad-hoc"
        " seeds make 'identical' runs diverge from the --seed contract"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        lineage = lineage_for(project)
        flagged: Set[int] = set()
        for key in sorted(project.functions):
            fn = project.functions[key]
            if not project.config.in_target(fn.path):
                continue
            module = project.modules[fn.module]
            for site in project.call_sites.get(key, []):
                yield from self._check_site(
                    project, lineage, module, fn, site.node,
                    site.targets, flagged,
                )

    # ------------------------------------------------------------------
    def _check_site(
        self,
        project: ProjectContext,
        lineage,
        module: ModuleInfo,
        fn: FunctionInfo,
        call: ast.Call,
        targets: Tuple[str, ...],
        flagged: Set[int],
    ) -> Iterator[Finding]:
        # 1. RNG constructions with an underived seed
        canonical = _canonical(module, call.func)
        if canonical in _SEEDABLE:
            seed_arg = _rng_seed_argument(call)
            if (
                seed_arg is not None
                and not _is_none(seed_arg)
                and not lineage.is_derived(fn, seed_arg)
            ):
                flagged.add(id(call))
                yield self.finding_at(
                    fn.path,
                    call,
                    self.code,
                    f"{canonical}() in {fn.qualname} is seeded with a"
                    " value not derived from the config seed; derive it"
                    " from AnytimeConfig.seed (or register a documented"
                    " stream) so --seed controls every RNG",
                )
            return  # a constructor site needs no further checks
        if id(call) in flagged:
            return
        # 2. seed= keywords anywhere (covers dataclass constructors)
        for kw in call.keywords:
            if (
                kw.arg is not None
                and lineage.is_seed_param(kw.arg)
                and not _is_none(kw.value)
                and not lineage.is_derived(fn, kw.value)
            ):
                flagged.add(id(call))
                yield self.finding_at(
                    fn.path,
                    call,
                    self.code,
                    f"call in {fn.qualname} passes a value not derived"
                    f" from the config seed to '{kw.arg}='; every seed"
                    " argument must trace back to AnytimeConfig.seed",
                )
                return
        # 3. positional bindings to seed-named params of resolved callees
        for tgt in targets:
            callee = project.functions.get(tgt)
            if callee is None:
                continue
            for expr, param in _expr_bindings(call, callee):
                if not lineage.is_seed_param(param):
                    continue
                if _is_none(expr) or lineage.is_derived(fn, expr):
                    continue
                flagged.add(id(call))
                yield self.finding_at(
                    fn.path,
                    call,
                    self.code,
                    f"call to {callee.qualname} in {fn.qualname} passes"
                    f" a value not derived from the config seed as"
                    f" '{param}'; every seed argument must trace back"
                    " to AnytimeConfig.seed",
                )
                return
