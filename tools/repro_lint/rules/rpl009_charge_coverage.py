"""RPL009 — LogP charge coverage (whole-program).

RPL004 flags a send primitive with no charge *in the same body* —
sound only for straight-line code.  The runtime increasingly factors
exchange paths into helpers (``_exchange_with_chaos``, recovery
re-sends, speculative re-execution), where the charge legitimately
lives in the caller or in a callee.  RPL009 checks the property that
actually matters: **every call path from an entry point to a payload
copy passes a LogP charge**.

Using the effect summaries, a send site inside function ``f`` is
covered when either

* ``f`` *may charge* — its own body or any transitively reachable
  callee charges the modeled clock (least fixpoint), or
* every caller of ``f`` (transitively, greatest fixpoint) may charge —
  the charge precedes the send further up the stack.

Anything else means some execution path ships words for free, and the
modeled-time results in the paper's LogP comparison become silently
optimistic.  Path-insensitivity is deliberate: a function that charges
*somewhere* is treated as covered, matching RPL004's contract.
"""

from __future__ import annotations

from typing import Iterator

from ..callgraph import ProjectContext
from ..core import Finding, ProjectRule, Registry
from ..summaries import effects_for


@Registry.register
class ChargeCoverageRule(ProjectRule):
    code = "RPL009"
    name = "charge-coverage"
    description = (
        "every call path from a boundary-exchange entry point to a"
        " payload copy must pass a LogP charge; an uncharged path makes"
        " the modeled communication time silently optimistic"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        effects = effects_for(project)
        for key in sorted(project.functions):
            fn = project.functions[key]
            if not project.config.in_wire_package(fn.path):
                continue
            summary = effects.summaries[key]
            if not summary.send_sites:
                continue
            if summary.may_charge:
                continue
            if effects.covered_by_callers(key):
                continue
            callers = project.callers.get(key, set())
            via = (
                "and no caller charges before reaching it"
                if callers
                else "and it has no charging caller (entry point)"
            )
            for send in summary.send_sites:
                yield self.finding_at(
                    fn.path,
                    send.node,
                    self.code,
                    f"payload copy '{send.primitive}' in {fn.qualname}"
                    f" is reachable without a LogP charge: the function"
                    f" never charges the modeled clock {via}; route the"
                    " transfer through charge_comm_words/add_comm",
                )
