"""RPL007 — wall-clock retry backoff.

Retry/backoff loops are where wall-clock habits from production code
sneak into the simulator: ``time.sleep(delay)`` between attempts, or
jitter drawn from the process-global ``random`` module.  Both are wrong
here — a retransmission delay is *modeled time* and must be charged to
the LogP clock (``Tracer.add_comm`` /
``HealthMonitor.backoff_delay``), and jitter must come from a seeded
generator so the delay sequence — and with it every downstream trace —
is byte-identical across runs.

The rule looks for loops that smell like retry machinery (an identifier
mentioning ``retry``/``attempt``/``backoff``/``reconnect`` anywhere in
the loop) and flags, inside them:

* real sleeps — ``time.sleep`` / ``asyncio.sleep``: the simulation must
  never stall the host; charge the modeled clock instead,
* unseeded jitter — module-level ``random.*`` / ``numpy.random.*``
  draws or seedless ``Random()`` / ``default_rng()`` constructions.

The bench/tracing harness may legitimately sleep (it measures the
host), so the rule honors the RPL003 wall-clock allowlist.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..core import FileContext, Finding, LintRule, Registry

#: identifier fragments that mark a loop as retry/backoff machinery
_RETRY_HINTS = (
    "retry",
    "retries",
    "attempt",
    "backoff",
    "reconnect",
    "redeliver",
    "retransmit",
)

#: calls that stall the host process for real wall-clock time
_SLEEP_CALLS = {"time.sleep", "asyncio.sleep"}

#: seedable constructors (flagged only when called without a seed)
_SEEDABLE = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
}

#: module prefixes whose plain functions draw from hidden global state
_GLOBAL_RNG_PREFIXES = ("random.", "numpy.random.")


def _loop_identifiers(loop: ast.AST) -> Set[str]:
    """Every identifier fragment mentioned anywhere inside ``loop``."""
    names: Set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Name):
            names.add(node.id.lower())
        elif isinstance(node, ast.Attribute):
            names.add(node.attr.lower())
        elif isinstance(node, ast.arg):
            names.add(node.arg.lower())
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name.lower())
    return names


def _is_retry_loop(loop: ast.AST) -> bool:
    return any(
        hint in name
        for name in _loop_identifiers(loop)
        for hint in _RETRY_HINTS
    )


def _has_seed_argument(node: ast.Call) -> bool:
    if node.args:
        first = node.args[0]
        return not (
            isinstance(first, ast.Constant) and first.value is None
        )
    for kw in node.keywords:
        if kw.arg in ("seed", "x") and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return True
        if kw.arg is None:  # **kwargs may carry the seed; trust it
            return True
    return False


@Registry.register
class WallClockBackoffRule(LintRule):
    code = "RPL007"
    name = "wall-clock-backoff"
    description = (
        "retry/backoff loops must charge modeled-clock delays with"
        " seeded jitter; real time.sleep() calls and unseeded random"
        " draws break the simulation's determinism"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.in_target(ctx.path):
            return
        if ctx.config.allows_wall_clock(ctx.path):
            return
        seen: Set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While, ast.AsyncFor)):
                continue
            if not _is_retry_loop(loop):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                seen.add(id(node))
                target = ctx.resolve_call_target(node.func)
                if target is None:
                    continue
                if target in _SLEEP_CALLS:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"{target}() stalls the host inside a retry loop;"
                        " charge the delay to the modeled LogP clock"
                        " (Tracer.add_comm / HealthMonitor.backoff_delay)"
                        " instead",
                    )
                elif target in _SEEDABLE:
                    if not _has_seed_argument(node):
                        yield ctx.finding(
                            node,
                            self.code,
                            f"{target}() without a seed inside a retry"
                            " loop makes the backoff jitter — and every"
                            " downstream trace — irreproducible; pass an"
                            " explicit seed",
                        )
                elif target.startswith(_GLOBAL_RNG_PREFIXES):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"{target}() draws backoff jitter from hidden"
                        " global RNG state; use a seeded generator"
                        " instance so retry delays replay byte-identically",
                    )
