"""RPL010 — shared-memory phase discipline (whole-program).

The process backend maps ``Worker.dv`` and ``Worker.local_apsp`` into
shared memory; kernels on the pool mutate them concurrently with the
coordinator process.  The protocol that keeps this race-free is
structural: arrays are only written during declared *phases* —
coordinator-side phases run while no kernel is in flight, and
kernel-phase functions receive the arrays as parameters (never through
``self``), so the backend controls exactly which memory they touch.

RPL010 makes the protocol machine-checked against the effect
summaries.  A *mutation* is a subscript store, an attribute rebind, an
in-place numpy call (``fill_diagonal``/``copyto``/``out=``/``.fill()``)
— including through local aliases and views — or passing a shared
array into a callee parameter the callee mutates (interprocedurally).

Three findings:

1. a function with a shared-array mutation that is not registered in
   the phase registry (``[tool.repro-lint.phase-registry]``) — an
   undeclared writer is a latent race with the process backend;
2. a ``kernel``-phase function mutating an attribute-rooted shared
   array — kernels must stay location-transparent (arrays arrive as
   parameters; ``self.dv`` would bypass the backend's shared-memory
   adoption);
3. a ``kernel``-phase function calling a mutator registered in a
   non-kernel phase — coordinator-phase writes must never run under a
   kernel.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..callgraph import FunctionInfo, ProjectContext
from ..core import Finding, ProjectRule, Registry
from ..summaries import effects_for


def _phase_of(
    project: ProjectContext, fn: FunctionInfo
) -> Optional[str]:
    """Registered phase for a function, by qualname-suffix match."""
    registry = project.config.phase_registry
    for suffix, phase in registry.items():
        if fn.key == suffix or fn.key.endswith("." + suffix):
            return str(phase)
    return None


@Registry.register
class PhaseDisciplineRule(ProjectRule):
    code = "RPL010"
    name = "phase-discipline"
    description = (
        "shared worker arrays (dv/local_apsp) may only be mutated by"
        " functions registered in the phase registry, and kernel-phase"
        " functions must stay location-transparent; an undeclared"
        " writer is a latent race under the process backend"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        effects = effects_for(project)
        for key in sorted(project.functions):
            fn = project.functions[key]
            if not project.config.in_target(fn.path):
                continue
            summary = effects.summaries[key]
            phase = _phase_of(project, fn)
            if summary.mutations and phase is None:
                seen = set()
                for site in summary.mutations:
                    marker = (site.array, getattr(site.node, "lineno", 0))
                    if marker in seen:
                        continue
                    seen.add(marker)
                    how = (
                        f" (via {site.via.split(':', 1)[1]})"
                        if site.via.startswith("callee:")
                        else ""
                    )
                    yield self.finding_at(
                        fn.path,
                        site.node,
                        self.code,
                        f"{fn.qualname} mutates shared array"
                        f" '{site.array}'{how} but is not registered in"
                        " the phase registry; declare its phase in"
                        " [tool.repro-lint.phase-registry] or move the"
                        " write into a registered phase function",
                    )
            if phase == "kernel":
                for site in summary.mutations:
                    yield self.finding_at(
                        fn.path,
                        site.node,
                        self.code,
                        f"kernel-phase {fn.qualname} mutates"
                        f" '{site.array}' through an attribute; kernels"
                        " must receive arrays as parameters (location"
                        " transparency) so the backend controls the"
                        " shared-memory mapping",
                    )
                yield from self._check_kernel_calls(project, effects, fn)

    def _check_kernel_calls(
        self, project: ProjectContext, effects, fn: FunctionInfo
    ) -> Iterator[Finding]:
        for site in project.call_sites.get(fn.key, []):
            for tgt in site.targets:
                callee = project.functions.get(tgt)
                if callee is None:
                    continue
                callee_phase = _phase_of(project, callee)
                if callee_phase is None or callee_phase == "kernel":
                    continue
                tsum = effects.summaries[tgt]
                if not (tsum.mutations or tsum.mutated_params):
                    continue
                yield self.finding_at(
                    fn.path,
                    site.node,
                    self.code,
                    f"kernel-phase {fn.qualname} calls"
                    f" {callee.qualname}, a mutator registered in phase"
                    f" '{callee_phase}'; coordinator-phase writes must"
                    " not run while a kernel holds the shared arrays",
                )
