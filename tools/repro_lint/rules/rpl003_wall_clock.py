"""RPL003 — wall-clock leakage into the modeled timeline.

The simulator prices every operation on a *modeled* LogP clock
(``Worker.clock`` advanced by ``charge_comm_words``/``add_compute``).
Reading the host clock — ``time.time()``, ``time.perf_counter()``,
``datetime.now()`` — inside algorithmic code couples results to machine
speed and load, so two runs of the same seed stop being comparable and
recorded traces stop being byte-identical.

Host-clock reads are legitimate only where the *harness* measures
itself: the tracer (``runtime/tracing.py``) and the benchmark package.
Those paths live on the configurable allowlist
(``wall_clock_allowlist``); everything else gets flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, LintRule, Registry

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@Registry.register
class WallClockRule(LintRule):
    code = "RPL003"
    name = "wall-clock-leakage"
    description = (
        "algorithmic code must use the modeled LogP clock; host-clock"
        " reads (time.time/perf_counter/datetime.now) are only allowed"
        " in the tracing and bench harnesses"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.in_target(ctx.path):
            return
        if ctx.config.allows_wall_clock(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call_target(node.func)
            if target in _CLOCK_CALLS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"{target}() reads the host clock outside the"
                    " tracing/bench allowlist; use the modeled LogP"
                    " clock so runs stay machine-independent",
                )
