"""RPL006 — bare ``print()`` in library code.

``print()`` inside ``repro`` library modules is telemetry that bypasses
the observability layer: it cannot be disabled, exported, or compared
across runs, and it corrupts machine-readable CLI output.  Library code
must emit telemetry through ``repro.obs`` (span events, metric series)
or the standard ``logging`` module.

Legitimate print surfaces — the CLI, ``__main__``, and the benchmark
harness — live on the configurable allowlist (``print_allowlist``).
One-off diagnostics can carry ``# repro-lint: disable=RPL006``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, LintRule, Registry


@Registry.register
class BarePrintRule(LintRule):
    code = "RPL006"
    name = "bare-print"
    description = (
        "library code must not call print(); route telemetry through"
        " repro.obs (or logging) so it is exportable and deterministic"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.in_target(ctx.path):
            return
        if ctx.config.allows_print(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # only the bare builtin: obj.print()/self.print() are
            # methods, and a local rebinding shadows the builtin
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    "bare print() in library code; emit telemetry via"
                    " repro.obs or logging (CLI/bench surfaces belong"
                    " on the print_allowlist)",
                )
