"""RPL001 — unseeded randomness.

Reproducibility invariant: every random draw in the library flows from a
generator constructed with an explicit seed (`FaultPlan.seed`, the
partitioners' ``seed=`` arguments).  Module-level ``random.*`` /
``numpy.random.*`` functions consume hidden global state, and
``random.Random()`` / ``numpy.random.default_rng()`` without a seed
argument seed themselves from the OS — both make two "identical" runs
diverge, which breaks the byte-identical fault traces and every
determinism regression test.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, LintRule, Registry

#: constructors that are fine *with* an explicit seed argument
_SEEDABLE = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}

#: module prefixes whose plain functions draw from hidden global state
_GLOBAL_STATE_PREFIXES = ("random.", "numpy.random.")


def _has_seed_argument(node: ast.Call) -> bool:
    if node.args:
        # a literal None positional seed is still OS-seeded
        first = node.args[0]
        return not (
            isinstance(first, ast.Constant) and first.value is None
        )
    for kw in node.keywords:
        if kw.arg in ("seed", "x") and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return True
        if kw.arg is None:  # **kwargs may carry the seed; trust it
            return True
    return False


@Registry.register
class UnseededRandomRule(LintRule):
    code = "RPL001"
    name = "unseeded-random"
    description = (
        "random draws must come from an explicitly seeded generator;"
        " module-level random.*/numpy.random.* state and unseeded"
        " Random()/default_rng() break run-to-run determinism"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.in_target(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call_target(node.func)
            if target is None:
                continue
            if target in _SEEDABLE:
                if not _has_seed_argument(node):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"{target}() without an explicit seed is"
                        " OS-seeded; pass seed= so runs are reproducible",
                    )
                continue
            if target.startswith(_GLOBAL_STATE_PREFIXES):
                yield ctx.finding(
                    node,
                    self.code,
                    f"{target}() draws from hidden module-level RNG state;"
                    " use a seeded generator instance instead",
                )
