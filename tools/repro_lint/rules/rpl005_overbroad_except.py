"""RPL005 — overbroad exception handlers on fault paths.

The chaos harness injects ``WorkerCrash`` (and the recovery paths
re-raise checkpoint/restore errors) to prove the supervisor's recovery
policies work.  A bare ``except:`` — or a blanket
``except Exception:`` inside ``runtime/`` or ``core/`` — can swallow an
injected fault before the supervisor sees it, turning a
fault-tolerance test into a silent no-op that still passes.

Flagged:

* bare ``except:`` anywhere under ``src/repro`` (it also catches
  ``KeyboardInterrupt``/``SystemExit``);
* ``except Exception:`` / ``except BaseException:`` in the fault-path
  packages, unless the handler visibly re-raises (a ``raise``
  statement anywhere in the handler body exonerates it — the fault
  still propagates).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, LintRule, Registry

_BROAD = {"Exception", "BaseException"}


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _broad_names(handler: ast.ExceptHandler) -> Iterator[str]:
    typ = handler.type
    if typ is None:
        return
    exprs = typ.elts if isinstance(typ, ast.Tuple) else [typ]
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in _BROAD:
            yield expr.id


@Registry.register
class OverbroadExceptRule(LintRule):
    code = "RPL005"
    name = "overbroad-except"
    description = (
        "bare except:, and except Exception: on fault paths, can"
        " swallow injected faults before the supervisor's recovery"
        " policy runs; catch the specific exception or re-raise"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.in_target(ctx.path):
            return
        fault_path = ctx.config.in_fault_path(ctx.path)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    node,
                    self.code,
                    "bare except: catches everything, including"
                    " injected WorkerCrash faults and"
                    " KeyboardInterrupt; name the exception type",
                )
                continue
            if not fault_path:
                continue
            if _handler_reraises(node):
                continue
            for name in _broad_names(node):
                yield ctx.finding(
                    node,
                    self.code,
                    f"except {name}: on a fault path can swallow an"
                    " injected fault before the supervisor sees it;"
                    " catch the specific type or re-raise",
                )
