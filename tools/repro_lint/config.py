"""Configuration for repro-lint.

Defaults encode this repository's layout; a ``[tool.repro-lint]`` table
in ``pyproject.toml`` overrides them, so the linter stays reusable for
sibling projects without forking the rules.

Path matching convention: every configured path fragment is compared
against the *posix form* of the linted file's path (e.g.
``src/repro/runtime/cluster.py``), so ``repro/runtime`` matches any file
under the runtime package regardless of the invocation directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LintConfig:
    """Tunable rule scoping for one lint run."""

    #: package fragments in which every rule applies (RPL001's scope)
    target_packages: Tuple[str, ...] = ("repro/",)
    #: packages whose iteration order feeds rank/message/partition order
    #: (RPL002's taint sinks)
    order_sensitive_packages: Tuple[str, ...] = (
        "repro/runtime/",
        "repro/partition/",
        "repro/core/",
    )
    #: modules allowed to read the host clock (RPL003 allowlist)
    wall_clock_allowlist: Tuple[str, ...] = (
        "repro/runtime/tracing.py",
        "repro/bench/",
    )
    #: packages whose send primitives must pair with a LogP charge (RPL004)
    wire_packages: Tuple[str, ...] = ("repro/runtime/",)
    #: method names that hand a payload to another rank (RPL004 sends)
    send_primitives: Tuple[str, ...] = ("receive_rows", "receive_packet")
    #: method names that charge the modeled LogP clock (RPL004 charges)
    charge_primitives: Tuple[str, ...] = (
        "charge_comm_words",
        "add_comm",
        "broadcast_row",
    )
    #: packages where overbroad excepts may swallow injected faults (RPL005)
    fault_path_packages: Tuple[str, ...] = (
        "repro/runtime/",
        "repro/core/",
    )
    #: modules allowed to call bare print() (RPL006 allowlist): the CLI
    #: is the user-facing output surface, the bench harness prints
    #: progress — everything else must emit telemetry via repro.obs
    print_allowlist: Tuple[str, ...] = (
        "repro/cli.py",
        "repro/__main__.py",
        "repro/bench/",
    )
    #: per-file suppressions: path fragment -> list of rule codes
    per_file_ignores: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: parameter base names that carry seed lineage (RPL008 axiom);
    #: ``*_<name>`` suffixes match too (``chaos_seed`` for ``seed``)
    seed_param_names: Tuple[str, ...] = ("seed",)
    #: attribute names whose reads are seed-derived (RPL008 axiom):
    #: ``config.seed``, ``self.seed``, ``plan.chaos_seed`` …
    seed_attributes: Tuple[str, ...] = ("seed",)
    #: function names documented to return a derived RNG stream even
    #: though the linter cannot see why (escape hatch for RPL008)
    documented_seed_streams: Tuple[str, ...] = ()
    #: factory name -> decorator name: a call to the factory may invoke
    #: any project function carrying the decorator (call-graph edge for
    #: the strategy registry indirection)
    registry_factories: Dict[str, str] = field(
        default_factory=lambda: {"make_strategy": "register"}
    )
    #: attribute names of process-shared worker arrays (RPL010 scope)
    shared_arrays: Tuple[str, ...] = ("dv", "_dv", "local_apsp", "_local_apsp")
    #: function qualname suffix -> phase; mutations of shared arrays are
    #: only legal in functions registered here (RPL010).  Phases:
    #: ``init``/``prepare``/``serial``/``apply``/``coordinator``/
    #: ``recovery`` run while no kernel holds the arrays; ``kernel``
    #: marks the hot functions that receive arrays as parameters and
    #: must stay location-transparent (never touch ``self.dv``).
    phase_registry: Dict[str, str] = field(default_factory=dict)
    #: committed baseline of accepted findings (fingerprints); empty
    #: string disables baselining
    baseline_file: str = ""

    # ------------------------------------------------------------------
    @staticmethod
    def _norm(path: Path) -> str:
        return path.resolve().as_posix()

    def _matches(self, path: Path, fragments: Sequence[str]) -> bool:
        p = self._norm(path)
        return any(frag in p for frag in fragments)

    def in_target(self, path: Path) -> bool:
        return self._matches(path, self.target_packages)

    def is_order_sensitive(self, path: Path) -> bool:
        return self._matches(path, self.order_sensitive_packages)

    def allows_wall_clock(self, path: Path) -> bool:
        return self._matches(path, self.wall_clock_allowlist)

    def in_wire_package(self, path: Path) -> bool:
        return self._matches(path, self.wire_packages)

    def in_fault_path(self, path: Path) -> bool:
        return self._matches(path, self.fault_path_packages)

    def allows_print(self, path: Path) -> bool:
        return self._matches(path, self.print_allowlist)

    def file_ignores(self, path: Path) -> Tuple[str, ...]:
        p = self._norm(path)
        out: List[str] = []
        for frag, codes in self.per_file_ignores.items():
            if frag in p:
                out.extend(codes)
        return tuple(out)


def _coerce(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(str(v) for v in value)
    if isinstance(value, dict):
        return {
            str(k): tuple(str(c) for c in v) if isinstance(v, list) else v
            for k, v in value.items()
        }
    return value


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Build a config from ``[tool.repro-lint]`` in ``pyproject.toml``.

    Missing file, missing table, or a Python without ``tomllib``
    (< 3.11) all fall back to the built-in defaults — the linter must
    never fail because configuration is absent.
    """
    cfg = LintConfig()
    path = pyproject or Path("pyproject.toml")
    if not path.is_file():
        return cfg
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - py3.10 fallback
        return cfg
    try:
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError):  # pragma: no cover
        return cfg
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        return cfg
    known = {f.name for f in fields(LintConfig)}
    updates = {
        key.replace("-", "_"): _coerce(value)
        for key, value in table.items()
        if key.replace("-", "_") in known
    }
    baseline = updates.get("baseline_file")
    if isinstance(baseline, str) and baseline:
        # a relative baseline is anchored at the pyproject, not the cwd,
        # so the lint run works from any invocation directory
        bpath = Path(baseline)
        if not bpath.is_absolute():
            updates["baseline_file"] = str(
                (path.resolve().parent / bpath).resolve()
            )
    return replace(cfg, **updates) if updates else cfg
