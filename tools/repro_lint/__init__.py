"""repro-lint: AST-based invariant linter for the repro codebase.

The anytime-anywhere guarantees this repository reproduces (RC
convergence in <= P-1 steps, exactness after dynamic changes) and the
fault-tolerance subsystem's byte-identical fault traces rest on
invariants the Python type system cannot see:

* every random draw must flow from an explicitly seeded generator,
* every cross-rank iteration order must be deterministic,
* simulated LogP time must never mix with host wall-clock time,
* every wire copy must be charged to the LogP clock,
* injected faults must never be swallowed by overbroad handlers.

``repro_lint`` enforces these as static AST rules (codes ``RPL001`` ..
``RPL005``) with per-line ``# repro-lint: disable=RPL0xx`` suppressions.

Usage::

    PYTHONPATH=tools python -m repro_lint src/repro
    PYTHONPATH=tools python -m repro_lint --format json src/repro
    PYTHONPATH=tools python -m repro_lint --list-rules
"""

from __future__ import annotations

from .core import Finding, LintRule, Registry, lint_file, lint_paths
from .config import LintConfig
from . import rules as _rules  # noqa: F401  (populates the registry)

__version__ = "1.0.0"

__all__ = [
    "Finding",
    "LintRule",
    "LintConfig",
    "Registry",
    "lint_file",
    "lint_paths",
    "__version__",
]
