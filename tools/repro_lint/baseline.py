"""Committed baseline of accepted findings.

A baseline lets a new rule land with pre-existing, *reviewed* findings
grandfathered instead of blocking CI.  Each entry records the finding's
fingerprint (path + code + message, line-independent — see
:func:`repro_lint.core.fingerprint`) next to a human-readable copy of
what was accepted and why that is safe, so the file reviews like code.

Workflow::

    python -m repro_lint src/repro --write-baseline   # snapshot
    python -m repro_lint src/repro                    # now clean

Fixing the underlying code makes the entry dead weight, never a
failure: stale fingerprints simply stop matching.  ``--write-baseline``
rewrites the file from scratch, so refreshing it also prunes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Set

from .core import Finding, fingerprint

__all__ = ["load_baseline", "write_baseline"]


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints in a baseline file; empty set when absent/invalid."""
    if not path.is_file():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return set()
    entries = data.get("findings", []) if isinstance(data, dict) else []
    out: Set[str] = set()
    for entry in entries:
        if isinstance(entry, dict) and isinstance(
            entry.get("fingerprint"), str
        ):
            out.add(entry["fingerprint"])
    return out


def write_baseline(findings: List[Finding], path: Path) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = []
    seen: Set[str] = set()
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.code)):
        fp = fingerprint(f)
        if fp in seen:
            continue
        seen.add(fp)
        entries.append(
            {
                "fingerprint": fp,
                "path": f.path,
                "code": f.code,
                "message": f.message,
                "line": f.line,  # informational; not part of the identity
            }
        )
    payload = {
        "version": 1,
        "comment": (
            "Accepted repro-lint findings. Entries are matched by"
            " fingerprint (path+code+message); refresh with"
            " --write-baseline, which also prunes fixed entries."
        ),
        "findings": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
