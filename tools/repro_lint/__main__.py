"""``python -m repro_lint`` entry point."""

from .cli import main

raise SystemExit(main())
