"""Rule framework: findings, the rule registry, suppressions, runners.

A rule is a class with a ``code`` (``RPL0xx``), a ``name``, a
``description``, and a ``check(context)`` generator yielding
:class:`Finding` objects.  Rules register themselves via the
:meth:`Registry.register` decorator; the runner instantiates every
registered rule per file and filters the findings through the
suppression comments collected from the source.

Suppressions are standard pragma comments::

    risky_call()  # repro-lint: disable=RPL003
    other_call()  # repro-lint: disable=RPL001,RPL004
    anything()    # repro-lint: disable=all

and apply to the physical line they sit on.  A pragma on its own line
applies to the *next* non-comment line, so multi-line statements can be
suppressed at their head.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from .config import LintConfig

__all__ = [
    "Finding",
    "FileContext",
    "LintRule",
    "Registry",
    "lint_file",
    "lint_paths",
]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint\s*:\s*disable\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    source: str
    tree: ast.Module
    config: LintConfig
    #: import alias -> canonical dotted module name (e.g. ``np`` ->
    #: ``numpy``, ``npr`` -> ``numpy.random``)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: imported symbol -> canonical dotted name (e.g. ``perf_counter``
    #: -> ``time.perf_counter``)
    symbol_aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def display_path(self) -> str:
        try:
            return self.path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            return self.path.as_posix()

    def finding(
        self, node: ast.AST, code: str, message: str
    ) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )

    # ------------------------------------------------------------------
    def resolve_call_target(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of a call target, through import aliases.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when
        ``np`` aliases ``numpy``; plain names resolve through ``from``
        imports; anything else returns ``None``.
        """
        parts: List[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
        else:
            return None
        parts.reverse()
        head = parts[0]
        if head in self.module_aliases:
            parts[0] = self.module_aliases[head]
        elif head in self.symbol_aliases:
            parts[0] = self.symbol_aliases[head]
        return ".".join(parts)


class LintRule:
    """Base class for all rules."""

    code: str = "RPL000"
    name: str = "abstract"
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - makes the method a generator


class Registry:
    """Process-wide rule registry (populated at import of ``rules``)."""

    _rules: Dict[str, Type[LintRule]] = {}

    @classmethod
    def register(cls, rule: Type[LintRule]) -> Type[LintRule]:
        if not re.fullmatch(r"RPL\d{3}", rule.code):
            raise ValueError(f"invalid rule code {rule.code!r}")
        existing = cls._rules.get(rule.code)
        if existing is not None and existing is not rule:
            raise ValueError(f"duplicate rule code {rule.code}")
        cls._rules[rule.code] = rule
        return rule

    @classmethod
    def rules(cls) -> List[Type[LintRule]]:
        return [cls._rules[c] for c in sorted(cls._rules)]

    @classmethod
    def codes(cls) -> List[str]:
        return sorted(cls._rules)


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed codes (``{"all"}`` for all).

    Uses the tokenizer, not a regex over raw lines, so pragmas inside
    string literals do not suppress anything.  A pragma comment on its
    own line carries over to the next logical line.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return out
    comment_lines: Set[int] = set()
    code_lines: Set[int] = set()
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comment_lines.add(tok.start[0])
            m = _PRAGMA_RE.search(tok.string)
            if m:
                codes = {
                    c.strip().upper()
                    for c in m.group(1).split(",")
                    if c.strip()
                }
                out.setdefault(tok.start[0], set()).update(codes)
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(tok.start[0])
    # standalone pragma comments roll forward to the next code line
    for line, codes in sorted(out.items()):
        if line in code_lines:
            continue
        nxt = line + 1
        while nxt in comment_lines and nxt not in code_lines:
            nxt += 1
        out.setdefault(nxt, set()).update(codes)
    return out


def _suppressed(
    finding: Finding, suppressions: Dict[int, Set[str]]
) -> bool:
    codes = suppressions.get(finding.line)
    if not codes:
        return False
    return "ALL" in codes or finding.code.upper() in codes


# ----------------------------------------------------------------------
# import-alias collection
# ----------------------------------------------------------------------
def _collect_aliases(
    tree: ast.Module,
) -> Tuple[Dict[str, str], Dict[str, str]]:
    modules: Dict[str, str] = {}
    symbols: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # ``import numpy.random`` binds ``numpy``
                    modules[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports cannot be stdlib/numpy
            for alias in node.names:
                symbols[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return modules, symbols


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------
def lint_file(
    path: Path,
    config: LintConfig,
    *,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every registered rule over one file; returns kept findings."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="RPL000",
                message=f"syntax error prevents linting: {exc.msg}",
            )
        ]
    modules, symbols = _collect_aliases(tree)
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        config=config,
        module_aliases=modules,
        symbol_aliases=symbols,
    )
    suppressions = collect_suppressions(source)
    file_ignores = {c.upper() for c in config.file_ignores(path)}
    selected = {c.upper() for c in select} if select else None
    findings: List[Finding] = []
    for rule_cls in Registry.rules():
        if selected is not None and rule_cls.code not in selected:
            continue
        if rule_cls.code in file_ignores:
            continue
        for finding in rule_cls().check(ctx):
            if not _suppressed(finding, suppressions):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Iterable[Path],
    config: Optional[LintConfig] = None,
    *,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint files/directories; directories are walked recursively."""
    cfg = config or LintConfig()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, cfg, select=select))
    return findings
