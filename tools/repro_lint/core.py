"""Rule framework: findings, the rule registry, suppressions, runners.

A rule is a class with a ``code`` (``RPL0xx``), a ``name``, a
``description``, and a ``check(context)`` generator yielding
:class:`Finding` objects.  Rules register themselves via the
:meth:`Registry.register` decorator; the runner instantiates every
registered rule per file and filters the findings through the
suppression comments collected from the source.

Suppressions are standard pragma comments::

    risky_call()  # repro-lint: disable=RPL003
    other_call()  # repro-lint: disable=RPL001,RPL004
    anything()    # repro-lint: disable=all

and apply to the whole *statement* they sit on: a pragma anywhere in a
multi-line statement (a decorated ``def``, a parenthesized call spread
over several lines) suppresses findings on every line of that
statement's extent.  A pragma on its own line applies to the next
non-comment statement.

Rules come in two flavours: per-file :class:`LintRule` subclasses see
one :class:`FileContext`; :class:`ProjectRule` subclasses see the
whole-program :class:`~repro_lint.callgraph.ProjectContext` once per
run (RPL008–010 live there).
"""

from __future__ import annotations

import ast
import hashlib
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Type,
)

from .config import LintConfig

if TYPE_CHECKING:  # pragma: no cover
    from .cache import LintCache
    from .callgraph import ProjectContext

__all__ = [
    "Finding",
    "FileContext",
    "LintRule",
    "ProjectRule",
    "Registry",
    "lint_file",
    "lint_paths",
    "display_path",
]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint\s*:\s*disable\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    source: str
    tree: ast.Module
    config: LintConfig
    #: import alias -> canonical dotted module name (e.g. ``np`` ->
    #: ``numpy``, ``npr`` -> ``numpy.random``)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: imported symbol -> canonical dotted name (e.g. ``perf_counter``
    #: -> ``time.perf_counter``)
    symbol_aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def display_path(self) -> str:
        return display_path(self.path)

    def finding(
        self, node: ast.AST, code: str, message: str
    ) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )

    # ------------------------------------------------------------------
    def resolve_call_target(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of a call target, through import aliases.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when
        ``np`` aliases ``numpy``; plain names resolve through ``from``
        imports; anything else returns ``None``.
        """
        parts: List[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
        else:
            return None
        parts.reverse()
        head = parts[0]
        if head in self.module_aliases:
            parts[0] = self.module_aliases[head]
        elif head in self.symbol_aliases:
            parts[0] = self.symbol_aliases[head]
        return ".".join(parts)


def display_path(path: Path) -> str:
    """Repo-relative posix path when possible, absolute otherwise."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding for the committed baseline.

    Deliberately excludes the line number: accepted findings must
    survive unrelated edits above them in the file.
    """
    raw = f"{finding.path}:{finding.code}:{finding.message}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


def load_baseline_for(cfg: LintConfig) -> Set[str]:
    """Fingerprints accepted by the config's committed baseline file."""
    if not cfg.baseline_file:
        return set()
    from .baseline import load_baseline

    return load_baseline(Path(cfg.baseline_file))


class LintRule:
    """Base class for all rules."""

    code: str = "RPL000"
    name: str = "abstract"
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - makes the method a generator


class ProjectRule(LintRule):
    """Base class for whole-program rules.

    The runner builds one :class:`~repro_lint.callgraph.ProjectContext`
    over every linted file and calls :meth:`check_project` once per
    rule; per-file pragmas and ``per_file_ignores`` still apply to the
    findings, matched by path and line.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())  # project rules do not run per file

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - makes the method a generator

    @staticmethod
    def finding_at(
        path: Path, node: object, code: str, message: str
    ) -> Finding:
        return Finding(
            path=display_path(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


class Registry:
    """Process-wide rule registry (populated at import of ``rules``)."""

    _rules: Dict[str, Type[LintRule]] = {}

    @classmethod
    def register(cls, rule: Type[LintRule]) -> Type[LintRule]:
        if not re.fullmatch(r"RPL\d{3}", rule.code):
            raise ValueError(f"invalid rule code {rule.code!r}")
        existing = cls._rules.get(rule.code)
        if existing is not None and existing is not rule:
            raise ValueError(f"duplicate rule code {rule.code}")
        cls._rules[rule.code] = rule
        return rule

    @classmethod
    def rules(cls) -> List[Type[LintRule]]:
        return [cls._rules[c] for c in sorted(cls._rules)]

    @classmethod
    def codes(cls) -> List[str]:
        return sorted(cls._rules)


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed codes (``{"all"}`` for all).

    Uses the tokenizer, not a regex over raw lines, so pragmas inside
    string literals do not suppress anything.  A pragma comment on its
    own line carries over to the next logical line, and a pragma on any
    physical line of a multi-line statement (decorated ``def`` headers,
    parenthesized calls) covers the statement's whole extent.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return out
    comment_lines: Set[int] = set()
    code_lines: Set[int] = set()
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comment_lines.add(tok.start[0])
            m = _PRAGMA_RE.search(tok.string)
            if m:
                codes = {
                    c.strip().upper()
                    for c in m.group(1).split(",")
                    if c.strip()
                }
                out.setdefault(tok.start[0], set()).update(codes)
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(tok.start[0])
    # standalone pragma comments roll forward to the next code line
    for line, codes in sorted(out.items()):
        if line in code_lines:
            continue
        nxt = line + 1
        while nxt in comment_lines and nxt not in code_lines:
            nxt += 1
        out.setdefault(nxt, set()).update(codes)
    # spread pragmas over full statement extents: a pragma on the first
    # (or any) physical line of a decorated def or a parenthesized call
    # must suppress findings reported on the statement's other lines
    if out:
        for start, end in _statement_extents(source):
            if end <= start:
                continue
            lines = range(start, end + 1)
            codes = set()
            for line in lines:
                codes |= out.get(line, set())
            if codes:
                for line in lines:
                    out.setdefault(line, set()).update(codes)
    return out


def _statement_extents(source: str) -> List[Tuple[int, int]]:
    """(first, last) physical line of every statement's *own* extent.

    Simple statements span ``lineno..end_lineno``.  Compound statements
    (defs, classes, ``if``/``for``/``with``…) span their header only —
    from the first decorator down to the line before the body starts —
    so a pragma on a ``def`` line never silences the whole body.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:  # pragma: no cover - caller already parsed
        return []
    out: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", [])
        if decorators:
            start = min(start, min(d.lineno for d in decorators))
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", None) or node.lineno
        out.append((start, end))
    return out


def _suppressed(
    finding: Finding, suppressions: Dict[int, Set[str]]
) -> bool:
    codes = suppressions.get(finding.line)
    if not codes:
        return False
    return "ALL" in codes or finding.code.upper() in codes


# ----------------------------------------------------------------------
# import-alias collection
# ----------------------------------------------------------------------
def _collect_aliases(
    tree: ast.Module,
) -> Tuple[Dict[str, str], Dict[str, str]]:
    modules: Dict[str, str] = {}
    symbols: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # ``import numpy.random`` binds ``numpy``
                    modules[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports cannot be stdlib/numpy
            for alias in node.names:
                symbols[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return modules, symbols


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------
def _parse_file(
    path: Path, source: str
) -> Tuple[Optional[ast.Module], Optional[Finding]]:
    try:
        return ast.parse(source, filename=str(path)), None
    except SyntaxError as exc:
        return None, Finding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            code="RPL000",
            message=f"syntax error prevents linting: {exc.msg}",
        )


def _check_one_file(
    path: Path,
    source: str,
    tree: ast.Module,
    config: LintConfig,
    selected: Optional[Set[str]],
) -> List[Finding]:
    """Run the per-file rules over one parsed file."""
    modules, symbols = _collect_aliases(tree)
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        config=config,
        module_aliases=modules,
        symbol_aliases=symbols,
    )
    suppressions = collect_suppressions(source)
    file_ignores = {c.upper() for c in config.file_ignores(path)}
    findings: List[Finding] = []
    for rule_cls in Registry.rules():
        if issubclass(rule_cls, ProjectRule):
            continue
        if selected is not None and rule_cls.code not in selected:
            continue
        if rule_cls.code in file_ignores:
            continue
        for finding in rule_cls().check(ctx):
            if not _suppressed(finding, suppressions):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(
    path: Path,
    config: LintConfig,
    *,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every per-file rule over one file; returns kept findings.

    Whole-program rules need the full project and only run through
    :func:`lint_paths`.
    """
    source = path.read_text(encoding="utf-8")
    tree, error = _parse_file(path, source)
    if tree is None:
        return [error] if error else []
    selected = {c.upper() for c in select} if select else None
    return _check_one_file(path, source, tree, config, selected)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def _project_rule_classes() -> List[Type[LintRule]]:
    return [r for r in Registry.rules() if issubclass(r, ProjectRule)]


def lint_paths(
    paths: Iterable[Path],
    config: Optional[LintConfig] = None,
    *,
    select: Optional[Iterable[str]] = None,
    cache: Optional["LintCache"] = None,
    baseline: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint files/directories; directories are walked recursively.

    Per-file rules run file by file (served from ``cache`` when the
    content hash matches); whole-program rules run once over a
    :class:`ProjectContext` built from every parsed file.  ``baseline``
    (a set of finding fingerprints; defaults to the config's committed
    baseline file) filters accepted findings out of the result.
    """
    cfg = config or LintConfig()
    selected = {c.upper() for c in select} if select else None
    files = list(iter_python_files(paths))
    sources: Dict[Path, str] = {}
    findings: List[Finding] = []
    parsed: List[Tuple[Path, str, ast.Module]] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        sources[path] = source
        cached = cache.get_file(path, source, selected) if cache else None
        tree, error = _parse_file(path, source)
        if tree is not None:
            parsed.append((path, source, tree))
        if cached is not None:
            findings.extend(cached)
            continue
        if tree is None:
            file_findings = [error] if error else []
        else:
            file_findings = _check_one_file(
                path, source, tree, cfg, selected
            )
        if cache:
            cache.put_file(path, source, selected, file_findings)
        findings.extend(file_findings)

    project_rules = [
        r
        for r in _project_rule_classes()
        if selected is None or r.code in selected
    ]
    if project_rules and parsed:
        findings.extend(
            _run_project_rules(parsed, project_rules, cfg, selected, cache)
        )

    if baseline is None:
        baseline = load_baseline_for(cfg)
    if baseline:
        findings = [
            f for f in findings if fingerprint(f) not in baseline
        ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _run_project_rules(
    parsed: List[Tuple[Path, str, ast.Module]],
    project_rules: List[Type[LintRule]],
    cfg: LintConfig,
    selected: Optional[Set[str]],
    cache: Optional["LintCache"],
) -> List[Finding]:
    """Whole-program pass: build the project, run rules, filter pragmas."""
    if cache:
        cached = cache.get_project(parsed, selected)
        if cached is not None:
            return cached
    from .callgraph import ProjectContext

    project = ProjectContext.build(parsed, cfg)
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    ignores: Dict[str, Set[str]] = {}
    for path, source, _tree in parsed:
        dp = display_path(path)
        suppressions[dp] = collect_suppressions(source)
        ignores[dp] = {c.upper() for c in cfg.file_ignores(path)}
    out: List[Finding] = []
    for rule_cls in project_rules:
        rule = rule_cls()
        for finding in rule.check_project(project):
            if finding.code in ignores.get(finding.path, set()):
                continue
            if _suppressed(finding, suppressions.get(finding.path, {})):
                continue
            out.append(finding)
    if cache:
        cache.put_project(parsed, selected, out)
    return out
