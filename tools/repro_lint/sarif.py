"""SARIF 2.1.0 export for CI code-scanning annotations.

Minimal but valid: one run, the registered rules as
``tool.driver.rules`` (so viewers show descriptions), one result per
finding with a physical location.  GitHub's code-scanning upload action
consumes exactly this subset.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .core import Finding, LintRule

__all__ = ["render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(
    findings: List[Finding], rules: List[Type[LintRule]]
) -> Dict[str, object]:
    """SARIF log dict for ``findings``; serialise with ``json.dumps``."""
    rule_index = {r.code: i for i, r in enumerate(rules)}
    results = []
    for f in findings:
        result: Dict[str, object] = {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
        }
        if f.code in rule_index:
            result["ruleIndex"] = rule_index[f.code]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [
                            {
                                "id": r.code,
                                "name": r.name,
                                "shortDescription": {"text": r.description},
                            }
                            for r in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
