"""Project-wide symbol table and call graph for whole-program rules.

Per-file rules (RPL001–007) see one ``ast.Module`` at a time; the three
interprocedural rules (RPL008–010) need to follow values and effects
across function and module boundaries.  This module builds the shared
substrate for them:

* a :class:`ModuleInfo` per linted file (dotted name, import tables,
  top-level functions and classes);
* a :class:`FunctionInfo` per function/method with its parameters and
  enclosing class;
* a class hierarchy restricted to project classes, so ``self.meth()``
  resolves through base classes *and* to subclass overrides (dynamic
  dispatch is approximated CHA-style: every override is a possible
  target);
* resolved call sites per function, plus caller/callee adjacency.

Resolution is deliberately conservative-but-named: an attribute call
``obj.frobnicate(...)`` whose receiver type is unknown resolves to every
project method named ``frobnicate`` (class-hierarchy-analysis lite).
That is exactly the approximation the repo's rules need — the runtime's
backend dispatch (``ExecutionBackend.run_ia`` overridden per backend)
and the worker/cluster send primitives are all uniquely named, so
name-based resolution is precise in practice while never missing an
edge.

Two indirections get dedicated handling because the codebase leans on
them:

* **strategy registry**: a call to ``make_strategy(...)`` (configurable
  via :attr:`LintConfig.registry_factories`) adds edges to every project
  function decorated with the paired ``@register(...)`` decorator;
* **constructors**: a call to a project class adds an edge to its
  ``__init__`` (searched through the base-class chain).

Module names are derived from the file layout relative to the common
root of the linted paths, dropping a leading ``src`` component, so
``src/repro/runtime/worker.py`` becomes ``repro.runtime.worker`` no
matter where the linter was invoked from.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .config import LintConfig

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "CallSite",
    "ProjectContext",
    "build_project",
]

FuncKey = str  # "repro.runtime.worker.Worker.receive_rows"


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    key: FuncKey
    module: str
    qualname: str  # "Worker.receive_rows" or "make_strategy"
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    path: Path
    class_name: Optional[str] = None
    #: positional parameter names in order, including ``self``
    params: Tuple[str, ...] = ()
    #: decorator names as written (last attribute segment), e.g.
    #: ``register`` for ``@register("ldg")``
    decorators: Tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    """One class definition and its project-resolved hierarchy."""

    key: str  # "repro.runtime.worker.Worker"
    module: str
    name: str
    node: ast.ClassDef
    #: raw base expressions as dotted strings (pre-resolution)
    base_names: Tuple[str, ...] = ()
    #: project-resolved base class keys (filled by the builder)
    bases: List[str] = field(default_factory=list)
    #: direct subclass keys (filled by the builder)
    subclasses: List[str] = field(default_factory=list)
    #: method name -> FuncKey for methods defined *on this class*
    methods: Dict[str, FuncKey] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file with its import environment."""

    name: str  # dotted, e.g. "repro.runtime.worker"
    path: Path
    tree: ast.Module
    source: str
    #: import alias -> canonical dotted module ("np" -> "numpy")
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: imported/defined symbol -> canonical dotted name
    symbol_aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FuncKey] = field(default_factory=dict)
    classes: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call expression inside a function body."""

    node: ast.Call
    #: possible project targets (empty when the callee is external)
    targets: Tuple[FuncKey, ...]
    #: "self" | "name" | "attr" | None — how the callee was written
    receiver: Optional[str]
    #: last name segment of the callee as written ("receive_rows")
    attr: str


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
class ProjectContext:
    """Symbol table + call graph over every linted file.

    Built once per ``lint_paths`` run when a whole-program rule is
    selected; rules receive it via :meth:`ProjectRule.check_project`.
    """

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[FuncKey, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare function/method name -> every FuncKey with that name
        self.by_name: Dict[str, List[FuncKey]] = {}
        #: FuncKey -> resolved call sites in its own body
        self.call_sites: Dict[FuncKey, List[CallSite]] = {}
        self.callers: Dict[FuncKey, Set[FuncKey]] = {}
        self.callees: Dict[FuncKey, Set[FuncKey]] = {}
        #: factory name -> registered FuncKeys (strategy indirection)
        self.registry_targets: Dict[str, List[FuncKey]] = {}
        #: path (resolved posix) -> module name, for rule lookups
        self._module_of_path: Dict[str, str] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def build(
        cls,
        files: Sequence[Tuple[Path, str, ast.Module]],
        config: LintConfig,
    ) -> "ProjectContext":
        """Build from already-parsed ``(path, source, tree)`` triples."""
        self = cls(config)
        root = _common_root([p for p, _, _ in files])
        # when the linted tree is rooted inside a package (e.g. linting
        # src/repro directly), climb to the package's own root so module
        # names carry the full dotted prefix ("repro.runtime.worker")
        # and absolute imports resolve
        while (root / "__init__.py").is_file() and root.parent != root:
            root = root.parent
        for path, source, tree in files:
            name = _module_name(path, root)
            info = ModuleInfo(
                name=name, path=path, tree=tree, source=source
            )
            _collect_imports(info)
            self.modules[name] = info
            self._module_of_path[path.resolve().as_posix()] = name
        for info in self.modules.values():
            self._index_module(info)
        self._resolve_hierarchy()
        self._collect_registry()
        for key in list(self.functions):
            self._resolve_calls(key)
        return self

    # -- lookups -------------------------------------------------------
    def module_of(self, path: Path) -> Optional[ModuleInfo]:
        name = self._module_of_path.get(path.resolve().as_posix())
        return self.modules.get(name) if name else None

    def function(self, key: FuncKey) -> Optional[FunctionInfo]:
        return self.functions.get(key)

    def methods_named(self, name: str) -> List[FuncKey]:
        return self.by_name.get(name, [])

    def resolve_name(
        self, module: ModuleInfo, dotted: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Canonical project key for a dotted name used in ``module``.

        Chases ``from`` imports (including package ``__init__``
        re-exports, with a cycle guard) until the name lands on a project
        function, class, or nothing.
        """
        seen = _seen if _seen is not None else set()
        probe = f"{module.name}:{dotted}"
        if probe in seen:
            return None
        seen.add(probe)
        head, _, rest = dotted.partition(".")
        # locally defined symbol
        if not rest:
            if head in module.functions:
                return module.functions[head]
            if head in module.classes:
                return module.classes[head]
        elif head in module.classes and "." not in rest:
            # classmethod-style call: SomeClass.method(...)
            found = self.method_on(module.classes[head], rest)
            if found is not None:
                return found
        canonical: Optional[str] = None
        if head in module.symbol_aliases:
            canonical = module.symbol_aliases[head] + (
                f".{rest}" if rest else ""
            )
        elif head in module.module_aliases:
            canonical = module.module_aliases[head] + (
                f".{rest}" if rest else ""
            )
        if canonical is None:
            return None
        return self._chase(canonical, seen)

    def _chase(self, canonical: str, seen: Set[str]) -> Optional[str]:
        """Resolve a canonical dotted name to a project entity key."""
        if canonical in self.functions or canonical in self.classes:
            return canonical
        mod_name, _, sym = canonical.rpartition(".")
        if mod_name in self.classes and sym:
            return self.method_on(mod_name, sym)
        mod = self.modules.get(mod_name)
        if mod is None or not sym:
            return None
        if sym in mod.functions:
            return mod.functions[sym]
        if sym in mod.classes:
            return mod.classes[sym]
        # re-export: ``from .registry import make_strategy`` in __init__
        return self.resolve_name(mod, sym, seen)

    # -- hierarchy helpers ---------------------------------------------
    def method_on(
        self, class_key: str, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FuncKey]:
        """Find ``name`` on ``class_key`` or its project base classes."""
        seen = _seen if _seen is not None else set()
        if class_key in seen:
            return None
        seen.add(class_key)
        ci = self.classes.get(class_key)
        if ci is None:
            return None
        if name in ci.methods:
            return ci.methods[name]
        for base in ci.bases:
            found = self.method_on(base, name, seen)
            if found is not None:
                return found
        return None

    def override_family(self, class_key: str, name: str) -> List[FuncKey]:
        """All implementations of ``name`` visible from ``class_key``:
        the inherited/own definition plus every subclass override.
        CHA's answer to "what can ``self.name()`` dispatch to".
        """
        out: List[FuncKey] = []
        own = self.method_on(class_key, name)
        if own is not None:
            out.append(own)
        stack = list(self.classes[class_key].subclasses) if (
            class_key in self.classes
        ) else []
        seen: Set[str] = set()
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            ci = self.classes.get(sub)
            if ci is None:
                continue
            if name in ci.methods:
                out.append(ci.methods[name])
            stack.extend(ci.subclasses)
        return sorted(set(out))

    # -- internal indexing ---------------------------------------------
    def _index_module(self, info: ModuleInfo) -> None:
        # module bodies are pseudo-functions: their calls resolve like
        # any other body, so module-level RNG constructions are checked
        # and module-level callers count for charge coverage; they are
        # not callable, so they never appear in name lookups
        mkey = f"{info.name}.<module>"
        self.functions[mkey] = FunctionInfo(
            key=mkey,
            module=info.name,
            qualname="<module>",
            name="<module>",
            node=info.tree,
            path=info.path,
        )
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                ckey = f"{info.name}.{node.name}"
                ci = ClassInfo(
                    key=ckey,
                    module=info.name,
                    name=node.name,
                    node=node,
                    base_names=tuple(
                        d for d in map(_dotted, node.bases) if d
                    ),
                )
                info.classes[node.name] = ckey
                self.classes[ckey] = ci
                for sub in node.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        fi = self._add_function(
                            info, sub, class_name=node.name
                        )
                        ci.methods[sub.name] = fi.key

    def _add_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: Optional[str],
    ) -> FunctionInfo:
        qual = f"{class_name}.{node.name}" if class_name else node.name
        key = f"{info.name}.{qual}"
        params = tuple(
            a.arg
            for a in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            )
        )
        fi = FunctionInfo(
            key=key,
            module=info.name,
            qualname=qual,
            name=node.name,
            node=node,
            path=info.path,
            class_name=class_name,
            params=params,
            decorators=tuple(
                d for d in map(_decorator_name, node.decorator_list) if d
            ),
        )
        self.functions[key] = fi
        if class_name is None:
            info.functions[node.name] = key
        self.by_name.setdefault(node.name, []).append(key)
        return fi

    def _resolve_hierarchy(self) -> None:
        for ci in self.classes.values():
            mod = self.modules[ci.module]
            for base in ci.base_names:
                resolved = self.resolve_name(mod, base)
                if resolved in self.classes:
                    ci.bases.append(resolved)
                    self.classes[resolved].subclasses.append(ci.key)

    def _collect_registry(self) -> None:
        """Map factory names to ``@register``-decorated functions."""
        pairs = dict(self.config.registry_factories)
        if not pairs:
            return
        decorator_names = set(pairs.values())
        registered: Dict[str, List[FuncKey]] = {
            d: [] for d in decorator_names
        }
        for fi in self.functions.values():
            for dec in fi.decorators:
                if dec in decorator_names:
                    registered[dec].append(fi.key)
        for factory, decorator in pairs.items():
            self.registry_targets[factory] = sorted(registered[decorator])

    # -- call resolution -----------------------------------------------
    def _resolve_calls(self, key: FuncKey) -> None:
        fi = self.functions[key]
        mod = self.modules[fi.module]
        sites: List[CallSite] = []
        for call in _own_calls(fi.node):
            sites.append(self._resolve_one(mod, fi, call))
        self.call_sites[key] = sites
        callees = self.callees.setdefault(key, set())
        for site in sites:
            for tgt in site.targets:
                callees.add(tgt)
                self.callers.setdefault(tgt, set()).add(key)

    def _resolve_one(
        self, mod: ModuleInfo, fi: FunctionInfo, call: ast.Call
    ) -> CallSite:
        func = call.func
        targets: List[FuncKey] = []
        receiver: Optional[str] = None
        attr = ""
        if isinstance(func, ast.Name):
            attr = func.id
            receiver = "name"
            resolved = self.resolve_name(mod, func.id)
            targets.extend(self._entity_targets(resolved))
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            receiver = "attr"
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self":
                receiver = "self"
                if fi.class_name is not None:
                    ckey = f"{fi.module}.{fi.class_name}"
                    targets.extend(self.override_family(ckey, attr))
            elif _is_super_call(base):
                # super().meth() dispatches up the MRO, never down
                receiver = "super"
                if fi.class_name is not None:
                    ci = self.classes.get(f"{fi.module}.{fi.class_name}")
                    for bkey in ci.bases if ci else []:
                        found = self.method_on(bkey, attr)
                        if found is not None:
                            targets.append(found)
            if not targets and receiver != "super":
                dotted = _dotted(func)
                resolved = (
                    self.resolve_name(mod, dotted) if dotted else None
                )
                if resolved is not None:
                    targets.extend(self._entity_targets(resolved))
                elif not (attr.startswith("__") and attr.endswith("__")):
                    # CHA-lite: any project method with this name.
                    # Dunders are exempt — half the project defines
                    # __init__, so fanning out would wire everything
                    # to everything.
                    targets.extend(
                        k
                        for k in self.methods_named(attr)
                        if self.functions[k].is_method
                    )
        # registry indirection: make_strategy("ldg", cfg) fans out to
        # every @register-decorated factory
        if attr in self.registry_targets:
            targets.extend(self.registry_targets[attr])
        return CallSite(
            node=call,
            targets=tuple(sorted(set(targets))),
            receiver=receiver,
            attr=attr,
        )

    def _entity_targets(self, resolved: Optional[str]) -> List[FuncKey]:
        """Call targets for a resolved entity (function or class)."""
        if resolved is None:
            return []
        if resolved in self.functions:
            return [resolved]
        if resolved in self.classes:
            init = self.method_on(resolved, "__init__")
            return [init] if init is not None else []
        return []


def build_project(
    files: Sequence[Tuple[Path, str, ast.Module]], config: LintConfig
) -> ProjectContext:
    """Convenience wrapper over :meth:`ProjectContext.build`."""
    return ProjectContext.build(files, config)


# ----------------------------------------------------------------------
# import collection (project-aware: resolves relative imports)
# ----------------------------------------------------------------------
def _collect_imports(info: ModuleInfo) -> None:
    """Fill ``module_aliases``/``symbol_aliases`` with canonical names.

    Unlike the per-file collector in :mod:`.core`, relative imports are
    resolved against the module's own dotted name, so
    ``from ..model.cost import CostModel`` inside
    ``repro.runtime.worker`` canonicalises to
    ``repro.model.cost.CostModel``.
    """
    is_package = info.path.name == "__init__.py"
    pkg_parts = info.name.split(".")
    if not is_package:
        pkg_parts = pkg_parts[:-1]
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.module_aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    info.module_aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                if node.level - 1 > len(pkg_parts):
                    continue  # beyond the project root; unresolvable
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.symbol_aliases[alias.asname or alias.name] = (
                    f"{prefix}.{alias.name}"
                )


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chain as a dotted string, else ``None``."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _is_super_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
    )


def _decorator_name(node: ast.expr) -> Optional[str]:
    """Last name segment of a decorator: ``@register("x")`` -> register."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _own_calls(node: ast.AST) -> Iterable[ast.Call]:
    """Call expressions in a function's own body, excluding nested
    function/class bodies (those are separate graph nodes)."""
    body = getattr(node, "body", [])
    stack: List[ast.AST] = list(body)
    while stack:
        cur = stack.pop()
        if isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(cur, ast.Call):
            yield cur
        stack.extend(ast.iter_child_nodes(cur))


def _common_root(paths: Sequence[Path]) -> Path:
    """Deepest common ancestor directory of the linted files."""
    if not paths:
        return Path.cwd()
    resolved = [p.resolve() for p in paths]
    parts = resolved[0].parent.parts
    for p in resolved[1:]:
        other = p.parent.parts
        keep = 0
        for a, b in zip(parts, other):
            if a != b:
                break
            keep += 1
        parts = parts[:keep]
    return Path(*parts) if parts else Path("/")


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name for ``path`` relative to ``root``.

    A leading ``src`` component is dropped (src-layout), and
    ``__init__.py`` maps to its package name.
    """
    try:
        rel = path.resolve().relative_to(root)
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem
