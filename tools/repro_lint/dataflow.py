"""Forward taint dataflow: which expressions are *seed-derived*?

The determinism contract (DESIGN.md §11) says every RNG stream must be
derived from ``AnytimeConfig.seed``.  RPL001 checks the local shape
(an RNG constructor got *some* seed argument); RPL008 checks lineage:
the value passed as the seed must be data-flow-reachable from the
config seed or a documented derived stream.

The analysis is a forward may-analysis over a two-point lattice
(``derived`` / ``unknown``) with per-function summaries:

* **axioms** — reads of an attribute named like a seed
  (``config.seed``, ``self.seed``, ``plan.seed``, …) and parameters
  named like a seed (an exact configured name such as ``seed``, or a
  ``*_seed`` suffix such as ``chaos_seed``) are derived.  The axiom encodes
  the repo-wide naming convention *enforced by this same rule*: a
  parameter named ``seed`` must only ever receive derived values
  (checked at every resolved internal call site), so assuming it
  derived inside the callee is sound induction, not wishful thinking.
* **propagation** — assignments, tuple/list/dict displays, arithmetic,
  subscripts of derived containers, harmless builtins (``int``,
  ``abs``, ``hash``…), ``numpy`` bit-generator constructors seeded
  with a derived value, and calls to project functions whose returns
  are all derived (computed to fixpoint across the call graph).
* **nothing else** — literals and unresolved calls stay unknown.

The same machinery answers both RPL008 questions: "is this RNG
constructor's seed derived?" and "does this call site pass an
underived value into a seed-named parameter of a project function?".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from .callgraph import FuncKey, FunctionInfo, ProjectContext

__all__ = ["SeedLineage", "FunctionTaint", "lineage_for"]


def lineage_for(project: ProjectContext) -> "SeedLineage":
    """Memoised :class:`SeedLineage` for one project build."""
    cached = getattr(project, "_seed_lineage", None)
    if cached is None:
        cached = SeedLineage(project)
        project._seed_lineage = cached  # type: ignore[attr-defined]
    return cached

#: builtins through which seed-ness flows unchanged
_PASSTHROUGH_CALLS = {
    "int",
    "abs",
    "hash",
    "tuple",
    "list",
    "sum",
    "max",
    "min",
    "sorted",
    "divmod",
    "pow",
    "round",
}

#: numpy bit-generator constructors: seeded with a derived value, the
#: resulting generator object is itself a derived stream
_BITGEN_TAILS = {
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "SeedSequence",
    "default_rng",
    "Generator",
    "RandomState",
}


@dataclass
class FunctionTaint:
    """Per-function taint facts, computed lazily then memoised."""

    #: local names known to hold seed-derived values
    derived_names: Set[str] = field(default_factory=set)
    #: every ``return`` expression was seed-derived (vacuously False for
    #: functions with no return statement)
    returns_derived: bool = False
    analysed: bool = False


class SeedLineage:
    """Project-wide seed-derivation oracle.

    One instance per lint run; share it between rule invocations so the
    function summaries are computed once.
    """

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.config = project.config
        self._taints: Dict[FuncKey, FunctionTaint] = {}
        self._seed_names = set(self.config.seed_param_names)
        self._seed_attrs = set(self.config.seed_attributes)
        self._stream_names = set(self.config.documented_seed_streams)
        self._compute_summaries()

    # -- public API ----------------------------------------------------
    def taint_of(self, key: FuncKey) -> FunctionTaint:
        return self._taints[key]

    def is_derived(self, fn: FunctionInfo, expr: ast.expr) -> bool:
        """Is ``expr`` (inside ``fn``'s body) seed-derived?"""
        taint = self._taints[fn.key]
        return self._derived(fn, taint, expr, depth=0)

    def is_seed_param(self, name: str) -> bool:
        """Does a parameter name participate in the seed convention?"""
        return name in self._seed_names or any(
            name.endswith(f"_{base}") for base in self._seed_names
        )

    def _is_seed_attr(self, name: str) -> bool:
        return name in self._seed_attrs or any(
            name.endswith(f"_{base}") for base in self._seed_attrs
        )

    # -- summary fixpoint ----------------------------------------------
    def _compute_summaries(self) -> None:
        for key in self.project.functions:
            self._taints[key] = FunctionTaint()
        # seed-named params are axioms; seed a first local pass, then
        # iterate: a callee whose returns become derived can make more
        # caller locals derived, which can make the caller's returns
        # derived, and so on (monotone on a finite lattice: terminates)
        changed = True
        while changed:
            changed = False
            for key, fn in self.project.functions.items():
                if self._analyse_function(fn):
                    changed = True

    def _analyse_function(self, fn: FunctionInfo) -> bool:
        """(Re-)run the local pass; True when any fact changed."""
        taint = self._taints[fn.key]
        before = (set(taint.derived_names), taint.returns_derived)
        derived = taint.derived_names
        for p in fn.params:
            if self.is_seed_param(p):
                derived.add(p)
        body = getattr(fn.node, "body", [])
        for stmt in _statements(body):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = stmt.value
                if value is None:
                    continue
                if self._derived(fn, taint, value, depth=0):
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for tgt in targets:
                        for name in _target_names(tgt):
                            derived.add(name)
        returns = [
            s
            for s in _statements(body)
            if isinstance(s, ast.Return) and s.value is not None
        ]
        taint.returns_derived = bool(returns) and all(
            self._derived(fn, taint, r.value, depth=0)
            for r in returns
            if r.value is not None
        )
        taint.analysed = True
        return before != (set(taint.derived_names), taint.returns_derived)

    # -- expression lattice --------------------------------------------
    def _derived(
        self,
        fn: FunctionInfo,
        taint: FunctionTaint,
        expr: ast.expr,
        depth: int,
    ) -> bool:
        if depth > 40:  # defensive: pathological nesting
            return False
        if isinstance(expr, ast.Name):
            return expr.id in taint.derived_names
        if isinstance(expr, ast.Attribute):
            # config.seed, self.seed, plan.chaos_seed, self._seed …
            return self._is_seed_attr(expr.attr)
        if isinstance(expr, ast.BinOp):
            return self._derived(
                fn, taint, expr.left, depth + 1
            ) or self._derived(fn, taint, expr.right, depth + 1)
        if isinstance(expr, ast.UnaryOp):
            return self._derived(fn, taint, expr.operand, depth + 1)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(
                self._derived(fn, taint, e, depth + 1) for e in expr.elts
            )
        if isinstance(expr, ast.Subscript):
            return self._derived(fn, taint, expr.value, depth + 1)
        if isinstance(expr, ast.IfExp):
            return self._derived(
                fn, taint, expr.body, depth + 1
            ) and self._derived(fn, taint, expr.orelse, depth + 1)
        if isinstance(expr, ast.BoolOp):
            # ``rng or default_rng(seed)``: derived when every branch is
            return all(
                self._derived(fn, taint, v, depth + 1) for v in expr.values
            )
        if isinstance(expr, ast.Starred):
            return self._derived(fn, taint, expr.value, depth + 1)
        if isinstance(expr, ast.Call):
            return self._derived_call(fn, taint, expr, depth)
        return False

    def _derived_call(
        self,
        fn: FunctionInfo,
        taint: FunctionTaint,
        call: ast.Call,
        depth: int,
    ) -> bool:
        func = call.func
        # builtin passthrough: int(seed), max(seed, 0), …
        if isinstance(func, ast.Name) and func.id in _PASSTHROUGH_CALLS:
            return any(
                self._derived(fn, taint, a, depth + 1) for a in call.args
            )
        # bit-generator / generator constructors seeded derivably
        tail = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        if tail in _BITGEN_TAILS:
            seed_arg = _rng_seed_argument(call)
            return seed_arg is not None and self._derived(
                fn, taint, seed_arg, depth + 1
            )
        # documented derived-stream helpers (config registry)
        if tail in self._stream_names:
            return True
        # project call whose returns are all derived
        for site in self.project.call_sites.get(fn.key, []):
            if site.node is call and site.targets:
                if all(
                    self._taints[t].returns_derived for t in site.targets
                ):
                    return True
                break
        return False


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _statements(body: list) -> list:
    """Flatten a function body, excluding nested def/class bodies."""
    out = []
    stack = list(body)
    while stack:
        node = stack.pop(0)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        out.append(node)
        for fld in ("body", "orelse", "finalbody"):
            stack.extend(getattr(node, fld, []))
        for handler in getattr(node, "handlers", []):
            stack.extend(handler.body)
    return out


def _target_names(target: ast.expr) -> Tuple[str, ...]:
    if isinstance(target, ast.Name):
        return (target.id,)
    if isinstance(target, (ast.Tuple, ast.List)):
        out = []
        for e in target.elts:
            out.extend(_target_names(e))
        return tuple(out)
    return ()


def _rng_seed_argument(call: ast.Call) -> Optional[ast.expr]:
    """The seed argument of an RNG/bit-generator constructor, if any."""
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg in ("seed", "x", "entropy"):
            return kw.value
    return None
