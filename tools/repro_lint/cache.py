"""Incremental lint cache keyed on file content hashes.

Whole-program analysis reads every file every run; the cache makes the
common CI case — nothing relevant changed — cheap:

* per-file findings are keyed on the file's content hash (path-qualified
  so moved files miss);
* the whole-program pass is keyed on the hash of *all* (path, content
  hash) pairs — any edit anywhere invalidates it, which is the only
  sound choice for an interprocedural analysis;
* both keys also fold in the config, the registered-rule codes, and the
  ``--select`` set, so flag changes never serve stale findings.

The store is one JSON file (default ``.repro-lint-cache.json``),
written atomically via a temp-file rename.  A corrupt or
version-mismatched cache is treated as empty, never an error.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .config import LintConfig
from .core import Finding, Registry

__all__ = ["LintCache"]

_CACHE_VERSION = 1


def _hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class LintCache:
    """Content-addressed findings cache for one lint invocation."""

    def __init__(self, path: Path, config: LintConfig) -> None:
        self.path = path
        self._salt = _hash(
            json.dumps(
                {
                    "version": _CACHE_VERSION,
                    "rules": Registry.codes(),
                    "config": {
                        k: sorted(v.items())
                        if isinstance(v, dict)
                        else list(v)
                        if isinstance(v, (list, tuple))
                        else v
                        for k, v in asdict(config).items()
                    },
                },
                sort_keys=True,
                default=str,
            )
        )
        self._entries: Dict[str, List[Dict[str, object]]] = {}
        self._dirty = False
        self._load()

    # -- keys ----------------------------------------------------------
    def _select_tag(self, selected: Optional[Set[str]]) -> str:
        return ",".join(sorted(selected)) if selected else "*"

    def _file_key(
        self, path: Path, source: str, selected: Optional[Set[str]]
    ) -> str:
        return _hash(
            f"file:{path.resolve().as_posix()}:{_hash(source)}"
            f":{self._select_tag(selected)}:{self._salt}"
        )

    def _project_key(
        self,
        parsed: Sequence[Tuple[Path, str, ast.Module]],
        selected: Optional[Set[str]],
    ) -> str:
        digest = hashlib.sha256()
        for path, source, _tree in sorted(
            parsed, key=lambda t: t[0].resolve().as_posix()
        ):
            digest.update(path.resolve().as_posix().encode())
            digest.update(_hash(source).encode())
        return _hash(
            f"project:{digest.hexdigest()}"
            f":{self._select_tag(selected)}:{self._salt}"
        )

    # -- lookups -------------------------------------------------------
    def get_file(
        self, path: Path, source: str, selected: Optional[Set[str]]
    ) -> Optional[List[Finding]]:
        return self._get(self._file_key(path, source, selected))

    def put_file(
        self,
        path: Path,
        source: str,
        selected: Optional[Set[str]],
        findings: List[Finding],
    ) -> None:
        self._put(self._file_key(path, source, selected), findings)

    def get_project(
        self,
        parsed: Sequence[Tuple[Path, str, ast.Module]],
        selected: Optional[Set[str]],
    ) -> Optional[List[Finding]]:
        return self._get(self._project_key(parsed, selected))

    def put_project(
        self,
        parsed: Sequence[Tuple[Path, str, ast.Module]],
        selected: Optional[Set[str]],
        findings: List[Finding],
    ) -> None:
        self._put(self._project_key(parsed, selected), findings)

    # -- store ---------------------------------------------------------
    def _get(self, key: str) -> Optional[List[Finding]]:
        raw = self._entries.get(key)
        if raw is None:
            return None
        try:
            return [
                Finding(
                    path=str(e["path"]),
                    line=int(e["line"]),  # type: ignore[arg-type]
                    col=int(e["col"]),  # type: ignore[arg-type]
                    code=str(e["code"]),
                    message=str(e["message"]),
                )
                for e in raw
            ]
        except (KeyError, TypeError, ValueError):
            return None

    def _put(self, key: str, findings: List[Finding]) -> None:
        self._entries[key] = [f.to_json() for f in findings]
        self._dirty = True

    def _load(self) -> None:
        if not self.path.is_file():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(data, dict) or data.get("salt") != self._salt:
            return  # config/rules changed: whole cache is stale
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                str(k): v for k, v in entries.items() if isinstance(v, list)
            }

    def save(self) -> None:
        """Atomically persist the cache (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "salt": self._salt,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
