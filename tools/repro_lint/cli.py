"""Command-line entry point: ``python -m repro_lint <paths>``.

Exit status: 0 when every file is clean, 1 when findings were emitted,
2 on usage errors.  ``--format json``/``--format sarif`` emit
machine-readable reports for CI annotation; ``--list-rules`` documents
the registry; ``--cache`` keeps whole-program runs incremental;
``--baseline``/``--write-baseline`` manage the committed set of
accepted findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import load_baseline, write_baseline
from .cache import LintCache
from .config import LintConfig, load_config
from .core import Registry, lint_paths
from .sarif import render_sarif

_DEFAULT_BASELINE = Path(".repro-lint-baseline.json")
_DEFAULT_CACHE = Path(".repro-lint-cache.json")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description=(
            "AST linter for the reproducibility invariants of the"
            " anytime-anywhere closeness pipeline: seeded randomness,"
            " deterministic iteration, modeled-clock-only timing,"
            " LogP-charged wire copies, and fault-safe exception"
            " handling."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (directories recurse)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="only run these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.repro-lint] from"
        " (default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and use built-in defaults",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="baseline file of accepted findings (default: the"
        " [tool.repro-lint] baseline-file setting)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring any baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: write them to the baseline"
        " file and exit 0",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        nargs="?",
        const=_DEFAULT_CACHE,
        default=None,
        metavar="PATH",
        help="incremental findings cache keyed on file content hashes"
        f" (default path when enabled: {_DEFAULT_CACHE})",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_cls in Registry.rules():
        lines.append(f"{rule_cls.code} {rule_cls.name}")
        lines.append(f"    {rule_cls.description}")
    return "\n".join(lines)


def _parse_select(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(c.strip().upper() for c in value.split(",") if c.strip())
    return out or None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro_lint: error: no paths given", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"repro_lint: error: no such path: {p}", file=sys.stderr)
        return 2

    config = (
        LintConfig() if args.no_config else load_config(args.config)
    )
    select = _parse_select(args.select)
    unknown = (
        [c for c in select if c not in Registry.codes()] if select else []
    )
    if unknown:
        print(
            f"repro_lint: error: unknown rule code(s): {', '.join(unknown)}",
            file=sys.stderr,
        )
        return 2

    cache = LintCache(args.cache, config) if args.cache else None

    baseline_path = args.baseline or (
        Path(config.baseline_file) if config.baseline_file else None
    )
    if args.write_baseline:
        findings = lint_paths(
            args.paths, config, select=select, cache=cache, baseline=set()
        )
        target = baseline_path or _DEFAULT_BASELINE
        count = write_baseline(findings, target)
        if cache:
            cache.save()
        print(f"wrote {count} accepted finding(s) to {target}")
        return 0

    baseline = set()
    if not args.no_baseline and baseline_path is not None:
        baseline = load_baseline(baseline_path)
    findings = lint_paths(
        args.paths, config, select=select, cache=cache, baseline=baseline
    )
    if cache:
        cache.save()

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "findings": [f.to_json() for f in findings],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(json.dumps(render_sarif(findings, Registry.rules()), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"\nfound {len(findings)} issue(s)")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
