"""Per-function effect summaries: sends, charges, array mutations.

Two whole-program rules consume these:

* **RPL009 charge-coverage** needs, for every function, whether its own
  body charges the LogP clock (``direct_charge``), whether it can reach
  a charge through any callee (``may_charge``, least fixpoint over the
  call graph), and where its uncovered send sites are.  A send is
  *covered* when the enclosing function may charge, or when **every**
  caller (transitively) charges before reaching it — computed as a
  greatest fixpoint so recursion is handled optimistically and then
  refuted.

* **RPL010 phase-discipline** needs every site where a *shared array*
  (``Worker.dv`` / ``Worker.local_apsp`` by default) is mutated:
  subscript stores, attribute rebinds, in-place numpy calls
  (``fill_diagonal``, ``copyto``, ``out=`` keywords, ``.fill()``), and
  — the interprocedural part — passing a shared array into a callee
  parameter that the callee itself mutates (param-mutation summaries,
  least fixpoint, so ``run_superstep -> ia_kernel`` chains are seen).

Local alias tracking makes the common kernel idiom visible::

    a = self.local_apsp      # alias
    a[improved] = cand       # counts as a local_apsp mutation

Aliases are tracked per straight-line pass (no CFG): a name assigned
from a shared attribute, from another alias, or from a subscript of
either, joins the alias set; reassignment from anything else removes
it.  That is exact for the repo's kernels, which never conditionally
rebind aliases.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import FuncKey, FunctionInfo, ProjectContext

__all__ = [
    "EffectSummary",
    "MutationSite",
    "SendSite",
    "EffectAnalysis",
    "effects_for",
]


def effects_for(project: ProjectContext) -> "EffectAnalysis":
    """Memoised :class:`EffectAnalysis` for one project build."""
    cached = getattr(project, "_effect_analysis", None)
    if cached is None:
        cached = EffectAnalysis(project)
        project._effect_analysis = cached  # type: ignore[attr-defined]
    return cached

#: numpy helpers that mutate their first positional argument in place
_INPLACE_FIRST_ARG = {"fill_diagonal", "copyto"}
#: ndarray methods that mutate the receiver in place
_INPLACE_METHODS = {"fill", "sort", "partition", "put", "resize"}


@dataclass
class MutationSite:
    """One statement that mutates a shared array."""

    node: ast.AST
    #: shared attribute name ("dv", "local_apsp", …)
    array: str
    #: "subscript" | "rebind" | "inplace" | "callee:<name>"
    via: str


@dataclass
class SendSite:
    """One RPL004-style send-primitive call on a foreign receiver."""

    node: ast.Call
    primitive: str


@dataclass
class EffectSummary:
    """Effects of one function's own body (plus computed closures)."""

    direct_charge: bool = False
    send_sites: List[SendSite] = field(default_factory=list)
    #: parameter names this function mutates (directly or via callees)
    mutated_params: Set[str] = field(default_factory=set)
    #: shared-array mutation sites in the own body
    mutations: List[MutationSite] = field(default_factory=list)
    #: closure: can a charge be reached through this function?
    may_charge: bool = False


class EffectAnalysis:
    """Compute and cache effect summaries for every project function."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.config = project.config
        self._shared = set(self.config.shared_arrays)
        self._send = set(self.config.send_primitives)
        self._charge = set(self.config.charge_primitives)
        self.summaries: Dict[FuncKey, EffectSummary] = {}
        self._local_pass()
        self._param_mutation_fixpoint()
        self._shared_flow_pass()
        self._may_charge_fixpoint()

    # -- phase 1: local effects ----------------------------------------
    def _local_pass(self) -> None:
        for key, fn in self.project.functions.items():
            self.summaries[key] = self._analyse_local(fn)

    def _analyse_local(self, fn: FunctionInfo) -> EffectSummary:
        s = EffectSummary()
        aliases: Dict[str, str] = {}  # local name -> shared attr name
        param_aliases: Dict[str, str] = {}  # local name -> param name
        params = set(fn.params)
        seen_calls: Set[int] = set()
        for stmt in _walk_own(fn.node):
            # every call exactly once (statements reappear nested inside
            # their parents in the _walk_own order)
            for node in _calls_under(stmt):
                if id(node) in seen_calls:
                    continue
                seen_calls.add(id(node))
                name = _call_name(node)
                if name in self._charge:
                    s.direct_charge = True
                elif name in self._send and not _bare_self_receiver(node):
                    s.send_sites.append(SendSite(node=node, primitive=name))
                self._track_inplace_call(node, s, aliases, param_aliases)
            if isinstance(stmt, ast.Assign):
                self._track_assign(stmt, s, aliases, param_aliases, params)
            elif isinstance(stmt, ast.AugAssign):
                self._track_store(
                    stmt, stmt.target, s, aliases, param_aliases, augmented=True
                )
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._track_assign_one(
                    stmt, stmt.target, stmt.value, s, aliases, param_aliases,
                    params,
                )
        return s

    # -- assignment / store tracking -----------------------------------
    def _track_assign(
        self,
        stmt: ast.Assign,
        s: EffectSummary,
        aliases: Dict[str, str],
        param_aliases: Dict[str, str],
        params: Set[str],
    ) -> None:
        for target in stmt.targets:
            self._track_assign_one(
                stmt, target, stmt.value, s, aliases, param_aliases, params
            )

    def _track_assign_one(
        self,
        stmt: ast.AST,
        target: ast.expr,
        value: ast.expr,
        s: EffectSummary,
        aliases: Dict[str, str],
        param_aliases: Dict[str, str],
        params: Set[str],
    ) -> None:
        self._track_store(stmt, target, s, aliases, param_aliases)
        if not isinstance(target, ast.Name):
            return
        src = _array_root(value, self._shared, aliases)
        if src is not None:
            aliases[target.id] = src
            param_aliases.pop(target.id, None)
            return
        psrc = _param_root(value, params, param_aliases)
        if psrc is not None:
            param_aliases[target.id] = psrc
            aliases.pop(target.id, None)
            return
        aliases.pop(target.id, None)
        param_aliases.pop(target.id, None)

    def _track_store(
        self,
        stmt: ast.AST,
        target: ast.expr,
        s: EffectSummary,
        aliases: Dict[str, str],
        param_aliases: Dict[str, str],
        *,
        augmented: bool = False,
    ) -> None:
        """Record a store through ``target`` when it hits shared state."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for e in target.elts:
                self._track_store(
                    stmt, e, s, aliases, param_aliases, augmented=augmented
                )
            return
        if isinstance(target, ast.Subscript):
            root = _array_root(target.value, self._shared, aliases)
            if root is not None:
                s.mutations.append(
                    MutationSite(node=stmt, array=root, via="subscript")
                )
            # subscript store into a parameter (or an alias/view of one);
            # raw local names land here too — the fixpoint pass
            # intersects with the real parameter list before propagating
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Name):
                s.mutated_params.add(param_aliases.get(base.id, base.id))
        elif isinstance(target, ast.Attribute):
            if target.attr in self._shared:
                s.mutations.append(
                    MutationSite(node=stmt, array=target.attr, via="rebind")
                )
        elif isinstance(target, ast.Name) and augmented:
            root = aliases.get(target.id)
            if root is not None:
                s.mutations.append(
                    MutationSite(node=stmt, array=root, via="subscript")
                )
            pname = param_aliases.get(target.id)
            if pname is not None:
                s.mutated_params.add(pname)

    def _track_inplace_call(
        self,
        call: ast.Call,
        s: EffectSummary,
        aliases: Dict[str, str],
        param_aliases: Dict[str, str],
    ) -> None:
        """np.fill_diagonal(x, 0), np.minimum(a, b, out=x), x.fill(0)."""
        mutated: List[ast.expr] = []
        func = call.func
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if tail in _INPLACE_FIRST_ARG and call.args:
            mutated.append(call.args[0])
        if isinstance(func, ast.Attribute) and func.attr in _INPLACE_METHODS:
            mutated.append(func.value)
        for kw in call.keywords:
            if kw.arg == "out":
                mutated.append(kw.value)
        for expr in mutated:
            root = _array_root(expr, self._shared, aliases)
            if root is not None:
                s.mutations.append(
                    MutationSite(node=call, array=root, via="inplace")
                )
            if isinstance(expr, ast.Name):
                s.mutated_params.add(param_aliases.get(expr.id, expr.id))
            elif isinstance(expr, ast.Subscript) and isinstance(
                expr.value, ast.Name
            ):
                s.mutated_params.add(
                    param_aliases.get(expr.value.id, expr.value.id)
                )

    # -- phase 2: param-mutation closure -------------------------------
    def _param_mutation_fixpoint(self) -> None:
        """``f(x): g(x)`` mutates ``x`` when ``g`` mutates its param.

        Iterate arg->param bindings at every resolved call site until no
        summary grows (monotone, finite: terminates).  Only Name
        arguments propagate — passing ``x[i:j]`` is a view and counts
        too, handled by the shared-flow pass instead.
        """
        # keep only real parameter names in mutated_params first
        for key, fn in self.project.functions.items():
            params = set(fn.params)
            s = self.summaries[key]
            s.mutated_params &= params
        changed = True
        while changed:
            changed = False
            for key, fn in self.project.functions.items():
                s = self.summaries[key]
                params = set(fn.params)
                for site in self.project.call_sites.get(key, []):
                    for tgt in site.targets:
                        callee = self.project.functions.get(tgt)
                        if callee is None:
                            continue
                        tsum = self.summaries[tgt]
                        if not tsum.mutated_params:
                            continue
                        for arg_name, param in _bindings(
                            site.node, callee
                        ):
                            if (
                                param in tsum.mutated_params
                                and arg_name in params
                                and arg_name not in s.mutated_params
                            ):
                                s.mutated_params.add(arg_name)
                                changed = True

    # -- phase 3: shared arrays flowing into mutating callees ----------
    def _shared_flow_pass(self) -> None:
        """Record ``callee:<name>`` mutation sites: a shared array (or a
        view of one) passed as an argument the callee mutates."""
        for key, fn in self.project.functions.items():
            s = self.summaries[key]
            aliases = self._alias_env(fn)
            for site in self.project.call_sites.get(key, []):
                for tgt in site.targets:
                    callee = self.project.functions.get(tgt)
                    if callee is None:
                        continue
                    tsum = self.summaries[tgt]
                    if not tsum.mutated_params:
                        continue
                    for expr, param in _expr_bindings(site.node, callee):
                        if param not in tsum.mutated_params:
                            continue
                        root = _array_root(expr, self._shared, aliases)
                        if root is not None:
                            s.mutations.append(
                                MutationSite(
                                    node=site.node,
                                    array=root,
                                    via=f"callee:{callee.name}",
                                )
                            )

    def _alias_env(self, fn: FunctionInfo) -> Dict[str, str]:
        """Final local-name -> shared-attr alias map for ``fn``."""
        aliases: Dict[str, str] = {}
        for stmt in _walk_own(fn.node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        src = _array_root(stmt.value, self._shared, aliases)
                        if src is not None:
                            aliases[target.id] = src
                        else:
                            aliases.pop(target.id, None)
        return aliases

    # -- phase 4: may-charge closure -----------------------------------
    def _may_charge_fixpoint(self) -> None:
        for key, s in self.summaries.items():
            s.may_charge = s.direct_charge
        changed = True
        while changed:
            changed = False
            for key in self.project.functions:
                s = self.summaries[key]
                if s.may_charge:
                    continue
                for callee in self.project.callees.get(key, ()):
                    if self.summaries[callee].may_charge:
                        s.may_charge = True
                        changed = True
                        break

    # -- RPL009 coverage query -----------------------------------------
    def covered_by_callers(self, key: FuncKey) -> bool:
        """Every call chain reaching ``key`` passes a charging caller.

        Greatest-fixpoint formulation: start optimistic (every function
        covered), repeatedly demote functions with no callers or with
        some caller that neither charges nor is itself covered.  Cycles
        with no charging entry demote in finitely many rounds.
        """
        covered = self._caller_coverage()
        return covered.get(key, False)

    def _caller_coverage(self) -> Dict[FuncKey, bool]:
        if hasattr(self, "_coverage_cache"):
            return self._coverage_cache  # type: ignore[return-value]
        covered: Dict[FuncKey, bool] = {
            k: True for k in self.project.functions
        }
        changed = True
        while changed:
            changed = False
            for key in self.project.functions:
                if not covered[key]:
                    continue
                callers = self.project.callers.get(key, set())
                ok = bool(callers) and all(
                    self.summaries[c].may_charge or covered[c]
                    for c in callers
                )
                if not ok:
                    covered[key] = False
                    changed = True
        self._coverage_cache = covered
        return covered


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _walk_own(node: ast.AST) -> List[ast.AST]:
    """Statements + nested expressions of a function's own body, skipping
    nested def/class bodies."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(getattr(node, "body", []))
    while stack:
        cur = stack.pop(0)
        if isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        out.append(cur)
        for fld in ("body", "orelse", "finalbody"):
            stack.extend(getattr(cur, fld, []))
        for handler in getattr(cur, "handlers", []):
            stack.extend(handler.body)
    return out


def _calls_under(node: ast.AST) -> List[ast.Call]:
    """Call expressions under ``node``, excluding nested def/class."""
    out: List[ast.Call] = []
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if cur is not node and isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(cur, ast.Call):
            out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _bare_self_receiver(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    )


def _array_root(
    expr: ast.expr, shared: Set[str], aliases: Dict[str, str]
) -> Optional[str]:
    """Shared attr a value expression aliases, if any.

    ``self.dv`` -> dv; ``a`` -> aliases[a]; ``self.dv[ix]`` /
    ``a[ix]`` -> the underlying array (numpy views share storage).
    """
    if isinstance(expr, ast.Attribute) and expr.attr in shared:
        return expr.attr
    if isinstance(expr, ast.Name):
        return aliases.get(expr.id)
    if isinstance(expr, ast.Subscript):
        return _array_root(expr.value, shared, aliases)
    return None


def _param_root(
    expr: ast.expr, params: Set[str], param_aliases: Dict[str, str]
) -> Optional[str]:
    """Parameter a value expression aliases (views included)."""
    if isinstance(expr, ast.Name):
        if expr.id in param_aliases:
            return param_aliases[expr.id]
        if expr.id in params:
            return expr.id
        return None
    if isinstance(expr, ast.Subscript):
        return _param_root(expr.value, params, param_aliases)
    return None


def _bindings(
    call: ast.Call, callee: FunctionInfo
) -> List[Tuple[str, str]]:
    """(argument name, parameter name) pairs for Name arguments."""
    out: List[Tuple[str, str]] = []
    for expr, param in _expr_bindings(call, callee):
        if isinstance(expr, ast.Name):
            out.append((expr.id, param))
        elif isinstance(expr, ast.Subscript) and isinstance(
            expr.value, ast.Name
        ):
            out.append((expr.value.id, param))
    return out


def _expr_bindings(
    call: ast.Call, callee: FunctionInfo
) -> List[Tuple[ast.expr, str]]:
    """(argument expression, parameter name) pairs at a call site.

    Positional args map against the callee's parameter list, skipping
    ``self`` for method calls written as attribute accesses.
    """
    params = list(callee.params)
    if callee.is_method and params and params[0] in ("self", "cls"):
        params = params[1:]
    out: List[Tuple[ast.expr, str]] = []
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            out.append((arg, params[i]))
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in callee.params:
            out.append((kw.value, kw.arg))
    return out
