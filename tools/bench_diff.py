#!/usr/bin/env python3
"""Judge fresh benchmark results against the committed ledger baseline.

Compares the newest record per ``(bench, case, metric)`` from the
current side — either fresh ``BENCH_*.json`` reports or a second ledger
directory — against ``benchmarks/history/*.jsonl``.  Metrics whose name
contains a gated substring (default ``modeled``) are deterministic
modeled-time figures: an increase beyond ``--threshold`` (default 5%)
is a real performance regression and fails the diff (exit 1).
Wall-clock figures are informational and never gate.

Usage::

    python tools/bench_diff.py
        [--baseline benchmarks/history] [--results-dir benchmarks/results]
        [--current LEDGER_DIR] [--bench NAME ...]
        [--threshold 0.05] [--show-all]

Benches present in the baseline but with no current measurement are
reported as missing, not failed, so partial runs (one bench at a time)
stay usable.  Requires ``repro`` importable (PYTHONPATH=src).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.history import (  # noqa: E402
    BenchRecord,
    diff_records,
    load_records,
    records_from_report,
    render_diff,
)

__all__ = ["main"]


def _load_ledger_dir(path: Path) -> List[BenchRecord]:
    out: List[BenchRecord] = []
    for ledger in sorted(path.glob("*.jsonl")):
        out.extend(load_records(ledger))
    return out


def _load_results_dir(path: Path) -> List[BenchRecord]:
    out: List[BenchRecord] = []
    for report_path in sorted(path.glob("BENCH_*.json")):
        report = json.loads(report_path.read_text(encoding="utf-8"))
        out.extend(records_from_report(report))
    # pytest figure benches write through the ledger schema directly
    for ledger in sorted(path.glob("*.ledger.jsonl")):
        out.extend(load_records(ledger))
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff fresh bench results against the committed"
                    " benchmarks/history baseline"
    )
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "benchmarks" / "history",
                        help="baseline ledger directory")
    parser.add_argument("--results-dir", type=Path,
                        default=REPO_ROOT / "benchmarks" / "results",
                        help="current side: BENCH_*.json report directory")
    parser.add_argument("--current", type=Path, default=None,
                        help="current side: a ledger directory instead"
                             " of fresh reports")
    parser.add_argument("--bench", action="append", default=None,
                        help="restrict the comparison to these benches"
                             " (repeatable)")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="gated relative increase that fails"
                             " (default 0.05)")
    parser.add_argument("--show-all", action="store_true",
                        help="show every compared metric, not just"
                             " gated/regressed ones")
    args = parser.parse_args(argv)

    baseline = _load_ledger_dir(args.baseline)
    if not baseline:
        print(f"no baseline ledgers under {args.baseline}", file=sys.stderr)
        return 2
    current = (
        _load_ledger_dir(args.current) if args.current is not None
        else _load_results_dir(args.results_dir)
    )
    if not current:
        side = args.current if args.current is not None else args.results_dir
        print(f"no current measurements under {side}", file=sys.stderr)
        return 2
    if args.bench:
        keep = set(args.bench)
        baseline = [r for r in baseline if r.bench in keep]
        current = [r for r in current if r.bench in keep]
    # only judge benches measured on both sides; a partial run must not
    # flood the report with every other bench's baseline as "missing"
    measured = {r.bench for r in current}
    baseline = [r for r in baseline if r.bench in measured]
    if not baseline:
        print("no overlapping benches between baseline and current",
              file=sys.stderr)
        return 2
    diff = diff_records(baseline, current, threshold=args.threshold)
    print(render_diff(diff, show_all=args.show_all), end="")
    return 0 if diff.ok else 1


if __name__ == "__main__":
    sys.exit(main())
