#!/usr/bin/env python3
"""Canonicalize a chaos-soak artifact for pinned-digest comparison.

Usage: python tools/pin_soak.py FILE

Prints a canonical form of FILE to stdout with the host-wall-clock
noise removed, so repeated runs of the same seeded scenario — and the
serial vs process backends — can be compared byte-for-byte:

- ``*.jsonl`` trace exports: each line is parsed as JSON, the ``wall``
  field (the only legitimately nondeterministic one) is dropped, and
  the object is re-dumped with sorted keys.
- CLI ``*.out`` captures: ``trace exported to ...`` lines (embed the
  artifact filename) are dropped, ``wall X.XXs`` readings are masked,
  and the ``wall_seconds`` column of any summary table is masked by
  matching the header row.

No third-party dependencies; stdlib only.
"""

from __future__ import annotations

import json
import re
import sys
from typing import List, Optional


def canonical_jsonl(lines: List[str]) -> List[str]:
    out = []
    for line in lines:
        if not line.strip():
            continue
        obj = json.loads(line)
        obj.pop("wall", None)
        out.append(json.dumps(obj, sort_keys=True))
    return out


def canonical_out(lines: List[str]) -> List[str]:
    out = []
    wall_col: Optional[int] = None
    for line in lines:
        line = line.rstrip("\n")
        if line.startswith("trace exported to "):
            continue
        tokens = line.split()
        if "wall_seconds" in tokens:
            wall_col = tokens.index("wall_seconds")
        elif (
            wall_col is not None
            and len(tokens) > wall_col
            and not set(line) <= {"-", " "}
        ):
            tokens[wall_col] = "WALL"
            line = "  ".join(tokens)
        else:
            # table over (blank line / new section): stop masking
            if not tokens:
                wall_col = None
        line = re.sub(r"wall [0-9.]+s", "wall WALL", line)
        out.append(line)
    return out


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    canon = (
        canonical_jsonl(lines)
        if path.endswith(".jsonl")
        else canonical_out(lines)
    )
    for line in canon:
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
