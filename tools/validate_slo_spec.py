"""Validate an SLO spec file against the checked-in JSON Schema.

Front-end over :mod:`validate_trace`'s dependency-free JSON-Schema
subset.  Unlike the trace validators this checks one whole JSON
document (the spec file is not JSONL), then cross-checks the semantic
constraints the schema subset cannot express (unique names, range
bounds) by actually constructing the specs through
``repro.obs.slo.specs_from_json`` when ``repro`` is importable.

Usage (CI and tests)::

    python tools/validate_slo_spec.py SPECS.json [SCHEMA.json]

Exit status 0 when the file validates, 1 otherwise (errors on stderr).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from validate_trace import validate

__all__ = ["validate_slo_spec_file", "main"]

DEFAULT_SCHEMA = Path(__file__).parent / "schemas" / "slo_spec.schema.json"


def validate_slo_spec_file(
    spec_path: Path, schema_path: Optional[Path] = None
) -> List[str]:
    """All violations in one SLO spec file (empty list = valid)."""
    schema = json.loads(
        (schema_path or DEFAULT_SCHEMA).read_text(encoding="utf-8")
    )
    try:
        data = json.loads(spec_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"invalid JSON ({exc})"]
    errors = list(validate(data, schema))
    if errors:
        return errors
    # semantic pass: the library loader enforces what the schema
    # subset cannot (unique names, budget_fraction < 1, ...)
    try:
        from repro.obs.slo import specs_from_json
    except ImportError:
        return errors
    try:
        specs_from_json(data)
    except Exception as exc:
        errors.append(f"semantic: {exc}")
    return errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    args: Tuple[str, ...] = tuple(sys.argv[1:] if argv is None else argv)
    if not 1 <= len(args) <= 2:
        print(
            "usage: validate_slo_spec.py SPECS.json [SCHEMA.json]",
            file=sys.stderr,
        )
        return 2
    spec = Path(args[0])
    schema = Path(args[1]) if len(args) == 2 else None
    errors = validate_slo_spec_file(spec, schema)
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"{spec}: OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
