"""Quickstart: distributed closeness centrality on a scale-free graph.

Builds a Barabási–Albert graph, runs the three-phase anytime-anywhere
pipeline (domain decomposition -> initial approximation -> recombination)
on a simulated 8-processor cluster, validates the result against an exact
single-machine computation, and shows the anytime quality curve.

Run:  python examples/quickstart.py
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.centrality import exact_closeness, rank_vertices
from repro.graph import barabasi_albert


def main() -> None:
    graph = barabasi_albert(600, 3, seed=42)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    engine = AnytimeAnywhereCloseness(graph, AnytimeConfig(nprocs=8, seed=42))
    engine.setup()          # DD + IA phases
    result = engine.run()   # RC phase to convergence

    print(f"converged in {result.rc_steps} RC steps")
    print(f"modeled cluster time: {result.modeled_seconds * 1e3:.2f} ms "
          f"(LogP + cost model), wall: {result.wall_seconds:.2f} s")

    # --- validate against the exact reference -------------------------
    exact = exact_closeness(graph)
    max_err = max(abs(result.closeness[v] - exact[v]) for v in exact)
    print(f"max |closeness - exact| = {max_err:.2e}")

    # --- the anytime property ------------------------------------------
    # every snapshot is a valid set of upper-bound estimates; quality
    # improves monotonically with each RC step
    print("\nanytime quality curve (resolved distance pairs per RC step):")
    for snap in result.snapshots:
        label = "after IA" if snap.step < 0 else f"after RC{snap.step}"
        print(f"  {label:10s}  resolved {snap.resolved_fraction:6.1%}"
              f"  (modeled t = {snap.modeled_seconds * 1e3:7.2f} ms)")

    # --- headline actors ------------------------------------------------
    top = rank_vertices(result.closeness)[:5]
    print("\ntop-5 most central vertices:")
    for v in top:
        print(f"  vertex {v:4d}  closeness = {result.closeness[v]:.6f}"
              f"  degree = {graph.degree(v)}")


if __name__ == "__main__":
    main()
