"""Tour of the partitioning substrate (the library's METIS stand-in).

The DD phase, CutEdge-PS and Repartition-S all depend on a cut-minimizing
graph partitioner.  This example compares every partitioner in the library
on a clustered scale-free graph — cut size, balance, and the downstream
effect on the anytime-anywhere pipeline's modeled runtime — and shows the
Louvain community detector that builds the experiment workloads.

Run:  python examples/partitioning_tour.py
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.graph import holme_kim, louvain_communities, modularity
from repro.partition import (
    BFSGrowingPartitioner,
    HashPartitioner,
    MultilevelPartitioner,
    RoundRobinPartitioner,
    SpectralPartitioner,
    partition_report,
)

NPROCS = 8


def main() -> None:
    graph = holme_kim(600, 3, p_triad=0.7, seed=3)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    comms = louvain_communities(graph, seed=3)
    q = modularity(graph, comms)
    print(f"Louvain: {len(comms)} communities, modularity Q = {q:.3f}\n")

    partitioners = [
        MultilevelPartitioner(seed=3),
        SpectralPartitioner(seed=3),
        BFSGrowingPartitioner(seed=3),
        HashPartitioner(),
        RoundRobinPartitioner(),
    ]
    print(f"{'partitioner':24s} {'edge cut':>8s} {'balance':>8s}"
          f" {'pipeline modeled(s)':>20s}")
    for part in partitioners:
        rep = partition_report(graph, part.partition(graph, NPROCS))
        # downstream effect: run the full pipeline with this partitioner
        cfg = AnytimeConfig(nprocs=NPROCS, partitioner=part, seed=3)
        engine = AnytimeAnywhereCloseness(graph, cfg)
        engine.setup()
        result = engine.run()
        print(f"{part.name:24s} {rep['edge_cut']:8d}"
              f" {rep['balance']:8.2f} {result.modeled_seconds:20.4f}")

    print("\nlower cut => less boundary-DV traffic => faster recombination;"
          "\nthe multilevel (METIS-style) partitioner is the default for a"
          " reason.")


if __name__ == "__main__":
    main()
