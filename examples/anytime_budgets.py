"""The anytime property, hands-on: interrupt, inspect, resume.

"The term anytime refers to the ability of the algorithm to provide
non-trivial solutions when interrupted.  The quality of these solutions
improves in a monotonically non-decreasing manner" (paper §I).

This example runs the analysis under modeled-time budgets, reading out the
solution quality at each interruption: resolved distance pairs, closeness
error against the exact answer, and rank agreement of the top actors —
then resumes until convergence.

Run:  python examples/anytime_budgets.py
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.centrality import (
    closeness_error,
    exact_closeness,
    rank_correlation,
    top_k_overlap,
)
from repro.core.snapshots import take_snapshot
from repro.graph import barabasi_albert


def main() -> None:
    graph = barabasi_albert(800, 3, seed=13)
    exact = exact_closeness(graph)
    engine = AnytimeAnywhereCloseness(
        graph, AnytimeConfig(nprocs=8, seed=13, collect_snapshots=False)
    )
    engine.setup()

    print(f"{'budget slice':>14s} {'RC steps':>8s} {'resolved':>9s}"
          f" {'MAE':>10s} {'rank corr':>9s} {'top-20':>7s}")
    slice_budget = 0.02  # modeled seconds per interruption window
    total_steps = 0
    while True:
        result = engine.run(budget_modeled_seconds=slice_budget)
        total_steps += result.rc_steps
        snap = take_snapshot(engine.cluster, total_steps)
        err = closeness_error(snap.closeness, exact)
        corr = rank_correlation(snap.closeness, exact)
        top = top_k_overlap(snap.closeness, exact, 20)
        print(f"{slice_budget:13.3f}s {total_steps:8d}"
              f" {snap.resolved_fraction:8.1%} {err['mae']:10.2e}"
              f" {corr:9.3f} {top:7.0%}")
        if result.converged:
            break

    final_err = max(abs(result.closeness[v] - exact[v]) for v in exact)
    print(f"\nconverged after {total_steps} steps;"
          f" final max error = {final_err:.2e}")
    print("every interrupted read was a valid upper-bound solution —"
          " that is the anytime guarantee.")


if __name__ == "__main__":
    main()
