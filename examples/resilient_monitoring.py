"""Resilient always-on network monitoring.

A long-running SNA service over an evolving sensor/social network,
exercising the library's extensions beyond the paper's evaluation (its
§VI future work, implemented here):

* multiple centrality measures served from one DV substrate
  (closeness, harmonic, eccentricity, radius/diameter),
* a worker crash mid-service with anytime warm recovery,
* automatic load rebalancing while skewed arrivals stream in.

Run:  python examples/resilient_monitoring.py
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import incremental_stream
from repro.centrality import (
    exact_closeness,
    exact_eccentricity,
    exact_harmonic,
    radius_diameter,
)
from repro.core.strategies import (
    NeighborMajorityPS,
    RebalancedStrategy,
    VertexAdditionStrategy,
)
from repro.runtime.metrics import snapshot_load


def main() -> None:
    # skewed growth: new nodes join as tight clusters, which a locality-
    # greedy placement would pile onto a few workers
    workload = incremental_stream(
        400, per_step=20, steps=6, n_communities_per_step=1, seed=31
    )
    print(f"monitoring a network of {workload.base.num_vertices} nodes,"
          f" {workload.total_added} arriving in 6 waves\n")

    engine = AnytimeAnywhereCloseness(
        workload.base, AnytimeConfig(nprocs=8, seed=31)
    )
    engine.setup()

    strategy = RebalancedStrategy(
        VertexAdditionStrategy(NeighborMajorityPS()), threshold=0.15
    )
    result = engine.run(changes=workload.stream, strategy=strategy)
    load = snapshot_load(engine.cluster)
    print(f"absorbed all waves in {result.rc_steps} RC steps;"
          f" rebalancer migrated {strategy.total_moves} vertices,"
          f" final vertex imbalance {load.vertex_imbalance:.2f}")

    # --- one substrate, many measures --------------------------------
    print("\ncentrality service (all from the same distance vectors):")
    for name in ("closeness", "harmonic", "eccentricity"):
        values = engine.current_measure(name)
        top = max(values, key=values.get)
        print(f"  {name:13s} top node {top:4d}  value {values[top]:.4f}")
    ecc = engine.current_measure("eccentricity")
    r, d = radius_diameter(ecc)
    print(f"  network radius {r:.0f}, diameter {d:.0f}")

    # --- a worker dies ------------------------------------------------
    victim = 3
    before = engine.modeled_seconds
    engine.crash_worker(victim)
    engine.run()  # re-converge
    print(f"\nworker {victim} crashed and warm-recovered;"
          f" recovery + re-convergence cost"
          f" {engine.modeled_seconds - before:.4f} modeled s")

    # --- validate everything against exact references ------------------
    checks = {
        "closeness": (engine.current_measure("closeness"),
                      exact_closeness(workload.final)),
        "harmonic": (engine.current_measure("harmonic"),
                     exact_harmonic(workload.final)),
        "eccentricity": (engine.current_measure("eccentricity"),
                         exact_eccentricity(workload.final)),
    }
    for name, (got, exact) in checks.items():
        err = max(abs(got[v] - exact[v]) for v in exact)
        print(f"post-recovery {name:13s} max error vs exact: {err:.2e}")


if __name__ == "__main__":
    main()
