"""Citation network: growth, retractions, and the adaptive strategy.

A citation network grows by *vertex additions* (new papers citing existing
ones — the paper's "adding new publications to a citation network"
example).  Occasionally a paper is retracted (*vertex deletion*) or a
citation is corrected (*edge deletion*).  This example exercises:

* the adaptive strategy (Fig. 1 line 16): small batches are absorbed with
  the anywhere vertex-addition strategy, a large conference-proceedings
  dump triggers Repartition-S,
* vertex/edge deletions — the paper's stated future work, implemented here,
* the anytime property: interrupted results remain valid upper bounds.

Run:  python examples/citation_network.py
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ChangeBatch, ChangeStream
from repro.centrality import exact_closeness
from repro.core.strategies import AdaptiveStrategy, CutEdgePS, RepartitionStrategy
from repro.graph import barabasi_albert, batch_from_subgraph, induced_subgraph
from repro.graph.changes import EdgeDeletion, VertexDeletion


def main() -> None:
    # a 400-paper citation graph (preferential attachment = citing the
    # already-well-cited, which is how citation networks actually grow)
    archive = barabasi_albert(520, 2, seed=23)
    base = induced_subgraph(archive, range(400))
    print(f"archive: {base.num_vertices} papers, {base.num_edges} citations")

    # --- build the event stream ----------------------------------------
    stream = ChangeStream()

    def growth_batch(lo: int, hi: int) -> ChangeBatch:
        newg = induced_subgraph(archive, range(lo, hi))
        attach = [
            (u, v, w)
            for u in range(lo, hi)
            for v, w in archive.adjacency_of(u).items()
            if v < lo
        ]
        return batch_from_subgraph(newg, attach)

    stream.schedule(1, growth_batch(400, 420))    # small weekly batch
    stream.schedule(3, growth_batch(420, 520))    # proceedings dump (25%!)
    stream.schedule(
        5,
        ChangeBatch(
            vertex_deletions=[VertexDeletion(137)],          # retraction
            edge_deletions=[EdgeDeletion(*_an_edge(archive, exclude=137))],
        ),
    )

    # --- run with the adaptive strategy ---------------------------------
    engine = AnytimeAnywhereCloseness(base, AnytimeConfig(nprocs=8, seed=23))
    engine.setup()
    adaptive = AdaptiveStrategy(
        CutEdgePS(), RepartitionStrategy(), threshold=0.10
    )
    from repro.core.strategies import CompositeStrategy

    # route growth through the adaptive chooser, deletions through the
    # deletion strategies
    strategy = CompositeStrategy(adaptive)
    result = engine.run(changes=stream, strategy=strategy)
    print(f"absorbed {stream.total_events()} events in {result.rc_steps}"
          f" RC steps; adaptive chose {adaptive.last_choice!r} for the"
          f" final growth batch")

    # --- validate --------------------------------------------------------
    final = base.copy()
    for _step, batch in stream:
        batch.apply_to(final)
    exact = exact_closeness(final)
    max_err = max(abs(result.closeness[v] - exact[v]) for v in exact)
    print(f"papers now: {final.num_vertices};"
          f" max |closeness - exact| = {max_err:.2e}")

    # --- anytime reads ----------------------------------------------------
    print("\nanytime snapshots (solution quality while events streamed in):")
    for snap in result.snapshots:
        label = "IA" if snap.step < 0 else f"RC{snap.step}"
        print(f"  {label:4s} n={snap.n_vertices:3d}"
              f" resolved={snap.resolved_fraction:6.1%}")


def _an_edge(graph, exclude: int):
    """Pick a deterministic low-degree citation to delete, avoiding the
    retracted paper (its edges disappear with the vertex)."""
    for u, v, _w in sorted(graph.edges()):
        if exclude not in (u, v) and u < 400 and v < 400:
            if graph.degree(u) > 2 and graph.degree(v) > 2:
                return u, v
    raise RuntimeError("no deletable citation found")


if __name__ == "__main__":
    main()
