"""Dynamic social network: communities joining an evolving network.

The paper's motivating scenario — "new actors joining an online community"
— modeled as whole friend-groups (communities) arriving while the
centrality analysis is running.  The example compares the three
incorporation strategies of the paper on the same change stream:

* RoundRobin-PS   — spread new actors evenly, ignore their friendships,
* CutEdge-PS      — co-locate friend groups to minimize cut edges,
* Repartition-S   — re-partition the whole network, reusing partial results,

and shows how the top-10 most central actors shift as the network grows.

Run:  python examples/dynamic_social_network.py
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import incremental_stream
from repro.centrality import exact_closeness, rank_vertices, top_k_overlap
from repro.partition.metrics import new_cut_edges


def main() -> None:
    # 500 existing actors; 5 waves of ~24 new actors joining as friend
    # groups while the analysis runs (one wave per recombination step)
    workload = incremental_stream(
        500, per_step=24, steps=5, n_communities_per_step=2, seed=11
    )
    print(f"base network: {workload.base.num_vertices} actors,"
          f" {workload.base.num_edges} ties")
    print(f"change stream: {workload.total_added} actors arriving over"
          f" {len(workload.stream.steps())} steps\n")

    exact = exact_closeness(workload.final)
    old_edges = {(u, v) for u, v, _w in workload.base.edges()}

    print(f"{'strategy':14s} {'modeled(s)':>10s} {'RC steps':>8s}"
          f" {'new cut edges':>14s} {'top-10 agreement':>17s}")
    for strategy in ("roundrobin", "cutedge", "repartition"):
        engine = AnytimeAnywhereCloseness(
            workload.base, AnytimeConfig(nprocs=8, seed=11)
        )
        engine.setup()
        result = engine.run(changes=workload.stream, strategy=strategy)
        cluster = engine.cluster
        assert cluster is not None and cluster.partition is not None
        nce = new_cut_edges(cluster.graph, cluster.partition, old_edges)
        agreement = top_k_overlap(result.closeness, exact, 10)
        print(f"{strategy:14s} {result.modeled_seconds:10.3f}"
              f" {result.rc_steps:8d} {nce:14d} {agreement:17.0%}")

    # --- who rose to the top? -------------------------------------------
    before = rank_vertices(exact_closeness(workload.base))[:10]
    after = rank_vertices(exact)[:10]
    print("\ntop-10 actors before the arrivals:", before)
    print("top-10 actors after the arrivals: ", after)
    newcomers = [v for v in after if v not in before]
    if newcomers:
        print(f"actors that rose into the top-10: {newcomers}")


if __name__ == "__main__":
    main()
