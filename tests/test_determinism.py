"""Regression tests for run-to-run determinism.

The repro-lint invariants (seeded randomness, sorted iteration over
rank/vertex sets, modeled-clock-only timing) exist so that two runs
with identical inputs produce *identical* results: same closeness bits,
same modeled trace, same fault-event log.  These tests pin that down
end to end; if a nondeterministic iteration sneaks back into the
runtime, they are the first to fail.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Dict, List, Tuple

from repro import (
    AnytimeAnywhereCloseness,
    AnytimeConfig,
    ChangeStream,
    ResilienceConfig,
)
from repro.graph import barabasi_albert
from repro.graph.changes import (
    ChangeBatch,
    EdgeAddition,
    EdgeDeletion,
    VertexAddition,
)
from repro.runtime.chaos import FaultPlan


def _build_engine(
    seed: int = 7, wire_format: str = "delta"
) -> AnytimeAnywhereCloseness:
    g = barabasi_albert(70, 2, seed=seed)
    engine = AnytimeAnywhereCloseness(
        g,
        AnytimeConfig(
            nprocs=4,
            seed=seed,
            collect_snapshots=False,
            wire_format=wire_format,
        ),
    )
    engine.setup()
    return engine


def _modeled_trace(engine: AnytimeAnywhereCloseness) -> List[Dict[str, Any]]:
    """The tracer's records with host-wall-clock fields stripped.

    Wall seconds legitimately differ between runs (RPL003's allowlisted
    tracing module reads the host clock); everything else must match.
    """
    dump = engine.cluster.tracer.to_json()
    records = []
    for rec in dump["records"]:
        rec = dict(rec)
        rec.pop("wall_seconds", None)
        records.append(rec)
    return records


def _closeness_bits(closeness: Dict[int, float]) -> List[Tuple[int, bytes]]:
    """(vertex, IEEE-754 bytes) pairs — bitwise, not approximate."""
    return [
        (v, struct.pack("<d", closeness[v])) for v in sorted(closeness)
    ]


def _changes() -> ChangeStream:
    return ChangeStream(
        {
            1: ChangeBatch(
                vertex_additions=[
                    VertexAddition(200, ((3, 1.0), (11, 1.0))),
                    VertexAddition(201, ((200, 1.0), (0, 1.0))),
                ],
                edge_additions=[EdgeAddition(5, 40)],
            ),
            2: ChangeBatch(edge_deletions=[EdgeDeletion(5, 40)]),
        }
    )


class TestStaticDeterminism:
    def test_two_runs_bitwise_identical(self) -> None:
        results = []
        for _ in range(2):
            engine = _build_engine()
            res = engine.run()
            results.append(
                (
                    _closeness_bits(res.closeness),
                    res.rc_steps,
                    res.modeled_seconds,
                    _modeled_trace(engine),
                )
            )
        assert results[0] == results[1]

    def test_trace_has_substance(self) -> None:
        engine = _build_engine()
        engine.run()
        trace = _modeled_trace(engine)
        assert trace, "tracer recorded no phases"
        assert any(r["words"] > 0 for r in trace), "no comm was charged"


class TestDynamicDeterminism:
    def test_vertex_addition_runs_identical(self) -> None:
        results = []
        for _ in range(2):
            engine = _build_engine()
            res = engine.run(changes=_changes(), strategy="cutedge")
            results.append(
                (
                    _closeness_bits(res.closeness),
                    res.rc_steps,
                    res.modeled_seconds,
                    _modeled_trace(engine),
                )
            )
        assert results[0] == results[1]


class TestWireFormatEquivalence:
    """The delta wire format is an encoding, not an approximation.

    The dense format is the reference oracle: for the same inputs the two
    formats must converge to bitwise-identical closeness values.  The
    modeled wire traffic is where they are *allowed* (required) to
    differ — deltas must be strictly cheaper once rows start refining.
    """

    def test_static_dense_vs_delta_bitwise_identical(self) -> None:
        by_format = {}
        for fmt in ("dense", "delta"):
            engine = _build_engine(wire_format=fmt)
            res = engine.run()
            by_format[fmt] = res
        assert _closeness_bits(
            by_format["dense"].closeness
        ) == _closeness_bits(by_format["delta"].closeness)
        assert (
            by_format["delta"].boundary_words
            < by_format["dense"].boundary_words
        )
        assert by_format["delta"].boundary_rows_sparse > 0
        assert by_format["dense"].boundary_rows_sparse == 0

    def test_dynamic_dense_vs_delta_bitwise_identical(self) -> None:
        by_format = {}
        for fmt in ("dense", "delta"):
            engine = _build_engine(wire_format=fmt)
            res = engine.run(changes=_changes(), strategy="cutedge")
            by_format[fmt] = res
        assert _closeness_bits(
            by_format["dense"].closeness
        ) == _closeness_bits(by_format["delta"].closeness)
        assert (
            by_format["delta"].boundary_words
            < by_format["dense"].boundary_words
        )

    def test_delta_runs_bitwise_repeatable(self) -> None:
        results = []
        for _ in range(2):
            engine = _build_engine(wire_format="delta")
            res = engine.run(changes=_changes(), strategy="cutedge")
            results.append(
                (
                    _closeness_bits(res.closeness),
                    res.rc_steps,
                    res.boundary_words,
                    res.modeled_seconds,
                    _modeled_trace(engine),
                )
            )
        assert results[0] == results[1]


class TestChaosDeterminism:
    def test_faulty_runs_identical_traces_and_results(self) -> None:
        plan = FaultPlan(
            seed=11,
            crashes=((2, 1),),
            loss_prob=0.15,
            dup_prob=0.05,
            send_failure_prob=0.05,
        )
        results = []
        for _ in range(2):
            engine = _build_engine()
            res = engine.run(resilience=ResilienceConfig(fault_plan=plan))
            results.append(
                (
                    _closeness_bits(res.closeness),
                    tuple(res.fault_events),
                    res.faults_injected,
                    res.retries,
                    res.recoveries,
                    res.modeled_seconds,
                    _modeled_trace(engine),
                )
            )
        assert results[0] == results[1]
        assert results[0][2] > 0, "the plan injected no faults"

    def test_health_mitigated_runs_identical(self) -> None:
        """Straggler mitigation (speculation + seeded backoff) must be
        as repeatable as the fault-free path: same modeled trace bits,
        same backoff delays, same closeness."""
        from repro import HealthPolicy

        plan = FaultPlan(seed=13, stragglers=((1, 8.0),), loss_prob=0.1)
        results = []
        for _ in range(2):
            g = barabasi_albert(70, 2, seed=7)
            engine = AnytimeAnywhereCloseness(
                g,
                AnytimeConfig(
                    nprocs=4,
                    seed=7,
                    collect_snapshots=False,
                    health=HealthPolicy(),
                ),
            )
            engine.setup()
            res = engine.run(resilience=ResilienceConfig(fault_plan=plan))
            results.append(
                (
                    _closeness_bits(res.closeness),
                    tuple(res.fault_events),
                    res.speculations,
                    res.missed_deadlines,
                    res.backoff_modeled_seconds,
                    res.modeled_seconds,
                    _modeled_trace(engine),
                )
            )
        assert results[0] == results[1]
        assert results[0][2] > 0, "no speculation was triggered"

    def test_degraded_runs_identical(self) -> None:
        """Graceful degradation is pinned too: the partial closeness, the
        quality statement, and the fault log of a budget-exhausted run
        are byte-for-byte repeatable."""
        from repro import HealthPolicy

        plan = FaultPlan(seed=17, crashes=((1, 0), (2, 0), (3, 0)))
        results = []
        for _ in range(2):
            g = barabasi_albert(70, 2, seed=7)
            engine = AnytimeAnywhereCloseness(
                g,
                AnytimeConfig(
                    nprocs=4,
                    seed=7,
                    collect_snapshots=False,
                    resilience=ResilienceConfig(
                        recovery="escalate", checkpoint_interval=2
                    ),
                    health=HealthPolicy(crash_budget=2),
                ),
            )
            engine.setup()
            res = engine.run(
                resilience=dataclasses.replace(
                    engine.config.resilience, fault_plan=plan
                )
            )
            results.append(
                (
                    res.degraded,
                    res.degraded_reason,
                    _closeness_bits(res.closeness),
                    tuple(sorted(res.quality.items())),
                    tuple(res.fault_events),
                    res.recoveries_by_rung,
                    res.modeled_seconds,
                    _modeled_trace(engine),
                )
            )
        assert results[0] == results[1]
        assert results[0][0] is True, "the plan did not exhaust the budget"
        assert results[0][1] == "crash-budget"
