"""Tests for the LogP/LogGP network model."""

import pytest

from repro.errors import ConfigurationError
from repro.model import DEFAULT_LOGP, LogPParams


def test_defaults_valid():
    assert DEFAULT_LOGP.latency > 0
    assert DEFAULT_LOGP.word_bytes == 8


def test_message_time_monotone_in_size():
    p = LogPParams()
    times = [p.message_time(b) for b in (0, 100, 10_000, 10_000_000)]
    assert times == sorted(times)
    assert times[0] > 0  # even empty messages pay header cost


def test_empty_message_costs_header():
    p = LogPParams()
    assert p.message_time(0) == pytest.approx(2 * p.overhead + p.latency)


def test_bandwidth_term():
    p = LogPParams(latency=0.0, overhead=0.0, gap=0.0, byte_gap=1e-9)
    assert p.message_time(1000) == pytest.approx(1e-6)


def test_chunking():
    p = LogPParams(max_message_bytes=100)
    assert p.chunks(0) == 1
    assert p.chunks(100) == 1
    assert p.chunks(101) == 2
    assert p.chunks(1000) == 10


def test_chunked_message_pays_per_chunk_header():
    p = LogPParams(max_message_bytes=100, gap=0.0)
    one = p.message_time(100)
    ten = p.message_time(1000)
    header = 2 * p.overhead + p.latency
    assert ten == pytest.approx(10 * header + 1000 * p.byte_gap)
    assert ten > 9 * one


def test_words_time():
    p = LogPParams()
    assert p.words_time(10) == p.message_time(80)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"latency": -1.0},
        {"overhead": -0.1},
        {"byte_gap": -1e-9},
        {"max_message_bytes": 4},
        {"word_bytes": 0},
    ],
)
def test_invalid_params(kwargs):
    with pytest.raises(ConfigurationError):
        LogPParams(**kwargs)


def test_frozen():
    p = LogPParams()
    with pytest.raises(Exception):
        p.latency = 1.0  # type: ignore[misc]
