"""Tests for communication schedules."""


import pytest

from repro.model import (
    SCHEDULES,
    FloodAllToAll,
    LogPParams,
    PairwiseRounds,
    SequentialAllToAll,
    tree_broadcast_time,
)

P = LogPParams()


def all_to_all_messages(nprocs: int, nbytes: int):
    return [
        (s, d, nbytes)
        for s in range(nprocs)
        for d in range(nprocs)
        if s != d
    ]


def test_sequential_is_sum():
    msgs = all_to_all_messages(4, 1000)
    t = SequentialAllToAll().exchange_time(msgs, P)
    assert t == pytest.approx(12 * P.message_time(1000))


def test_pairwise_faster_than_sequential():
    msgs = all_to_all_messages(8, 10_000)
    seq = SequentialAllToAll().exchange_time(msgs, P)
    pair = PairwiseRounds().exchange_time(msgs, P)
    assert pair < seq / 4  # 7 rounds vs 56 serialized messages


def test_pairwise_power_of_two_rounds():
    # uniform messages: time = (P-1) * message_time
    msgs = all_to_all_messages(8, 500)
    t = PairwiseRounds().exchange_time(msgs, P)
    assert t == pytest.approx(7 * P.message_time(500))


def test_pairwise_non_power_of_two():
    msgs = all_to_all_messages(6, 500)
    t = PairwiseRounds().exchange_time(msgs, P)
    assert t == pytest.approx(5 * P.message_time(500))


def test_empty_exchange_free():
    for sched in SCHEDULES.values():
        assert sched.exchange_time([], P) == 0.0


def test_self_messages_free():
    t = SequentialAllToAll().exchange_time([(0, 0, 10**6)], P)
    assert t == 0.0
    assert PairwiseRounds().exchange_time([(2, 2, 10**6)], P) == 0.0


def test_flood_contention_penalty():
    msgs = all_to_all_messages(8, 1_000_000)
    flood = FloodAllToAll(contention_factor=2.0).exchange_time(msgs, P)
    payload = 56 * 1_000_000 * P.byte_gap
    assert flood >= 2.0 * payload


def test_flood_headers_overlap():
    # tiny messages: flood beats sequential because headers overlap
    msgs = all_to_all_messages(8, 8)
    flood = FloodAllToAll().exchange_time(msgs, P)
    seq = SequentialAllToAll().exchange_time(msgs, P)
    assert flood < seq


def test_tree_broadcast_log_depth():
    t2 = tree_broadcast_time(1000, 2, P)
    t16 = tree_broadcast_time(1000, 16, P)
    assert t16 == pytest.approx(4 * t2)
    assert tree_broadcast_time(1000, 1, P) == 0.0


def test_registry_names():
    assert set(SCHEDULES) == {"sequential", "pairwise", "flood"}
    for name, sched in SCHEDULES.items():
        assert sched.name == name
