"""Tests for the compute cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.model import DEFAULT_COST, CostModel


def test_dijkstra_scales_with_sources():
    c = CostModel()
    assert c.dijkstra_time(20, 100, 400) == pytest.approx(
        2 * c.dijkstra_time(10, 100, 400)
    )


def test_dijkstra_threads_divide():
    c1 = CostModel(threads=1)
    c8 = CostModel(threads=8)
    assert c1.dijkstra_time(10, 100, 400) == pytest.approx(
        8 * c8.dijkstra_time(10, 100, 400)
    )


def test_dijkstra_zero_sources_free():
    assert CostModel().dijkstra_time(0, 100, 400) == 0.0


def test_minplus_time():
    c = CostModel(flop=1e-9)
    assert c.minplus_time(10, 20, 30) == pytest.approx(2 * 6000 * 1e-9)


def test_relax_and_scan_and_vertex():
    c = CostModel(flop=1e-9, edge_scan=2e-9, per_vertex=3e-9)
    assert c.relax_time(100) == pytest.approx(2e-7)
    assert c.scan_time(100) == pytest.approx(2e-7)
    assert c.vertex_time(100) == pytest.approx(3e-7)


def test_partition_time_grows_with_edges():
    c = CostModel()
    assert c.partition_time(100, 1000, 4) > c.partition_time(100, 100, 4)
    assert c.partition_time(0, 0, 4) == 0.0


def test_resize_time():
    c = CostModel(flop=1e-9)
    assert c.resize_time(10, 5) == pytest.approx(5e-8)


def test_with_threads():
    c = DEFAULT_COST.with_threads(2)
    assert c.threads == 2
    assert DEFAULT_COST.threads != 2 or True  # original untouched
    assert c.flop == DEFAULT_COST.flop


@pytest.mark.parametrize(
    "kwargs", [{"flop": -1e-9}, {"heap_op": -1.0}, {"threads": 0}]
)
def test_invalid(kwargs):
    with pytest.raises(ConfigurationError):
        CostModel(**kwargs)
