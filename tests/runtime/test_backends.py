"""Execution backends: process must be bitwise-identical to serial.

The process backend runs the exact kernel functions serial runs, one
rank per pool slot, merging outcomes in rank order — so closeness bits,
the trace event sequence, the modeled clock, and the wire/fault
accounting must all match exactly, on static and dynamic runs and under
a seeded fault plan.  Also covers the shared-memory allocator and the
backend factory.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

import numpy as np
import pytest

import repro
from repro import AnytimeAnywhereCloseness, AnytimeConfig, ResilienceConfig
from repro.errors import ConfigurationError
from repro.graph import barabasi_albert
from repro.graph.changes import (
    ChangeBatch,
    ChangeStream,
    EdgeAddition,
    EdgeDeletion,
    VertexAddition,
)
from repro.runtime import (
    ProcessBackend,
    SerialBackend,
    available_backends,
    make_backend,
)
from repro.runtime.backends.base import ExecutionBackend
from repro.runtime.chaos import FaultPlan
from repro.runtime.shm import ArrayAllocator, SharedMemoryAllocator


def _bits(closeness: Dict[int, float]) -> List[Tuple[int, bytes]]:
    return [(v, struct.pack("<d", closeness[v])) for v in sorted(closeness)]


def _trace(engine: AnytimeAnywhereCloseness) -> List[Dict[str, Any]]:
    dump = engine.cluster.tracer.to_json()
    records = []
    for rec in dump["records"]:
        rec = dict(rec)
        rec.pop("wall_seconds", None)
        records.append(rec)
    return records


def _changes() -> ChangeStream:
    return ChangeStream(
        {
            1: ChangeBatch(
                vertex_additions=[
                    VertexAddition(200, ((3, 1.0), (11, 1.0))),
                    VertexAddition(201, ((200, 1.0), (0, 1.0))),
                ],
                edge_additions=[EdgeAddition(5, 40)],
            ),
            2: ChangeBatch(edge_deletions=[EdgeDeletion(5, 40)]),
        }
    )


def _run(backend: str, *, changes=None, strategy=None, fault_plan=None):
    g = barabasi_albert(70, 2, seed=7)
    engine = AnytimeAnywhereCloseness(
        g,
        AnytimeConfig(
            nprocs=4, seed=7, collect_snapshots=False, backend=backend
        ),
    )
    engine.setup()
    kwargs: Dict[str, Any] = {}
    if changes is not None:
        kwargs["changes"] = changes
        kwargs["strategy"] = strategy
    if fault_plan is not None:
        kwargs["resilience"] = ResilienceConfig(fault_plan=fault_plan)
    res = engine.run(**kwargs)
    summary = res.summary()
    summary.pop("wall_seconds", None)
    fingerprint = (
        _bits(res.closeness),
        res.rc_steps,
        res.modeled_seconds,
        summary,
        _trace(engine),
    )
    engine.cluster.close()
    return fingerprint


class TestProcessMatchesSerial:
    """Acceptance criterion: bitwise identity across backends."""

    def test_static_run_identical(self):
        assert _run("serial") == _run("process")

    def test_dynamic_run_identical(self):
        assert _run(
            "serial", changes=_changes(), strategy="cutedge"
        ) == _run("process", changes=_changes(), strategy="cutedge")

    def test_faulty_run_identical(self):
        def plan():
            return FaultPlan(
                seed=11,
                crashes=((2, 1),),
                loss_prob=0.15,
                dup_prob=0.05,
                send_failure_prob=0.05,
            )

        serial = _run(
            "serial", changes=_changes(), strategy="cutedge",
            fault_plan=plan(),
        )
        process = _run(
            "process", changes=_changes(), strategy="cutedge",
            fault_plan=plan(),
        )
        assert serial == process

    def test_one_shot_api_accepts_backend(self):
        g = barabasi_albert(60, 2, seed=3)
        results = {}
        for backend in available_backends():
            cfg = AnytimeConfig(
                nprocs=3, seed=3, collect_snapshots=False, backend=backend
            )
            results[backend] = repro.closeness(g.copy(), config=cfg)
        assert _bits(results["serial"].closeness) == _bits(
            results["process"].closeness
        )


class TestBackendFactory:
    def test_available_backends(self):
        assert available_backends() == ("serial", "process")

    def test_make_backend_by_name(self):
        assert isinstance(make_backend("serial", 4), SerialBackend)
        assert isinstance(make_backend("process", 4), ProcessBackend)

    def test_make_backend_passthrough(self):
        backend = SerialBackend()
        assert make_backend(backend, 4) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            make_backend("threads", 4)

    def test_config_validates_backend(self):
        with pytest.raises(ConfigurationError):
            AnytimeConfig(backend="threads")

    def test_config_reads_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert AnytimeConfig().backend == "process"
        monkeypatch.delenv("REPRO_BACKEND")
        assert AnytimeConfig().backend == "serial"

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            ExecutionBackend()  # type: ignore[abstract]


class TestSharedMemoryAllocator:
    def test_empty_is_shared_and_described(self):
        alloc = SharedMemoryAllocator()
        arr = alloc.empty((3, 5))
        assert alloc.owns(arr)
        name, shape = alloc.descriptor(arr)
        assert shape == (3, 5)
        assert isinstance(name, str) and name
        alloc.release_all()

    def test_adopt_copies_foreign_arrays(self):
        alloc = SharedMemoryAllocator()
        src = np.arange(6, dtype=np.float64).reshape(2, 3)
        owned = alloc.adopt(src, None)
        assert owned is not src
        assert alloc.owns(owned)
        np.testing.assert_array_equal(owned, src)
        alloc.release_all()

    def test_adopt_releases_replaced_block(self):
        alloc = SharedMemoryAllocator()
        first = alloc.empty((2, 2))
        second = alloc.adopt(np.zeros((4, 4)), first)
        assert not alloc.owns(first)
        assert alloc.owns(second)
        alloc.release_all()

    def test_adopt_keeps_own_array(self):
        alloc = SharedMemoryAllocator()
        arr = alloc.empty((2, 2))
        assert alloc.adopt(arr, arr) is arr
        assert alloc.owns(arr)
        alloc.release_all()

    def test_descriptor_rejects_foreign_array(self):
        alloc = SharedMemoryAllocator()
        with pytest.raises(TypeError):
            alloc.descriptor(np.zeros((2, 2)))

    def test_zero_size_arrays_supported(self):
        # dv/local_apsp start as (0, 0); shm segments cannot be 0 bytes
        alloc = SharedMemoryAllocator()
        arr = alloc.empty((0, 0))
        assert arr.shape == (0, 0)
        alloc.release_all()

    def test_plain_allocator_is_passthrough(self):
        alloc = ArrayAllocator()
        src = np.zeros((2, 2))
        assert alloc.adopt(src, None) is src
        assert not alloc.shared
        with pytest.raises(TypeError):
            alloc.descriptor(src)
