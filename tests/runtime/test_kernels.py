"""Edge cases of the blocked batched min-plus kernel.

The fold in :func:`repro.runtime.kernels.minplus_fold` (used by
``Worker.propagate_local``) processes sources in blocks, clamps the
block size to 1 when ``n * c`` exceeds the broadcast-temporary element
budget, and skips blocks whose sources are all infinite.  Every variant
must be bitwise-equal to a naive unblocked reference fold.

The implementation module is :mod:`repro.runtime.kernels.oracle` (the
``numpy`` tier delegates to it), so the block-size knobs are patched
there.
"""

from __future__ import annotations

from typing import List

import numpy as np

import repro.runtime.kernels.oracle as kernels
from repro.graph import extract_local_subgraph
from repro.model import DEFAULT_COST
from repro.runtime import GlobalIndex, Worker

from ..conftest import path_graph


def unblocked_reference(
    apsp: np.ndarray, dv: np.ndarray, rows: List[int], cols: np.ndarray
) -> np.ndarray:
    """One source per np.minimum call — the obviously-correct fold."""
    dv = dv.copy()
    a = apsp[:, rows]
    b = dv[np.asarray(rows)][:, cols]
    cand = np.full((apsp.shape[0], len(cols)), np.inf, dtype=np.float64)
    for j in range(len(rows)):
        np.minimum(cand, a[:, j][:, None] + b[j][None, :], out=cand)
    sub = dv[:, cols]
    improved = cand < sub
    sub[improved] = cand[improved]
    dv[:, cols] = sub
    return dv


def random_case(seed: int, n: int = 12, n_cols: int = 30):
    rng = np.random.default_rng(seed)
    apsp = rng.uniform(0.5, 8.0, size=(n, n))
    np.fill_diagonal(apsp, 0.0)
    dv = rng.uniform(0.5, 20.0, size=(n, n_cols))
    dv[rng.random(dv.shape) < 0.2] = np.inf
    rows = sorted(rng.choice(n, size=max(2, n // 2), replace=False).tolist())
    cols = np.flatnonzero(rng.random(n_cols) < 0.7)
    return apsp, dv, rows, cols


class _CountingMin:
    """Wrap np.min to count per-block reductions inside the fold."""

    def __init__(self):
        self.calls = 0
        self._min = np.min

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self._min(*args, **kwargs)


class TestBlockClamping:
    def test_block_clamps_to_one_when_budget_exceeded(self, monkeypatch):
        apsp, dv, rows, cols = random_case(seed=1)
        expected = unblocked_reference(apsp, dv, rows, cols)
        # budget of 1 element < n * c, so the clamp must kick in
        monkeypatch.setattr(kernels, "_MINPLUS_BLOCK_ELEMS", 1)
        counter = _CountingMin()
        monkeypatch.setattr(kernels.np, "min", counter)
        got = dv.copy()
        kernels.minplus_fold(apsp, got, rows, cols)
        # one reduction per source == block size was clamped to 1
        assert counter.calls == len(rows)
        assert got.tobytes() == expected.tobytes()

    def test_max_block_cap_respected(self, monkeypatch):
        apsp, dv, rows, cols = random_case(seed=2)
        expected = unblocked_reference(apsp, dv, rows, cols)
        # huge budget, but the per-call source cap forces 2-wide blocks
        monkeypatch.setattr(kernels, "_MINPLUS_MAX_BLOCK", 2)
        counter = _CountingMin()
        monkeypatch.setattr(kernels.np, "min", counter)
        got = dv.copy()
        kernels.minplus_fold(apsp, got, rows, cols)
        assert counter.calls == -(-len(rows) // 2)  # ceil(k / 2)
        assert got.tobytes() == expected.tobytes()


class TestInfiniteSourceBlocks:
    def test_all_infinite_source_blocks_skipped(self, monkeypatch):
        apsp, dv, rows, cols = random_case(seed=3)
        # make every selected source column of apsp infinite except two:
        # with block size 1, only those two blocks may reduce
        finite = {rows[0], rows[-1]}
        for r in rows:
            if r not in finite:
                apsp[:, r] = np.inf
        expected = unblocked_reference(apsp, dv, rows, cols)
        monkeypatch.setattr(kernels, "_MINPLUS_BLOCK_ELEMS", 1)
        counter = _CountingMin()
        monkeypatch.setattr(kernels.np, "min", counter)
        got = dv.copy()
        kernels.minplus_fold(apsp, got, rows, cols)
        assert counter.calls == len(finite)
        assert got.tobytes() == expected.tobytes()

    def test_partial_infinite_block_compacted(self, monkeypatch):
        # block of 4 with 2 infinite sources: the kernel compacts the
        # block instead of skipping it, still bitwise-equal
        apsp, dv, rows, cols = random_case(seed=4)
        apsp[:, rows[1]] = np.inf
        apsp[:, rows[2]] = np.inf
        expected = unblocked_reference(apsp, dv, rows, cols)
        monkeypatch.setattr(kernels, "_MINPLUS_MAX_BLOCK", 4)
        got = dv.copy()
        kernels.minplus_fold(apsp, got, rows, cols)
        assert got.tobytes() == expected.tobytes()

    def test_all_sources_infinite_no_write(self, monkeypatch):
        apsp, dv, rows, cols = random_case(seed=5)
        for r in rows:
            apsp[:, r] = np.inf
        before = dv.copy()
        counter = _CountingMin()
        monkeypatch.setattr(kernels.np, "min", counter)
        improved = kernels.minplus_fold(apsp, dv, rows, cols)
        assert counter.calls == 0
        assert improved == []
        assert dv.tobytes() == before.tobytes()


class TestPropagateLocalUsesBlockedFold:
    """End-to-end through the worker: blocking is invisible bitwise."""

    def _worker(self):
        g = path_graph(6)
        owner = {v: (0 if v < 4 else 1) for v in range(6)}
        idx = GlobalIndex(g.vertex_list())
        w = Worker(0, 2, idx, DEFAULT_COST)
        w.load_subgraph(extract_local_subgraph(g, [0, 1, 2, 3], owner, 0))
        w.run_initial_approximation()
        return w

    def test_block_size_does_not_change_dv(self, monkeypatch):
        baseline = self._worker()
        baseline.propagate_local()
        monkeypatch.setattr(kernels, "_MINPLUS_BLOCK_ELEMS", 1)
        clamped = self._worker()
        clamped.propagate_local()
        assert clamped.dv.tobytes() == baseline.dv.tobytes()
