"""Unit tests for the Worker's numeric kernels."""

import numpy as np
import pytest

from repro.errors import WorkerError
from repro.graph import extract_local_subgraph
from repro.model import DEFAULT_COST
from repro.runtime import GlobalIndex, Worker

from ..conftest import path_graph


def make_worker(graph, owned, owner_map, rank=0, nprocs=2, index=None):
    index = index or GlobalIndex(graph.vertex_list())
    w = Worker(rank, nprocs, index, DEFAULT_COST)
    sub = extract_local_subgraph(graph, owned, owner_map, rank)
    w.load_subgraph(sub)
    return w


def path4_worker():
    """Path 0-1-2-3; rank 0 owns {0,1}, rank 1 owns {2,3}."""
    g = path_graph(4)
    owner = {0: 0, 1: 0, 2: 1, 3: 1}
    return g, make_worker(g, [0, 1], owner)


class TestLoadAndIA:
    def test_dv_initialized(self):
        _g, w = path4_worker()
        assert w.n_local == 2
        assert w.dv.shape == (2, 4)
        assert w.dv[w.row_of[0], 0] == 0.0
        assert np.isinf(w.dv[w.row_of[0], 3])

    def test_ia_computes_local_apsp(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        assert w.local_apsp[w.row_of[0], w.row_of[1]] == 1.0
        assert w.dv[w.row_of[0], 1] == 1.0
        assert np.isinf(w.dv[w.row_of[0], 2])  # remote: unknown after IA

    def test_ia_charges_compute(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        assert w.take_compute_seconds() > 0.0
        assert w.take_compute_seconds() == 0.0  # drained

    def test_seed_rows_reused(self):
        g = path_graph(4)
        owner = {0: 0, 1: 0, 2: 1, 3: 1}
        idx = GlobalIndex(g.vertex_list())
        w = Worker(0, 2, idx, DEFAULT_COST)
        sub = extract_local_subgraph(g, [0, 1], owner, 0)
        seed = {0: np.array([0.0, 1.0, 2.0, 3.0])}
        w.load_subgraph(sub, seed_rows=seed)
        assert w.dv[w.row_of[0], 3] == 3.0

    def test_seed_row_for_foreign_vertex_rejected(self):
        g = path_graph(4)
        owner = {0: 0, 1: 0, 2: 1, 3: 1}
        idx = GlobalIndex(g.vertex_list())
        w = Worker(0, 2, idx, DEFAULT_COST)
        sub = extract_local_subgraph(g, [0, 1], owner, 0)
        with pytest.raises(WorkerError):
            w.load_subgraph(sub, seed_rows={2: np.zeros(4)})


class TestMessaging:
    def test_subscribe_queues_current_row(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.build_payload(1)  # drain whatever IA queued
        w.subscribe(1, 1)
        payload = w.build_payload(1)
        assert set(payload) == {1}
        np.testing.assert_array_equal(payload[1], w.dv[w.row_of[1]])

    def test_subscribe_foreign_vertex_rejected(self):
        _g, w = path4_worker()
        with pytest.raises(WorkerError):
            w.subscribe(2, 1)

    def test_changed_rows_requeued(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.subscribe(1, 1)
        w.build_payload(1)
        # a fresh external row improving vertex 1 re-queues it
        row2 = np.array([np.inf, np.inf, 0.0, 1.0])
        w.receive_rows({2: row2})
        assert w.relax_cut_edges()
        assert 1 in w.build_payload(1)

    def test_receive_wrong_width_rejected(self):
        _g, w = path4_worker()
        with pytest.raises(WorkerError):
            w.receive_rows({2: np.zeros(3)})

    def test_unsubscribe_rank(self):
        _g, w = path4_worker()
        w.subscribe(1, 1)
        w.unsubscribe_rank(1)
        assert not w.build_payload(1)


class TestRelaxAndPropagate:
    def test_cut_relax_improves_boundary(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        row2 = np.array([np.inf, np.inf, 0.0, 1.0])
        w.receive_rows({2: row2})
        assert w.relax_cut_edges()
        assert w.dv[w.row_of[1], 2] == 1.0  # 1 -(1)- 2
        assert w.dv[w.row_of[1], 3] == 2.0

    def test_propagation_reaches_interior(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.propagate_local()  # consume IA's changed rows
        w.receive_rows({2: np.array([np.inf, np.inf, 0.0, 1.0])})
        w.relax_cut_edges()
        assert w.propagate_local()
        assert w.dv[w.row_of[0], 2] == 2.0  # 0-1 + cut edge 1-2
        assert w.dv[w.row_of[0], 3] == 3.0

    def test_stale_external_rows_not_rerelaxed(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.receive_rows({2: np.array([np.inf, np.inf, 0.0, 1.0])})
        w.relax_cut_edges()
        assert not w.relax_cut_edges()  # nothing fresh

    def test_propagate_idempotent(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.propagate_local()
        assert not w.propagate_local()

    def test_monotone_nonincreasing(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        before = w.dv.copy()
        w.receive_rows({2: np.array([np.inf, np.inf, 0.0, 1.0])})
        w.relax_cut_edges()
        w.propagate_local()
        assert np.all(w.dv <= before)


class TestDynamicColumnsAndVertices:
    def test_grow_columns(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.index.add(4)
        w.grow_columns(5)
        assert w.dv.shape == (2, 5)
        assert np.isinf(w.dv[:, 4]).all()

    def test_grow_columns_pads_external_rows(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.receive_rows({2: np.array([np.inf, np.inf, 0.0, 1.0])})
        w.index.add(4)
        w.grow_columns(5)
        assert w.ext_dvs[2].size == 5

    def test_shrink_rejected(self):
        _g, w = path4_worker()
        with pytest.raises(WorkerError):
            w.grow_columns(2)

    def test_add_local_vertex(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.index.add(4)
        w.grow_columns(5)
        r = w.add_local_vertex(4)
        assert w.dv[r, 4] == 0.0
        assert w.local_apsp.shape == (3, 3)
        assert w.local_apsp[r, r] == 0.0
        assert np.isinf(w.local_apsp[r, 0])

    def test_add_local_vertex_twice_rejected(self):
        _g, w = path4_worker()
        with pytest.raises(WorkerError):
            w.add_local_vertex(0)

    def test_add_unindexed_vertex_rejected(self):
        _g, w = path4_worker()
        with pytest.raises(WorkerError):
            w.add_local_vertex(77)

    def test_add_local_edge_repairs_apsp(self):
        g = path_graph(4)
        owner = {v: 0 for v in range(4)}
        w = make_worker(g, [0, 1, 2, 3], owner, nprocs=1)
        w.run_initial_approximation()
        assert w.local_apsp[w.row_of[0], w.row_of[3]] == 3.0
        w.add_local_edge(0, 3, 1.0)
        assert w.local_apsp[w.row_of[0], w.row_of[3]] == 1.0
        assert w.local_apsp[w.row_of[1], w.row_of[3]] == 2.0
        assert w.dv[w.row_of[0], 3] == 1.0

    def test_add_cut_edge_registers(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.add_cut_edge(0, 3, 2.0)
        assert (0, 2.0) in w.cut_by_ext[3]
        assert w.cut_adj[0][3] == 2.0

    def test_add_cut_edge_replaces_duplicate(self):
        _g, w = path4_worker()
        w.add_cut_edge(0, 3, 2.0)
        w.add_cut_edge(0, 3, 1.0)
        assert w.cut_by_ext[3] == [(0, 1.0)]

    def test_remove_cut_edge_cleans_up(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.receive_rows({2: np.array([np.inf, np.inf, 0.0, 1.0])})
        w.remove_cut_edge(1, 2)
        assert 2 not in w.cut_by_ext
        assert 2 not in w.ext_dvs


class TestEdgeRowRelaxation:
    def test_relax_with_edge_rows(self):
        g = path_graph(4)
        owner = {v: 0 for v in range(4)}
        w = make_worker(g, [0, 1, 2, 3], owner, nprocs=1)
        w.run_initial_approximation()
        row0 = w.dv_row(0)
        row3 = w.dv_row(3)
        assert w.relax_with_edge_rows(0, row0, 3, row3, 1.0)
        assert w.dv[w.row_of[0], 3] == 1.0
        assert w.dv[w.row_of[1], 3] == 2.0

    def test_relax_no_improvement(self):
        g = path_graph(3)
        owner = {v: 0 for v in range(3)}
        w = make_worker(g, [0, 1, 2], owner, nprocs=1)
        w.run_initial_approximation()
        row0, row1 = w.dv_row(0), w.dv_row(1)
        assert not w.relax_with_edge_rows(0, row0, 1, row1, 5.0)


class TestDeletionKernels:
    def test_invalidate_for_deleted_edge(self):
        g = path_graph(4)
        owner = {v: 0 for v in range(4)}
        w = make_worker(g, [0, 1, 2, 3], owner, nprocs=1)
        w.run_initial_approximation()
        row1, row2 = w.dv_row(1), w.dv_row(2)
        count = w.invalidate_for_deleted_edge(1, row1, 2, row2, 1.0)
        # pairs crossing the 1-2 edge: (0,2),(0,3),(1,2),(1,3),(2,3) and
        # symmetric counterparts that live in these rows
        assert count == 8
        assert np.isinf(w.dv[w.row_of[0], 2])
        assert w.dv[w.row_of[0], 1] == 1.0  # untouched: avoids the edge
        assert w.dv[w.row_of[0], 0] == 0.0  # diagonal preserved

    def test_invalidate_through_vertex(self):
        g = path_graph(3)
        owner = {v: 0 for v in range(3)}
        w = make_worker(g, [0, 1, 2], owner, nprocs=1)
        w.run_initial_approximation()
        row1 = w.dv_row(1)
        count = w.invalidate_through_vertex(1, row1)
        assert count == 2  # (0,2) and (2,0)
        assert np.isinf(w.dv[w.row_of[0], 2])
        assert w.dv[w.row_of[0], 1] == 1.0  # direct edge untouched

    def test_restore_local_baseline(self):
        g = path_graph(3)
        owner = {v: 0 for v in range(3)}
        w = make_worker(g, [0, 1, 2], owner, nprocs=1)
        w.run_initial_approximation()
        w.dv[:] = np.inf
        w.restore_local_baseline()
        assert w.dv[w.row_of[0], 2] == 2.0

    def test_remove_column(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.receive_rows({2: np.array([np.inf, np.inf, 0.0, 1.0])})
        w.remove_column(3)
        assert w.dv.shape == (2, 3)
        assert w.ext_dvs[2].size == 3

    def test_remove_local_vertex(self):
        g = path_graph(4)
        owner = {v: 0 for v in range(4)}
        w = make_worker(g, [0, 1, 2, 3], owner, nprocs=1)
        w.run_initial_approximation()
        w.remove_local_vertex(1)
        assert w.owned == [0, 2, 3]
        assert w.row_of == {0: 0, 2: 1, 3: 2}
        assert w.dv.shape == (3, 4)
        assert w.local_apsp.shape == (3, 3)

    def test_drop_external_vertex(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        w.receive_rows({2: np.array([np.inf, np.inf, 0.0, 1.0])})
        w.drop_external_vertex(2)
        assert 2 not in w.ext_dvs
        assert 2 not in w.cut_by_ext
        assert not any(2 in d for d in w.cut_adj.values())


class TestQueries:
    def test_dv_row_is_copy(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        row = w.dv_row(0)
        row[0] = 99.0
        assert w.dv[w.row_of[0], 0] == 0.0

    def test_extract_rows(self):
        _g, w = path4_worker()
        w.run_initial_approximation()
        rows = w.extract_rows([0, 1])
        assert set(rows) == {0, 1}

    def test_local_boundary_vertices(self):
        _g, w = path4_worker()
        assert w.local_boundary_vertices() == [1]

    def test_repr(self):
        _g, w = path4_worker()
        assert "rank=0" in repr(w)
