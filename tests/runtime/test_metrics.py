"""Load-imbalance metrics (§IV.C.1.a): snapshot_load and LoadSnapshot.

Covers the two situations the observability layer reports on: skewed
assignments (imbalance gauges) and a ``redistribute`` recovery retiring
a rank (``active_workers`` dropping below P mid-run).
"""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ResilienceConfig
from repro.graph import barabasi_albert
from repro.obs import registry as series
from repro.partition import RoundRobinPartitioner
from repro.runtime import Cluster, snapshot_load
from repro.runtime.chaos import FaultPlan

from ..conftest import star_graph


class TestLoadSnapshot:
    def test_all_workers_active_after_decompose(self):
        c = Cluster(barabasi_albert(40, 2, seed=0), 4)
        c.decompose(RoundRobinPartitioner())
        snap = snapshot_load(c)
        assert snap.active_workers == 4
        assert sum(snap.vertices) == 40

    def test_vertex_imbalance_on_uneven_roundrobin(self):
        # 10 vertices over 4 ranks -> blocks of 3,3,2,2: max/mean - 1 = 0.2
        c = Cluster(barabasi_albert(10, 2, seed=1), 4)
        c.decompose(RoundRobinPartitioner())
        snap = snapshot_load(c)
        assert snap.vertex_imbalance == pytest.approx(0.2)

    def test_cut_imbalance_on_skewed_star(self):
        # round-robin over a star: the hub's owner carries every cut
        # edge while leaf-only ranks carry one per leaf -> heavy skew
        c = Cluster(star_graph(12), 4)
        c.decompose(RoundRobinPartitioner())
        snap = snapshot_load(c)
        assert snap.cut_imbalance > 0.9
        assert snap.vertex_imbalance < snap.cut_imbalance

    def test_total_cut_edges_counts_each_edge_once(self):
        c = Cluster(star_graph(8), 4)
        c.decompose(RoundRobinPartitioner())
        snap = snapshot_load(c)
        assert snap.total_cut_edges == sum(snap.cut_edges) // 2


class TestRedistributeRetiresRank:
    def _run_with_crash(self, observers=()):
        g = barabasi_albert(60, 2, seed=5)
        config = AnytimeConfig(
            nprocs=4,
            seed=5,
            collect_snapshots=False,
            resilience=ResilienceConfig(recovery="redistribute"),
            observers=observers,
        )
        plan = FaultPlan(seed=1, crashes=((1, 2),))
        with AnytimeAnywhereCloseness(g, config) as engine:
            engine.setup()
            result = engine.run(
                resilience=ResilienceConfig(
                    recovery="redistribute", fault_plan=plan
                )
            )
        return result, engine

    def test_active_workers_drops_after_redistribute(self):
        result, engine = self._run_with_crash()
        assert result.recoveries == 1
        snap = snapshot_load(engine.cluster)
        assert snap.active_workers == 3
        assert snap.vertices[2] == 0
        assert sum(snap.vertices) == 60
        assert result.load.active_workers == 3
        # survivors absorb the dead block -> imbalance rises above the
        # near-even pre-crash assignment
        assert snap.vertex_imbalance > 0.0

    def test_active_workers_gauge_tracks_retirement(self):
        _, engine = self._run_with_crash(observers=("metrics",))
        reg = engine.obs.registry
        assert reg.value(series.ACTIVE_WORKERS) == 3.0
        assert reg.value(series.LOAD_VERTEX_IMBALANCE) > 0.0
        assert reg.value(series.FAULTS) >= 1.0
