"""Deterministic fault injection: plans, injectors, lossy exchange."""

import dataclasses
import struct

import pytest

from repro import (
    AnytimeAnywhereCloseness,
    AnytimeConfig,
    FaultPlan,
    ResilienceConfig,
)
from repro.centrality import exact_closeness
from repro.errors import ConfigurationError, WorkerError
from repro.graph import barabasi_albert
from repro.runtime.chaos import RECOVERY_POLICIES, FaultInjector


def fresh_engine(n=80, nprocs=4, seed=1, **cfg_kwargs):
    g = barabasi_albert(n, 2, seed=seed)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=nprocs, collect_snapshots=False, **cfg_kwargs)
    )
    engine.setup()
    return g, engine


LOSSY = dict(loss_prob=0.2, dup_prob=0.05, send_failure_prob=0.05)


class TestFaultPlan:
    def test_defaults_are_quiet(self):
        plan = FaultPlan()
        assert plan.crashes == ()
        assert not plan.has_message_faults
        assert plan.last_crash_step == -1

    def test_normalizes_dicts_to_sorted_tuples(self):
        plan = FaultPlan(crashes={5: 1, 2: 3}, stragglers={1: 2.0})
        assert plan.crashes == ((2, 3), (5, 1))
        assert plan.stragglers == ((1, 2.0),)

    def test_normalizes_lists(self):
        plan = FaultPlan(crashes=[(4, 0), (1, 2)], stragglers=[[0, 3.0]])
        assert plan.crashes == ((1, 2), (4, 0))
        assert plan.stragglers == ((0, 3.0),)

    def test_single_crash_helper(self):
        plan = FaultPlan.single_crash(3, 1, loss_prob=0.1)
        assert plan.crashes == ((3, 1),)
        assert plan.last_crash_step == 3
        assert plan.has_message_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(loss_prob=-0.1),
            dict(loss_prob=1.0),
            dict(dup_prob=2.0),
            dict(send_failure_prob=-1e-9),
            dict(crashes=((-1, 0),)),
            dict(crashes=((0, -2),)),
            dict(stragglers=((0, 0.5),)),
            dict(stragglers=((-1, 2.0),)),
            dict(max_retries=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)


class TestFaultInjector:
    def test_out_of_range_crash_rank(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(FaultPlan.single_crash(0, 7), nprocs=4)

    def test_out_of_range_straggler_rank(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(FaultPlan(stragglers=((9, 2.0),)), nprocs=4)

    def test_draws_are_deterministic(self):
        plan = FaultPlan(seed=42, **LOSSY)
        a = FaultInjector(plan, nprocs=4)
        b = FaultInjector(plan, nprocs=4)
        outcomes_a = [a.send_outcome(0, 1, s) for s in range(200)]
        outcomes_b = [b.send_outcome(0, 1, s) for s in range(200)]
        assert outcomes_a == outcomes_b
        assert a.trace_bytes() == b.trace_bytes()
        assert set(outcomes_a) > {"ok"}  # some faults actually fired

    def test_quiet_plan_consumes_no_randomness(self):
        inj = FaultInjector(FaultPlan(seed=0), nprocs=2)
        assert all(
            inj.send_outcome(0, 1, s) == "ok" for s in range(50)
        )
        assert not inj.ack_lost(0, 1, 0)
        assert inj.stats.faults_injected == 0
        assert inj.events == []

    def test_straggler_events_prerecorded(self):
        inj = FaultInjector(FaultPlan(stragglers=((2, 3.0),)), nprocs=4)
        assert any(e.kind == "straggler" and e.rank == 2 for e in inj.events)


class TestLossyExchange:
    def test_exact_under_heavy_loss(self):
        g, engine = fresh_engine()
        result = engine.run(resilience=ResilienceConfig(fault_plan=FaultPlan(seed=9, **LOSSY)))
        assert result.converged
        assert result.faults_injected > 0
        assert result.retries > 0
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_trace_byte_identical_across_runs(self):
        plan = FaultPlan(
            seed=5, crashes=((2, 1),), stragglers=((0, 2.0),), **LOSSY
        )
        traces = []
        for _ in range(2):
            _g, engine = fresh_engine()
            res = engine.run(resilience=ResilienceConfig(fault_plan=plan))
            traces.append("\n".join(res.fault_events).encode())
        assert traces[0] == traces[1]
        assert len(traces[0]) > 0

    def test_different_seeds_diverge(self):
        results = []
        for seed in (1, 2):
            _g, engine = fresh_engine()
            res = engine.run(resilience=ResilienceConfig(fault_plan=FaultPlan(seed=seed, **LOSSY)))
            results.append(res.fault_events)
        assert results[0] != results[1]

    def test_straggler_slows_run_and_speed_restored(self):
        _g, baseline = fresh_engine()
        t0 = baseline.cluster.tracer.modeled_seconds
        baseline.run()
        base_elapsed = baseline.cluster.tracer.modeled_seconds - t0

        _g, slowed = fresh_engine()
        t0 = slowed.cluster.tracer.modeled_seconds
        slowed.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan(stragglers=((1, 10.0),))
            )
        )
        slow_elapsed = slowed.cluster.tracer.modeled_seconds - t0
        assert slow_elapsed > base_elapsed
        assert all(w.speed == 1.0 for w in slowed.cluster.workers)

    def test_unacked_rows_block_convergence_vote(self):
        _g, engine = fresh_engine()
        engine.run()
        w = engine.cluster.workers[0]
        assert not w.has_pending()
        w._unacked[1][0] = [w.owned[0]]
        assert w.has_pending()
        w._unacked[1].clear()

    def test_duplicate_packets_are_deduplicated(self):
        _g, engine = fresh_engine()
        engine.run()
        src, dst = 0, 1
        w = engine.cluster.workers[dst]
        v = engine.cluster.workers[src].owned[0]
        rows = {v: engine.cluster.workers[src].dv_row(v)}
        assert w.receive_packet(src, 7, rows)
        assert not w.receive_packet(src, 7, rows)

    def test_retry_budget_exhaustion_raises(self):
        _g, engine = fresh_engine()
        engine.run()
        w = engine.cluster.workers[0]
        w._pending[1].add(w.owned[0])
        # drop the channel baseline: a converged, already-sent row would
        # otherwise delta-encode to nothing and never enter a packet
        w._sent_rows[1].clear()
        # never acked: each outbound_packets call is one more attempt
        w.outbound_packets(1, max_retries=2)
        w.outbound_packets(1, max_retries=2)
        w.outbound_packets(1, max_retries=2)
        with pytest.raises(WorkerError):
            w.outbound_packets(1, max_retries=2)

    def test_reset_channel_clears_both_direction_state(self):
        _g, engine = fresh_engine()
        engine.run()
        w = engine.cluster.workers[0]
        w._pending[1].add(w.owned[0])
        w._sent_rows[1].clear()  # force the forged row into a packet
        w.outbound_packets(1, max_retries=5)
        w._seen_seq[1].add(3)
        w.reset_channel(1)
        assert w._send_seq[1] == 0
        assert w._unacked[1] == {}
        assert w._seen_seq[1] == set()


class TestEngineIntegration:
    def test_recovery_without_plan_rejected(self):
        _g, engine = fresh_engine()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                engine.run(recovery="warm")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                engine.run(checkpoint_interval=4)

    def test_attach_requires_matching_nprocs(self):
        _g, engine = fresh_engine(nprocs=4)
        inj = FaultInjector(FaultPlan(), nprocs=3)
        with pytest.raises(ConfigurationError):
            engine.cluster.attach_chaos(inj)

    def test_fault_recovery_recorded_as_phase(self):
        _g, engine = fresh_engine()
        engine.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan.single_crash(1, 2)
            )
        )
        tracer = engine.cluster.tracer
        assert len(tracer.phases("fault_recovery")) == 1
        assert tracer.phases("fault_recovery")[0].modeled_total > 0

    def test_checkpoint_recorded_as_phase(self):
        _g, engine = fresh_engine()
        engine.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan.single_crash(1, 2),
                recovery="checkpoint",
                checkpoint_interval=1,
            )
        )
        assert len(engine.cluster.tracer.phases("checkpoint")) >= 1

    def test_config_defaults_flow_through(self):
        g, engine = fresh_engine(
            resilience=ResilienceConfig(
                recovery="checkpoint", checkpoint_interval=2
            )
        )
        # a run-level group derived from the config keeps its policy
        res = engine.run(
            resilience=dataclasses.replace(
                engine.config.resilience,
                fault_plan=FaultPlan.single_crash(2, 1),
            )
        )
        assert res.recoveries == 1
        assert any("detail=checkpoint" in e for e in res.fault_events)

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(recovery="nope")
        with pytest.raises(ConfigurationError):
            ResilienceConfig(checkpoint_interval=0)

    @pytest.mark.parametrize("policy", RECOVERY_POLICIES)
    def test_all_policies_under_full_fault_mix(self, policy):
        g, engine = fresh_engine()
        plan = FaultPlan(
            seed=13,
            crashes=((1, 2), (4, 0)),
            stragglers=((3, 2.5),),
            **LOSSY,
        )
        result = engine.run(
            resilience=ResilienceConfig(fault_plan=plan, recovery=policy)
        )
        assert result.converged
        assert result.recoveries == 2
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)


class TestDeltaUnderFaults:
    """Delta packets through loss/duplication/crash must stay exact.

    A lost delta is retransmitted dense from the current DV; a duplicated
    delta is deduplicated by sequence number; a crash resets the channel
    and the recovery rewire forces dense resends.  In every case the run
    must reconverge to closeness bitwise-identical to a dense run on a
    reliable network (the oracle).
    """

    def _bits(self, closeness):
        return [
            (v, struct.pack("<d", closeness[v])) for v in sorted(closeness)
        ]

    def test_lossy_delta_matches_reliable_dense(self):
        _g, oracle = fresh_engine(wire_format="dense")
        expected = self._bits(oracle.run().closeness)

        _g, engine = fresh_engine(wire_format="delta")
        res = engine.run(
            resilience=ResilienceConfig(fault_plan=FaultPlan(seed=3, **LOSSY))
        )
        assert res.converged
        assert res.retries > 0  # losses actually forced retransmissions
        assert res.boundary_rows_sparse > 0  # deltas actually on the wire
        assert self._bits(res.closeness) == expected

    def test_crash_plus_loss_delta_matches_reliable_dense(self):
        _g, oracle = fresh_engine(wire_format="dense")
        expected = self._bits(oracle.run().closeness)

        _g, engine = fresh_engine(wire_format="delta")
        plan = FaultPlan(seed=21, crashes=((2, 1),), **LOSSY)
        res = engine.run(resilience=ResilienceConfig(fault_plan=plan))
        assert res.converged
        assert res.recoveries == 1
        assert self._bits(res.closeness) == expected

    def test_lossy_delta_trace_repeatable(self):
        runs = []
        for _ in range(2):
            _g, engine = fresh_engine(wire_format="delta")
            res = engine.run(
                resilience=ResilienceConfig(
                    fault_plan=FaultPlan(seed=8, **LOSSY)
                )
            )
            runs.append(
                (
                    self._bits(res.closeness),
                    tuple(res.fault_events),
                    res.boundary_words,
                    res.modeled_seconds,
                )
            )
        assert runs[0] == runs[1]
