"""Unit tests for the delta wire format: encoding, fallback, baselines."""

import numpy as np
import pytest

from repro.errors import WorkerError
from repro.graph.views import extract_local_subgraph
from repro.model.cost import DEFAULT_COST
from repro.runtime.index import GlobalIndex
from repro.runtime.message import (
    DeltaRows,
    delta_row_words,
    dense_row_words,
)
from repro.runtime.worker import Worker

from ..conftest import path_graph


def delta_worker(n_cols=12, wire_format="delta"):
    """A 2-rank worker owning half of a path graph with many columns."""
    g = path_graph(n_cols)
    half = n_cols // 2
    owner = {v: (0 if v < half else 1) for v in range(n_cols)}
    idx = GlobalIndex(g.vertex_list())
    w = Worker(0, 2, idx, DEFAULT_COST, wire_format=wire_format)
    w.load_subgraph(extract_local_subgraph(g, list(range(half)), owner, 0))
    return g, w


class TestDeltaRows:
    def test_len_bool_iter_contains(self):
        rows = DeltaRows()
        assert not rows and len(rows) == 0
        rows.dense[3] = np.zeros(4)
        rows.sparse[1] = (np.array([0], dtype=np.int64), np.array([1.0]))
        assert rows and len(rows) == 2
        assert list(rows) == [1, 3]
        assert 1 in rows and 3 in rows and 2 not in rows

    def test_getitem_dense_only(self):
        rows = DeltaRows()
        rows.dense[3] = np.zeros(4)
        rows.sparse[1] = (np.array([0], dtype=np.int64), np.array([1.0]))
        np.testing.assert_array_equal(rows[3], np.zeros(4))
        with pytest.raises(KeyError):
            rows[1]

    def test_words_pricing(self):
        rows = DeltaRows()
        rows.dense[3] = np.zeros(10)
        rows.sparse[1] = (
            np.array([0, 4], dtype=np.int64),
            np.array([1.0, 2.0]),
        )
        assert rows.words() == dense_row_words(10) + delta_row_words(2)
        assert dense_row_words(10) == 11  # row + id header
        assert delta_row_words(2) == 6  # (col, val) pairs + id + count


class TestEncodeRow:
    def test_first_publication_is_dense(self):
        _g, w = delta_worker()
        w.run_initial_approximation()
        w.subscribe(0, 1)
        payload = w.build_payload(1)
        assert 0 in payload.dense
        assert not payload.sparse

    def test_small_improvement_goes_sparse(self):
        _g, w = delta_worker()
        w.run_initial_approximation()
        w.subscribe(0, 1)
        w.build_payload(1)  # establishes the baseline
        w.dv[w.row_of[0], 9] = 1.5  # one column improves
        w._pending[1].add(0)
        payload = w.build_payload(1)
        cols, vals = payload.sparse[0]
        assert cols.tolist() == [9]
        assert vals.tolist() == [1.5]

    def test_unchanged_row_is_skipped(self):
        _g, w = delta_worker()
        w.run_initial_approximation()
        w.subscribe(0, 1)
        w.build_payload(1)
        w._pending[1].add(0)  # queued, but nothing improved
        assert not w.build_payload(1)

    def test_large_delta_falls_back_to_dense(self):
        _g, w = delta_worker()
        w.run_initial_approximation()
        w.subscribe(0, 1)
        w.build_payload(1)
        # improve enough columns that 2k+2 >= n+1
        row = w.dv[w.row_of[0]]
        row[6:] = np.arange(6, dtype=np.float64) * 0.25
        w._pending[1].add(0)
        payload = w.build_payload(1)
        assert 0 in payload.dense
        assert not payload.sparse

    def test_dense_mode_never_emits_sparse(self):
        _g, w = delta_worker(wire_format="dense")
        w.run_initial_approximation()
        w.subscribe(0, 1)
        w.build_payload(1)
        w.dv[w.row_of[0], 9] = 1.5
        w._pending[1].add(0)
        payload = w.build_payload(1)
        assert 0 in payload.dense
        assert not payload.sparse

    def test_baselines_are_per_destination(self):
        g = path_graph(12)
        owner = {v: (0 if v < 6 else 1) for v in range(12)}
        idx = GlobalIndex(g.vertex_list())
        w = Worker(0, 3, idx, DEFAULT_COST)  # ranks 1 and 2 both subscribe
        w.load_subgraph(extract_local_subgraph(g, list(range(6)), owner, 0))
        w.run_initial_approximation()
        w.subscribe(0, 1)
        w.build_payload(1)  # only rank 1 has a baseline
        w.dv[w.row_of[0], 9] = 1.5
        w._pending[1].add(0)
        assert w.build_payload(1).sparse  # rank 1: delta
        w.subscribe(0, 2)
        payload = w.build_payload(2)  # rank 2: first publication
        assert 0 in payload.dense and not payload.sparse

    def test_invalid_wire_format_rejected(self):
        idx = GlobalIndex([0])
        with pytest.raises(WorkerError):
            Worker(0, 2, idx, DEFAULT_COST, wire_format="zip")


class TestReceiveDelta:
    def test_sparse_min_merges_into_stored_row(self):
        _g, w = delta_worker()
        stored = np.full(12, np.inf)
        stored[0] = 3.0
        w.receive_rows({100: stored.copy()})
        rows = DeltaRows(
            sparse={
                100: (
                    np.array([0, 5], dtype=np.int64),
                    np.array([5.0, 2.0]),
                )
            }
        )
        w.receive_rows(rows)
        got = w.ext_dvs[100]
        assert got[0] == 3.0  # min(3, 5): stale delta value loses
        assert got[5] == 2.0
        assert 100 in w._fresh_ext

    def test_sparse_for_unknown_vertex_dropped(self):
        _g, w = delta_worker()
        rows = DeltaRows(
            sparse={77: (np.array([0], dtype=np.int64), np.array([1.0]))}
        )
        w.receive_rows(rows)
        assert 77 not in w.ext_dvs

    def test_sparse_out_of_range_column_rejected(self):
        _g, w = delta_worker()
        w.receive_rows({100: np.full(12, np.inf)})
        rows = DeltaRows(
            sparse={100: (np.array([99], dtype=np.int64), np.array([1.0]))}
        )
        with pytest.raises(WorkerError):
            w.receive_rows(rows)


class TestBaselineInvalidation:
    def _primed(self):
        _g, w = delta_worker()
        w.run_initial_approximation()
        w.subscribe(0, 1)
        w.build_payload(1)
        assert w._sent_rows[1]
        return w

    def test_full_repropagate_resets_baselines(self):
        w = self._primed()
        w.request_full_repropagate()
        assert not w._sent_rows[1]

    def test_queue_all_boundary_rows_resets_baselines(self):
        w = self._primed()
        w.queue_all_boundary_rows()
        assert not w._sent_rows[1]

    def test_reset_channel_resets_baselines(self):
        w = self._primed()
        w.reset_channel(1)
        assert not w._sent_rows[1]

    def test_resubscribe_forces_dense(self):
        w = self._primed()
        w.subscribe(0, 1)  # receiver may have dropped its copy
        assert 0 not in w._sent_rows[1]
        payload = w.build_payload(1)
        assert 0 in payload.dense

    def test_grow_columns_pads_baselines(self):
        w = self._primed()
        w.index.add(500)
        w.grow_columns(13)
        base = w._sent_rows[1][0]
        assert base.size == 13
        assert base[12] == np.inf

    def test_flush_unacked_drops_baselines(self):
        w = self._primed()
        w.dv[w.row_of[0], 9] = 0.25
        w._pending[1].add(0)
        packets = w.outbound_packets(1, max_retries=3)
        assert packets and packets[0][1].sparse  # delta went in flight
        w.flush_unacked()  # delivery never confirmed
        assert 0 not in w._sent_rows[1]
        assert 0 in w._pending[1]

    def test_retries_are_dense_and_leave_baselines_alone(self):
        w = self._primed()
        w.dv[w.row_of[0], 9] = 0.25
        w._pending[1].add(0)
        first = w.outbound_packets(1, max_retries=3)
        assert first[0][1].sparse
        base_before = w._sent_rows[1][0].copy()
        retry = w.outbound_packets(1, max_retries=3)
        assert retry[0][2] is True  # marked as a retry
        assert not retry[0][1].sparse  # rebuilt dense from the current DV
        np.testing.assert_array_equal(w._sent_rows[1][0], base_before)
