"""Supervised recovery policies: warm, checkpoint, redistribute."""

import pytest

from repro import (
    AnytimeAnywhereCloseness,
    AnytimeConfig,
    ChangeBatch,
    ChangeStream,
    FaultPlan,
    ResilienceConfig,
)
from repro.centrality import exact_closeness
from repro.errors import ConfigurationError
from repro.graph import barabasi_albert
from repro.graph.changes import EdgeDeletion, VertexAddition
from repro.model.cost import DEFAULT_COST
from repro.runtime import check_cluster_invariants, snapshot_load
from repro.runtime.chaos import FaultInjector
from repro.runtime.supervisor import Supervisor


def fresh_engine(n=80, nprocs=4, seed=1, **cfg_kwargs):
    g = barabasi_albert(n, 2, seed=seed)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=nprocs, collect_snapshots=False, **cfg_kwargs)
    )
    engine.setup()
    return g, engine


def assert_exact(result, graph):
    assert result.converged
    exact = exact_closeness(graph)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


class TestValidation:
    def test_unknown_policy_rejected(self):
        _g, engine = fresh_engine()
        inj = FaultInjector(FaultPlan(), nprocs=4)
        with pytest.raises(ConfigurationError):
            Supervisor(engine.cluster, inj, recovery="cold")

    def test_bad_interval_rejected(self):
        _g, engine = fresh_engine()
        inj = FaultInjector(FaultPlan(), nprocs=4)
        with pytest.raises(ConfigurationError):
            Supervisor(engine.cluster, inj, checkpoint_interval=0)


class TestCheckpointPolicy:
    def test_checkpoint_restore_used_when_fresh(self):
        g, engine = fresh_engine()
        res = engine.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan.single_crash(2, 1),
                recovery="checkpoint",
                checkpoint_interval=1,
            )
        )
        assert any(
            "kind=recovery" in e and "detail=checkpoint" in e
            for e in res.fault_events
        )
        assert_exact(res, g)

    def test_checkpoint_cheaper_than_warm_recompute(self):
        # Single-threaded IA is the regime the checkpoint targets: restoring
        # shipped DV/APSP state beats re-running the local Dijkstra sweep.
        cost = DEFAULT_COST.with_threads(1)
        results = {}
        for policy in ("warm", "checkpoint"):
            g, engine = fresh_engine(n=300, seed=5, cost=cost)
            res = engine.run(
                resilience=ResilienceConfig(
                    fault_plan=FaultPlan.single_crash(1, 2),
                    recovery=policy,
                    checkpoint_interval=1,
                )
            )
            assert_exact(res, g)
            results[policy] = res.recovery_modeled_seconds
        assert results["checkpoint"] < results["warm"]

    def test_falls_back_to_warm_after_deletion_batch(self):
        g, engine = fresh_engine()
        u, v, _w = g.edge_list()[0]
        final = g.copy()
        final.remove_edge(u, v)
        stream = ChangeStream(
            {1: ChangeBatch(edge_deletions=[EdgeDeletion(u, v)])}
        )
        res = engine.run(
            changes=stream,
            resilience=ResilienceConfig(
                fault_plan=FaultPlan.single_crash(3, 1),
                recovery="checkpoint",
                # only the step-0 checkpoint exists
                checkpoint_interval=1000,
            ),
        )
        assert any("detail=warm-fallback" in e for e in res.fault_events)
        assert_exact(res, final)

    def test_checkpoint_cost_is_charged(self):
        _g, engine = fresh_engine()
        engine.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan.single_crash(2, 1),
                recovery="checkpoint",
                checkpoint_interval=1,
            )
        )
        phases = engine.cluster.tracer.phases("checkpoint")
        assert phases and all(p.modeled_comm > 0 for p in phases)


class TestRedistributePolicy:
    def test_survivors_absorb_dead_rank(self):
        g, engine = fresh_engine()
        res = engine.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan.single_crash(1, 2),
                recovery="redistribute",
            )
        )
        cluster = engine.cluster
        assert cluster.workers[2].n_local == 0
        load = snapshot_load(cluster)
        assert load.active_workers == cluster.nprocs - 1
        check_cluster_invariants(cluster)
        assert_exact(res, g)

    def test_two_crashes_leave_p_minus_two(self):
        g, engine = fresh_engine()
        res = engine.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan(crashes=((1, 2), (3, 0))),
                recovery="redistribute",
            )
        )
        cluster = engine.cluster
        assert snapshot_load(cluster).active_workers == cluster.nprocs - 2
        assert cluster.workers[0].n_local == 0
        assert cluster.workers[2].n_local == 0
        check_cluster_invariants(cluster)
        assert_exact(res, g)

    def test_redistribute_with_vertex_additions(self):
        g, engine = fresh_engine()
        new_v = max(g.vertex_list()) + 1
        anchor = g.vertex_list()[0]
        final = g.copy()
        final.add_vertex(new_v)
        final.add_edge(new_v, anchor, 1.0)
        stream = ChangeStream(
            {
                2: ChangeBatch(
                    vertex_additions=[
                        VertexAddition(new_v, ((anchor, 1.0),))
                    ]
                )
            }
        )
        res = engine.run(
            changes=stream,
            resilience=ResilienceConfig(
                fault_plan=FaultPlan.single_crash(4, 1),
                recovery="redistribute",
            ),
        )
        check_cluster_invariants(engine.cluster)
        assert engine.cluster.workers[1].n_local == 0
        assert_exact(res, final)


class TestAccounting:
    def test_recovery_seconds_accumulate(self):
        _g, engine = fresh_engine()
        res = engine.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan(crashes=((1, 0), (3, 2)))
            )
        )
        assert res.recoveries == 2
        assert res.recovery_modeled_seconds > 0
        events = [e for e in res.fault_events if "kind=recovery" in e]
        assert len(events) == 2
        assert all("detail=warm" in e for e in events)

    def test_crash_at_step_zero(self):
        g, engine = fresh_engine()
        res = engine.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan.single_crash(0, 3)
            )
        )
        assert res.recoveries == 1
        assert_exact(res, g)

    def test_crash_after_natural_convergence_step(self):
        # A crash scheduled far past normal convergence still fires: the RC
        # loop stays alive until the plan's last crash step has passed.
        g, engine = fresh_engine(n=40)
        res = engine.run(
            resilience=ResilienceConfig(
                fault_plan=FaultPlan.single_crash(25, 1)
            )
        )
        assert res.recoveries == 1
        assert_exact(res, g)
