"""Tests for the simulated cluster's primitives."""

import numpy as np
import pytest

from repro.errors import CommunicationError, ConfigurationError
from repro.graph import barabasi_albert
from repro.partition import MultilevelPartitioner, RoundRobinPartitioner
from repro.runtime import Cluster, snapshot_load

from ..conftest import path_graph


def make_cluster(n=40, nprocs=4, seed=0):
    g = barabasi_albert(n, 2, seed=seed)
    c = Cluster(g, nprocs)
    c.decompose(MultilevelPartitioner(seed=seed))
    return c


class TestDecompose:
    def test_owner_map_complete(self):
        c = make_cluster()
        for v in c.graph.vertices():
            assert 0 <= c.owner_of(v) < 4
            assert v in c.workers[c.owner_of(v)].row_of

    def test_owner_before_decompose_raises(self):
        c = Cluster(path_graph(3), 2)
        with pytest.raises(CommunicationError):
            c.owner_of(0)

    def test_unknown_vertex(self):
        c = make_cluster()
        with pytest.raises(CommunicationError):
            c.owner_of(9999)

    def test_invalid_nprocs(self):
        with pytest.raises(ConfigurationError):
            Cluster(path_graph(3), 0)

    def test_subscriptions_wired(self):
        c = make_cluster()
        for w in c.workers:
            for x in w.cut_by_ext:
                owner = c.workers[c.owner_of(x)]
                assert w.rank in owner.subscribers[x]

    def test_decompose_records_phase(self):
        c = make_cluster()
        names = [r.name for r in c.tracer.records]
        assert "domain_decomposition" in names
        assert c.tracer.modeled_seconds > 0.0


class TestExchange:
    def test_exchange_delivers_boundary_rows(self):
        c = make_cluster()
        c.run_initial_approximation()
        delivered = c.exchange_boundary()
        assert delivered > 0
        got = sum(len(w.ext_dvs) for w in c.workers)
        assert got > 0

    def test_exchange_charges_comm(self):
        c = make_cluster()
        c.run_initial_approximation()
        c.tracer.begin("rc_step", 0)
        c.exchange_boundary()
        rec = c.tracer.end()
        assert rec.modeled_comm > 0.0
        assert rec.messages > 0

    def test_second_exchange_empty_when_idle(self):
        c = make_cluster()
        c.run_initial_approximation()
        c.exchange_boundary()
        c.relax_and_propagate()
        c.exchange_boundary()
        c.relax_and_propagate()
        # after convergence no rows remain queued
        while c.exchange_boundary():
            c.relax_and_propagate()
        assert c.exchange_boundary() == 0


class TestBroadcastAndColumns:
    def test_broadcast_row_matches_owner(self):
        c = make_cluster()
        c.run_initial_approximation()
        row = c.broadcast_row(0)
        w = c.worker_owning(0)
        np.testing.assert_array_equal(row, w.dv[w.row_of[0]])

    def test_add_vertex_columns_grows_everyone(self):
        c = make_cluster()
        n0 = c.n_columns
        c.add_vertex_columns([1000, 1001])
        assert c.n_columns == n0 + 2
        for w in c.workers:
            assert w.dv.shape[1] == n0 + 2


class TestGather:
    def test_gather_distance_matrix_diagonal(self):
        c = make_cluster()
        c.run_initial_approximation()
        dist, ids = c.gather_distance_matrix()
        assert dist.shape == (len(ids), len(ids))
        assert np.all(np.diag(dist) == 0.0)

    def test_distance_rows_cover_all(self):
        c = make_cluster()
        rows = c.distance_rows()
        assert set(rows) == set(c.graph.vertices())


class TestLoad:
    def test_snapshot_load(self):
        c = make_cluster()
        snap = snapshot_load(c)
        assert sum(snap.vertices) == c.graph.num_vertices
        assert snap.vertex_imbalance >= 0.0
        assert snap.total_cut_edges > 0

    def test_roundrobin_vertex_balance(self):
        g = barabasi_albert(40, 2, seed=1)
        c = Cluster(g, 4)
        c.decompose(RoundRobinPartitioner())
        snap = snapshot_load(c)
        assert max(snap.vertices) - min(snap.vertices) <= 1


class TestSyncCompute:
    def test_sync_takes_max(self):
        c = make_cluster()
        c.workers[0]._charge(1.0)
        c.workers[1]._charge(3.0)
        c.tracer.begin("x")
        t = c.sync_compute()
        c.tracer.end()
        assert t == 3.0
        # drained
        assert all(w.take_compute_seconds() == 0.0 for w in c.workers)
