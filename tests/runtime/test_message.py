"""Tests for message types and payload accounting."""

import numpy as np

from repro.runtime import Message, MessageKind, dv_payload_words


def test_payload_words_formula():
    assert dv_payload_words(3, 100) == 3 * 101
    assert dv_payload_words(0, 100) == 0


def test_message_payload_counts_rows_and_headers():
    msg = Message(
        kind=MessageKind.BOUNDARY_DV,
        src=0,
        dst=1,
        rows={5: np.zeros(10), 7: np.zeros(10)},
    )
    assert msg.payload_words() == 2 * 11


def test_message_extra_words():
    msg = Message(kind=MessageKind.CONTROL, src=0, dst=1, extra_words=4)
    assert msg.payload_words() == 4


def test_kinds_enumerated():
    assert {k.value for k in MessageKind} == {
        "boundary_dv",
        "row_broadcast",
        "migration",
        "control",
        "gather",
    }
