"""Tests for the tracer's time accounting."""

import pytest

from repro.runtime import Tracer


def test_phase_lifecycle():
    t = Tracer()
    t.begin("ia")
    t.add_compute(1.0)
    t.add_comm(0.5, messages=3, words=100)
    rec = t.end()
    assert rec.modeled_total == pytest.approx(1.5)
    assert rec.messages == 3
    assert t.modeled_seconds == pytest.approx(1.5)
    assert t.total_words == 100
    assert rec.wall_seconds >= 0.0


def test_nested_phase_rejected():
    t = Tracer()
    t.begin("a")
    with pytest.raises(RuntimeError):
        t.begin("b")


def test_end_without_begin():
    with pytest.raises(RuntimeError):
        Tracer().end()


def test_ambient_charges_land_on_totals():
    t = Tracer()
    t.add_compute(2.0)
    t.add_comm(1.0, messages=1, words=5)
    assert t.modeled_seconds == pytest.approx(3.0)
    assert t.total_messages == 1
    assert t.records == []


def test_note_inside_phase():
    t = Tracer()
    t.begin("x")
    t.note("k", 7.0)
    rec = t.end()
    assert rec.info == {"k": 7.0}


def test_note_outside_phase_is_noop():
    Tracer().note("k", 1.0)  # must not raise


def test_by_phase_aggregation():
    t = Tracer()
    for name, secs in (("rc_step", 1.0), ("rc_step", 2.0), ("ia", 4.0)):
        t.begin(name)
        t.add_compute(secs)
        t.end()
    agg = t.by_phase()
    assert agg["rc_step"] == pytest.approx(3.0)
    assert agg["ia"] == pytest.approx(4.0)


def test_nested_phase_error_names_the_open_phase():
    # regression pin: the tracer must keep *raising* on nested begins
    # (never auto-close — that would misattribute the open record's
    # wall time); the message names the offender for debuggability
    t = Tracer()
    t.begin("domain_decomposition")
    with pytest.raises(RuntimeError, match="domain_decomposition"):
        t.begin("rc_step")
    # the original phase is still open and can be ended normally
    rec = t.end()
    assert rec.name == "domain_decomposition"


def test_reopen_after_end_is_fine():
    t = Tracer()
    t.begin("rc_step", step=0)
    t.end()
    rec = t.begin("rc_step", step=1)
    assert rec.step == 1
    t.end()
    assert len(t.records) == 2


def test_abort_closes_open_phase_with_marker():
    t = Tracer()
    t.begin("rc_step", step=3)
    t.add_compute(2.0)
    rec = t.abort()
    assert rec is not None
    assert rec.info["aborted"] == 1.0
    # the partial charge is kept: the modeled work did happen
    assert t.modeled_seconds == pytest.approx(2.0)
    assert t._open is None
    t.begin("rc_step", step=4)  # tracer is reusable afterwards
    t.end()


def test_abort_without_open_phase_is_noop():
    t = Tracer()
    assert t.abort() is None
    assert t.records == []


def test_now_includes_open_phase_charge():
    t = Tracer()
    t.add_compute(1.0)
    assert t.now() == pytest.approx(1.0)
    t.begin("rc_step")
    t.add_compute(0.25)
    t.add_comm(0.5)
    assert t.now() == pytest.approx(1.75)
    assert t.modeled_seconds == pytest.approx(1.0)  # not folded in yet
    t.end()
    assert t.now() == pytest.approx(1.75)


def test_span_events_emitted_to_hub():
    from repro.obs import ObserverHub
    from repro.obs.observer import Observer

    class Collector(Observer):
        def __init__(self):
            self.events = []

        def on_event(self, event):
            self.events.append(event)

    col = Collector()
    t = Tracer(hub=ObserverHub([col]))
    t.begin("domain_decomposition")
    t.add_compute(1.0)
    t.end()
    t.begin("rc_step", step=0)
    t.add_comm(0.5, messages=2, words=10)
    t.end()
    kinds = [(e.kind, e.level, e.name) for e in col.events]
    assert kinds == [
        ("begin", "phase", "domain_decomposition"),
        ("end", "phase", "domain_decomposition"),
        ("begin", "superstep", "rc_step"),
        ("end", "superstep", "rc_step"),
    ]
    end = col.events[-1]
    assert end.step == 0
    assert end.t == pytest.approx(1.5)
    assert end.attrs["words"] == 10
    assert end.wall is not None


def test_summary_keys():
    t = Tracer()
    t.begin("p")
    t.end()
    s = t.summary()
    assert set(s) == {
        "modeled_seconds",
        "wall_seconds",
        "messages",
        "words",
        "phases",
    }
    assert s["phases"] == 1.0
