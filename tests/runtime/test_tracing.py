"""Tests for the tracer's time accounting."""

import pytest

from repro.runtime import Tracer


def test_phase_lifecycle():
    t = Tracer()
    t.begin("ia")
    t.add_compute(1.0)
    t.add_comm(0.5, messages=3, words=100)
    rec = t.end()
    assert rec.modeled_total == pytest.approx(1.5)
    assert rec.messages == 3
    assert t.modeled_seconds == pytest.approx(1.5)
    assert t.total_words == 100
    assert rec.wall_seconds >= 0.0


def test_nested_phase_rejected():
    t = Tracer()
    t.begin("a")
    with pytest.raises(RuntimeError):
        t.begin("b")


def test_end_without_begin():
    with pytest.raises(RuntimeError):
        Tracer().end()


def test_ambient_charges_land_on_totals():
    t = Tracer()
    t.add_compute(2.0)
    t.add_comm(1.0, messages=1, words=5)
    assert t.modeled_seconds == pytest.approx(3.0)
    assert t.total_messages == 1
    assert t.records == []


def test_note_inside_phase():
    t = Tracer()
    t.begin("x")
    t.note("k", 7.0)
    rec = t.end()
    assert rec.info == {"k": 7.0}


def test_note_outside_phase_is_noop():
    Tracer().note("k", 1.0)  # must not raise


def test_by_phase_aggregation():
    t = Tracer()
    for name, secs in (("rc_step", 1.0), ("rc_step", 2.0), ("ia", 4.0)):
        t.begin(name)
        t.add_compute(secs)
        t.end()
    agg = t.by_phase()
    assert agg["rc_step"] == pytest.approx(3.0)
    assert agg["ia"] == pytest.approx(4.0)


def test_summary_keys():
    t = Tracer()
    t.begin("p")
    t.end()
    s = t.summary()
    assert set(s) == {
        "modeled_seconds",
        "wall_seconds",
        "messages",
        "words",
        "phases",
    }
    assert s["phases"] == 1.0
