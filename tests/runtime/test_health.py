"""Self-healing runtime: health model, straggler mitigation, escalating
recovery, graceful degradation."""

import dataclasses

import pytest

import repro
from repro import (
    AnytimeAnywhereCloseness,
    AnytimeConfig,
    HealthPolicy,
    ResilienceConfig,
)
from repro.errors import ConfigurationError
from repro.graph import barabasi_albert
from repro.runtime import HealthMonitor, HealthState
from repro.runtime.chaos import FaultPlan


# ----------------------------------------------------------------------
# policy validation
# ----------------------------------------------------------------------
class TestHealthPolicy:
    def test_defaults_valid(self):
        p = HealthPolicy()
        assert p.deadline_factor > 1.0
        assert p.speculate

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_factor": 1.0},
            {"suspect_after": 0},
            {"degraded_after": 1, "suspect_after": 2},
            {"backoff_base": -1e-3},
            {"backoff_factor": 0.5},
            {"backoff_max": 0.0, "backoff_base": 1.0},
            {"backoff_jitter": 1.5},
            {"speculation_overhead": -0.1},
            {"crash_budget": 0},
            {"max_dead_fraction": 0.0},
            {"max_dead_fraction": 1.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HealthPolicy(**kwargs)

    def test_config_rejects_non_policy(self):
        with pytest.raises(ConfigurationError, match="HealthPolicy"):
            AnytimeConfig(nprocs=2, health="aggressive")

    def test_config_accepts_escalate_recovery(self):
        cfg = AnytimeConfig(
            nprocs=2, resilience=ResilienceConfig(recovery="escalate")
        )
        assert cfg.recovery == "escalate"


# ----------------------------------------------------------------------
# the state machine
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def make(self, **kw):
        return HealthMonitor(HealthPolicy(**kw), 4, seed=7)

    def test_starts_healthy(self):
        m = self.make()
        assert all(s is HealthState.HEALTHY for s in m.states)
        assert m.alive_fraction() == 1.0

    def test_deadline_is_median_scaled(self):
        m = self.make(deadline_factor=2.0)
        assert m.deadline([1.0, 1.0, 1.0, 9.0]) == pytest.approx(2.0)
        assert m.deadline([]) == 0.0

    def test_consecutive_misses_escalate_state(self):
        m = self.make(suspect_after=2, degraded_after=4)
        slow = [1.0, 1.0, 1.0, 9.0]
        m.observe_superstep(slow, [0, 0, 0, 0])
        assert m.states[3] is HealthState.HEALTHY  # one miss: not yet
        flagged = m.observe_superstep(slow, [0, 0, 0, 0])
        assert m.states[3] is HealthState.SUSPECT
        assert flagged == [3]
        m.observe_superstep(slow, [0, 0, 0, 0])
        m.observe_superstep(slow, [0, 0, 0, 0])
        assert m.states[3] is HealthState.DEGRADED
        assert m.missed_deadlines == 4

    def test_recovery_to_healthy_on_met_deadline(self):
        m = self.make(suspect_after=1)
        m.observe_superstep([1.0, 1.0, 1.0, 9.0], [0, 0, 0, 0])
        assert m.states[3] is HealthState.SUSPECT
        m.observe_superstep([1.0, 1.0, 1.0, 1.0], [0, 0, 0, 0])
        assert m.states[3] is HealthState.HEALTHY

    def test_unacked_rows_make_suspect(self):
        m = self.make()
        m.observe_superstep([1.0, 1.0, 1.0, 1.0], [0, 5, 0, 0])
        assert m.states[1] is HealthState.SUSPECT

    def test_dead_rank_stays_dead(self):
        m = self.make()
        m.mark_dead(2)
        m.observe_superstep([1.0, 1.0, 0.0, 1.0], [0, 0, 0, 0])
        assert m.states[2] is HealthState.DEAD
        assert m.alive_fraction() == 0.75
        assert m.state_value(2) == 3

    def test_backoff_grows_and_caps(self):
        m = self.make(
            backoff_base=1e-3, backoff_factor=2.0, backoff_max=4e-3,
            backoff_jitter=0.0,
        )
        assert m.backoff_delay(2) == pytest.approx(1e-3)
        assert m.backoff_delay(3) == pytest.approx(2e-3)
        assert m.backoff_delay(5) == pytest.approx(4e-3)  # capped
        assert m.backoffs == 3
        assert m.backoff_seconds == pytest.approx(7e-3)

    def test_backoff_jitter_is_seeded(self):
        a = HealthMonitor(HealthPolicy(), 2, seed=9)
        b = HealthMonitor(HealthPolicy(), 2, seed=9)
        assert [a.backoff_delay(i) for i in range(2, 8)] == [
            b.backoff_delay(i) for i in range(2, 8)
        ]

    def test_note_crash_counts_per_rank(self):
        m = self.make()
        assert m.note_crash(1) == 1
        assert m.note_crash(1) == 2
        assert m.note_crash(2) == 1


# ----------------------------------------------------------------------
# straggler mitigation end to end
# ----------------------------------------------------------------------
class TestStragglerMitigation:
    def run_all(self, nprocs=4, factor=8.0):
        g = barabasi_albert(150, 3, seed=2)
        plan = FaultPlan(stragglers=((1, factor),))
        free = repro.closeness(g, nprocs=nprocs)
        unmit = repro.closeness(
            g, nprocs=nprocs, resilience=ResilienceConfig(fault_plan=plan)
        )
        cfg = AnytimeConfig(nprocs=nprocs, health=HealthPolicy())
        mit = repro.closeness(
            g, config=cfg, resilience=ResilienceConfig(fault_plan=plan)
        )
        return free, unmit, mit

    def test_bitwise_identical_closeness(self):
        free, unmit, mit = self.run_all()
        assert mit.closeness == free.closeness
        assert unmit.closeness == free.closeness

    def test_mitigation_reduces_modeled_time(self):
        free, unmit, mit = self.run_all()
        assert mit.speculations > 0
        assert mit.missed_deadlines > 0
        assert free.modeled_seconds < mit.modeled_seconds
        assert mit.modeled_seconds < unmit.modeled_seconds

    def test_mitigated_run_repeats_byte_identically(self):
        g = barabasi_albert(120, 3, seed=3)
        plan = FaultPlan(stragglers=((0, 10.0),), loss_prob=0.1, seed=4)
        cfg = AnytimeConfig(nprocs=4, health=HealthPolicy())
        res = ResilienceConfig(fault_plan=plan)
        a = repro.closeness(g, config=cfg, resilience=res)
        b = repro.closeness(g, config=cfg, resilience=res)
        assert a.closeness == b.closeness
        assert a.fault_events == b.fault_events
        assert a.modeled_seconds == b.modeled_seconds

    def test_health_off_traces_unchanged(self):
        """Attaching the monitor must not consume the injector's RNG:
        the fault trace with health on equals the trace with health off
        (modulo the extra backoff events)."""
        g = barabasi_albert(100, 3, seed=5)
        plan = FaultPlan(loss_prob=0.2, seed=6)
        off = repro.closeness(
            g, nprocs=4, resilience=ResilienceConfig(fault_plan=plan)
        )
        cfg = AnytimeConfig(nprocs=4, health=HealthPolicy())
        on = repro.closeness(
            g, config=cfg, resilience=ResilienceConfig(fault_plan=plan)
        )
        strip = [e for e in on.fault_events if "kind=backoff" not in e]
        assert strip == off.fault_events
        assert on.closeness == off.closeness

    def test_speculation_disabled_still_tracks_health(self):
        g = barabasi_albert(100, 3, seed=7)
        plan = FaultPlan(stragglers=((2, 8.0),))
        cfg = AnytimeConfig(
            nprocs=4, health=HealthPolicy(speculate=False)
        )
        r = repro.closeness(
            g, config=cfg, resilience=ResilienceConfig(fault_plan=plan)
        )
        assert r.speculations == 0
        assert r.missed_deadlines > 0

    def test_backoff_charged_to_modeled_clock(self):
        g = barabasi_albert(100, 3, seed=8)
        plan = FaultPlan(loss_prob=0.3, seed=9)
        base = repro.closeness(
            g, nprocs=4, resilience=ResilienceConfig(fault_plan=plan)
        )
        cfg = AnytimeConfig(nprocs=4, health=HealthPolicy())
        r = repro.closeness(
            g, config=cfg, resilience=ResilienceConfig(fault_plan=plan)
        )
        assert r.backoff_modeled_seconds > 0.0
        assert r.modeled_seconds == pytest.approx(
            base.modeled_seconds + r.backoff_modeled_seconds
        )


# ----------------------------------------------------------------------
# escalating recovery + graceful degradation
# ----------------------------------------------------------------------
class TestEscalation:
    def test_ladder_warm_checkpoint_redistribute(self):
        g = barabasi_albert(150, 3, seed=1)
        plan = FaultPlan(crashes=((1, 0), (3, 0), (5, 0)))
        r = repro.closeness(
            g, nprocs=4,
            resilience=ResilienceConfig(fault_plan=plan, recovery="escalate"),
        )
        assert r.converged and not r.degraded
        details = [
            e.split("detail=")[1]
            for e in r.fault_events
            if "kind=recovery" in e
        ]
        assert details == ["warm", "checkpoint", "redistribute"]
        assert r.recoveries_by_rung == {
            "warm": 1, "checkpoint": 1, "redistribute": 1
        }
        assert set(r.mttr_by_rung) == {"warm", "checkpoint", "redistribute"}
        assert all(v > 0 for v in r.mttr_by_rung.values())

    def test_escalate_matches_exact_closeness(self):
        from repro.centrality import exact_closeness

        g = barabasi_albert(120, 3, seed=2)
        plan = FaultPlan(crashes=((1, 1), (3, 1), (5, 1)))
        r = repro.closeness(
            g, nprocs=4,
            resilience=ResilienceConfig(fault_plan=plan, recovery="escalate"),
        )
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert r.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_crash_budget_degrades_gracefully(self):
        g = barabasi_albert(120, 3, seed=3)
        plan = FaultPlan(crashes=((1, 0), (2, 0), (3, 0)))
        cfg = AnytimeConfig(
            nprocs=4,
            resilience=ResilienceConfig(recovery="escalate"),
            health=HealthPolicy(crash_budget=2),
        )
        r = repro.closeness(
            g, config=cfg,
            resilience=dataclasses.replace(
                cfg.resilience, fault_plan=plan
            ),
        )
        assert r.degraded
        assert r.degraded_reason == "crash-budget"
        assert not r.converged
        assert r.quality["alive_fraction"] == pytest.approx(0.75)
        assert 0.0 < r.quality["finite_fraction"] < 1.0
        assert any("kind=degraded" in e for e in r.fault_events)

    def test_dead_fraction_degrades_gracefully(self):
        g = barabasi_albert(150, 3, seed=4)
        crashes = tuple(
            (1 + rank * 3 + i, rank) for rank in (0, 1, 2) for i in range(3)
        )
        r = repro.closeness(
            g, nprocs=4,
            resilience=ResilienceConfig(
                fault_plan=FaultPlan(crashes=crashes), recovery="escalate"
            ),
        )
        assert r.degraded
        assert r.degraded_reason == "dead-fraction"

    def test_retry_budget_degrades_with_health(self):
        g = barabasi_albert(100, 3, seed=5)
        plan = FaultPlan(loss_prob=0.9, max_retries=1, seed=6)
        cfg = AnytimeConfig(nprocs=4, health=HealthPolicy())
        r = repro.closeness(
            g, config=cfg, resilience=ResilienceConfig(fault_plan=plan)
        )
        assert r.degraded and r.degraded_reason == "retry-budget"
        assert r.quality

    def test_retry_budget_raises_without_health(self):
        from repro.errors import WorkerError

        g = barabasi_albert(100, 3, seed=5)
        plan = FaultPlan(loss_prob=0.9, max_retries=1, seed=6)
        with pytest.raises(WorkerError):
            repro.closeness(
                g, nprocs=4, resilience=ResilienceConfig(fault_plan=plan)
            )

    def test_graceful_degradation_opt_out_raises(self):
        from repro.errors import WorkerError

        g = barabasi_albert(100, 3, seed=5)
        plan = FaultPlan(loss_prob=0.9, max_retries=1, seed=6)
        cfg = AnytimeConfig(
            nprocs=4, health=HealthPolicy(graceful_degradation=False)
        )
        with pytest.raises(WorkerError):
            repro.closeness(
                g, config=cfg, resilience=ResilienceConfig(fault_plan=plan)
            )

    def test_degraded_summary_fields(self):
        g = barabasi_albert(100, 3, seed=3)
        plan = FaultPlan(crashes=((1, 0), (2, 0), (3, 0)))
        cfg = AnytimeConfig(
            nprocs=4,
            resilience=ResilienceConfig(recovery="escalate"),
            health=HealthPolicy(crash_budget=2),
        )
        r = repro.closeness(
            g, config=cfg,
            resilience=dataclasses.replace(
                cfg.resilience, fault_plan=plan
            ),
        )
        s = r.summary()
        assert s["degraded"] is True
        assert s["degraded_reason"] == "crash-budget"
        assert "speculations" in s and "backoff_modeled_seconds" in s

    def test_non_escalate_policies_unchanged(self):
        """The legacy fixed policies must behave exactly as before the
        ladder existed (their tests pin detail strings elsewhere; here:
        no monitor is implicitly created)."""
        g = barabasi_albert(100, 3, seed=1)
        plan = FaultPlan.single_crash(1, 0)
        r = repro.closeness(
            g, nprocs=4,
            resilience=ResilienceConfig(fault_plan=plan, recovery="warm"),
        )
        assert not r.degraded
        assert r.missed_deadlines == 0
        assert r.recoveries_by_rung == {"warm": 1}


# ----------------------------------------------------------------------
# health metric series
# ----------------------------------------------------------------------
class TestHealthMetrics:
    def test_series_exported(self):
        from repro.obs import registry as series

        g = barabasi_albert(100, 3, seed=2)
        plan = FaultPlan(stragglers=((1, 8.0),), loss_prob=0.1, seed=3)
        engine = AnytimeAnywhereCloseness(
            g,
            AnytimeConfig(
                nprocs=4, health=HealthPolicy(), observers=("metrics",),
                collect_snapshots=False,
            ),
        )
        engine.setup()
        r = engine.run(resilience=ResilienceConfig(fault_plan=plan))
        snap = engine.obs.registry.snapshot()
        for name in (
            series.HEALTH_STATE,
            series.MISSED_DEADLINES,
            series.SPECULATIONS,
            series.BACKOFF_SECONDS,
        ):
            assert any(key.startswith(name) for key in snap), name
        spec = next(
            v for k, v in snap.items() if k.startswith(series.SPECULATIONS)
        )
        assert spec == float(r.speculations)
        engine.close()
