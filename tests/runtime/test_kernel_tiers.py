"""Kernel tiers: every tier must be faithful to the numpy oracle.

The ``scipy`` tier only changes *scheduling* (source-chunked IA), so its
closeness bits, trace, modeled clock, and fault accounting must equal
the ``numpy`` tier exactly, on either backend.  The ``numba`` tier is
exact when the compiled kernels are absent (it falls back to ``scipy``)
and bounded by ``NUMBA_CLOSENESS_RTOL`` when present.  Also covers the
tier registry/factory, config/CLI plumbing, the chunked-IA equivalence
at the kernel level, the scatter-writeback min-plus regression against
the old full-submatrix fold, and the cached sorted-subscriber lists on
:class:`Worker`.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ResilienceConfig
from repro.cli import build_parser
from repro.errors import ConfigurationError
from repro.graph import Graph, barabasi_albert, extract_local_subgraph
from repro.graph.changes import (
    ChangeBatch,
    ChangeStream,
    EdgeAddition,
    EdgeDeletion,
    VertexAddition,
)
from repro.model import DEFAULT_COST
from repro.runtime import (
    KERNEL_TIERS,
    GlobalIndex,
    Worker,
    available_tiers,
    make_tier,
    register_tier,
)
from repro.runtime.chaos import FaultPlan
from repro.runtime.kernels import (
    HAS_NUMBA,
    NUMBA_CLOSENESS_RTOL,
    IATask,
    KernelTier,
    NumbaTier,
    NumpyTier,
    ScipyTier,
)
from repro.runtime.kernels import oracle
from repro.runtime.kernels.registry import _INSTANCES

from ..conftest import path_graph


def _bits(closeness: Dict[int, float]) -> List[Tuple[int, bytes]]:
    return [(v, struct.pack("<d", closeness[v])) for v in sorted(closeness)]


def _trace(engine: AnytimeAnywhereCloseness) -> List[Dict[str, Any]]:
    dump = engine.cluster.tracer.to_json()
    records = []
    for rec in dump["records"]:
        rec = dict(rec)
        rec.pop("wall_seconds", None)
        records.append(rec)
    return records


def _changes() -> ChangeStream:
    return ChangeStream(
        {
            1: ChangeBatch(
                vertex_additions=[
                    VertexAddition(200, ((3, 1.0), (11, 1.0))),
                    VertexAddition(201, ((200, 1.0), (0, 1.0))),
                ],
                edge_additions=[EdgeAddition(5, 40)],
            ),
            2: ChangeBatch(edge_deletions=[EdgeDeletion(5, 40)]),
        }
    )


def _fault_plan() -> FaultPlan:
    return FaultPlan(
        seed=11,
        crashes=((2, 1),),
        loss_prob=0.15,
        dup_prob=0.05,
        send_failure_prob=0.05,
    )


def _run(backend: str, tier: str, *, changes=None, strategy=None, fault_plan=None):
    g = barabasi_albert(70, 2, seed=7)
    engine = AnytimeAnywhereCloseness(
        g,
        AnytimeConfig(
            nprocs=4,
            seed=7,
            collect_snapshots=False,
            backend=backend,
            kernel_tier=tier,
        ),
    )
    engine.setup()
    kwargs: Dict[str, Any] = {}
    if changes is not None:
        kwargs["changes"] = changes
        kwargs["strategy"] = strategy
    if fault_plan is not None:
        kwargs["resilience"] = ResilienceConfig(fault_plan=fault_plan)
    res = engine.run(**kwargs)
    summary = res.summary()
    summary.pop("wall_seconds", None)
    fingerprint = (
        _bits(res.closeness),
        res.rc_steps,
        res.modeled_seconds,
        summary,
        _trace(engine),
    )
    engine.cluster.close()
    return fingerprint


class TestTierFingerprints:
    """Acceptance criterion: scipy is bitwise-identical to the oracle."""

    def test_scipy_matches_numpy_serial_static(self):
        assert _run("serial", "scipy") == _run("serial", "numpy")

    def test_scipy_matches_numpy_serial_dynamic_faulty(self):
        assert _run(
            "serial", "scipy", changes=_changes(), strategy="cutedge",
            fault_plan=_fault_plan(),
        ) == _run(
            "serial", "numpy", changes=_changes(), strategy="cutedge",
            fault_plan=_fault_plan(),
        )

    def test_scipy_process_matches_numpy_serial(self):
        # the chunked fan-out across pool slots must merge to the exact
        # same bits the serial oracle produces
        assert _run(
            "process", "scipy", changes=_changes(), strategy="cutedge",
            fault_plan=_fault_plan(),
        ) == _run(
            "serial", "numpy", changes=_changes(), strategy="cutedge",
            fault_plan=_fault_plan(),
        )

    def test_numba_exact_or_bounded(self):
        numba_fp = _run("serial", "numba", changes=_changes(), strategy="cutedge")
        numpy_fp = _run("serial", "numpy", changes=_changes(), strategy="cutedge")
        if not HAS_NUMBA:
            # without the compiled kernels the tier delegates to scipy,
            # which is bitwise-exact
            assert numba_fp == numpy_fp
            return
        got = {v: struct.unpack("<d", b)[0] for v, b in numba_fp[0]}
        want = {v: struct.unpack("<d", b)[0] for v, b in numpy_fp[0]}
        assert set(got) == set(want)
        for v, c in want.items():
            assert got[v] == pytest.approx(c, rel=NUMBA_CLOSENESS_RTOL)

    def test_numba_fallback_is_scipy(self):
        tier = make_tier("numba")
        assert isinstance(tier, NumbaTier)
        assert tier.compiled == HAS_NUMBA
        if not HAS_NUMBA:
            # delegation means identical chunking decisions too
            task = IATask(matrix=None, cols=np.arange(5), n=500, nnz=1000)
            assert tier.ia_chunks(task, 4) == make_tier("scipy").ia_chunks(task, 4)


class TestChunkedIAEquivalence:
    """Source-chunked IA composes to the full oracle call, bitwise."""

    def _task(self, n=40, seed=3):
        g = barabasi_albert(n, 2, seed=seed)
        view = g.to_csr()
        rng = np.random.default_rng(seed)
        cols = np.arange(n, dtype=np.intp)
        dv = rng.uniform(0.5, 30.0, size=(n, n))
        return (
            IATask(matrix=view.matrix, cols=cols, n=n, nnz=view.matrix.nnz),
            dv,
        )

    def test_chunks_partition_sources(self):
        task, _ = self._task(n=500)
        chunks = ScipyTier().ia_chunks(task, parallelism=3)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == task.n
        for (_, hi), (lo2, _) in zip(chunks, chunks[1:]):
            assert hi == lo2
        assert len(chunks) > 1

    def test_small_problem_single_chunk(self):
        task, _ = self._task(n=40)
        assert ScipyTier().ia_chunks(task, parallelism=8) == [(0, 40)]

    def test_numpy_tier_never_chunks(self):
        task, _ = self._task(n=40)
        task = IATask(matrix=task.matrix, cols=task.cols, n=500, nnz=task.nnz)
        assert NumpyTier().ia_chunks(task, parallelism=8) == [(0, 500)]

    def test_chunked_equals_full_bitwise(self):
        task, dv0 = self._task()
        n = task.n
        dv_full = dv0.copy()
        apsp_full = np.zeros((n, n))
        oracle.ia_kernel(task, dv_full, apsp_full)
        dv_chunk = dv0.copy()
        apsp_chunk = np.zeros((n, n))
        tier = ScipyTier()
        for lo, hi in [(0, 13), (13, 29), (29, n)]:
            tier.ia_chunk_kernel(task, lo, hi, dv_chunk, apsp_chunk)
        assert dv_chunk.tobytes() == dv_full.tobytes()
        assert apsp_chunk.tobytes() == apsp_full.tobytes()


class TestScatterFoldRegression:
    """The scatter writeback equals the old full-submatrix writeback."""

    @staticmethod
    def _old_fold(apsp, dv, rows, cols):
        """The pre-scatter ending: write the whole dv[:, cols] submatrix."""
        a = apsp[:, rows]
        b = dv[np.asarray(rows)][:, cols]
        cand = np.full((apsp.shape[0], len(cols)), np.inf, dtype=np.float64)
        for j in range(len(rows)):
            np.minimum(cand, a[:, j][:, None] + b[j][None, :], out=cand)
        sub = dv[:, cols]
        improved = cand < sub
        if not improved.any():
            return []
        sub[improved] = cand[improved]
        dv[:, cols] = sub
        return [int(r) for r in np.flatnonzero(improved.any(axis=1))]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_scatter_bitwise_equivalent(self, seed):
        rng = np.random.default_rng(seed)
        n, n_cols = 14, 25
        apsp = rng.uniform(0.5, 8.0, size=(n, n))
        np.fill_diagonal(apsp, 0.0)
        dv = rng.uniform(0.5, 20.0, size=(n, n_cols))
        dv[rng.random(dv.shape) < 0.2] = np.inf
        rows = sorted(rng.choice(n, size=n // 2, replace=False).tolist())
        cols = np.flatnonzero(rng.random(n_cols) < 0.7)
        dv_old = dv.copy()
        dv_new = dv.copy()
        old_rows = self._old_fold(apsp, dv_old, rows, cols)
        new_rows = oracle.minplus_fold(apsp, dv_new, rows, cols)
        assert new_rows == old_rows
        assert dv_new.tobytes() == dv_old.tobytes()

    def test_no_improvement_leaves_dv_untouched(self):
        apsp = np.zeros((3, 3))
        dv = np.zeros((3, 4))
        before = dv.copy()
        assert oracle.minplus_fold(apsp, dv, [0, 1], np.arange(4)) == []
        assert dv.tobytes() == before.tobytes()


class TestTierRegistry:
    def test_available_tiers(self):
        assert available_tiers() == ("numpy", "scipy", "numba")

    def test_make_tier_by_name(self):
        assert isinstance(make_tier("numpy"), NumpyTier)
        assert isinstance(make_tier("scipy"), ScipyTier)
        assert isinstance(make_tier("numba"), NumbaTier)

    def test_make_tier_memoizes(self):
        assert make_tier("scipy") is make_tier("scipy")

    def test_make_tier_passthrough(self):
        tier = NumpyTier()
        assert make_tier(tier) is tier

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            make_tier("fortran")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_tier("numpy")(NumpyTier)

    def test_register_and_overwrite(self):
        name = "test-tier-temp"
        try:
            @register_tier(name)
            class _Temp(NumpyTier):  # noqa: N801
                pass

            assert name in available_tiers()
            assert isinstance(make_tier(name), _Temp)

            @register_tier(name, overwrite=True)
            class _Temp2(NumpyTier):  # noqa: N801
                pass
        finally:
            KERNEL_TIERS.pop(name, None)
            _INSTANCES.pop(name, None)

    def test_config_validates_tier(self):
        with pytest.raises(ConfigurationError):
            AnytimeConfig(kernel_tier="fortran")

    def test_config_reads_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_TIER", "scipy")
        assert AnytimeConfig().kernel_tier == "scipy"
        monkeypatch.delenv("REPRO_KERNEL_TIER")
        assert AnytimeConfig().kernel_tier == "numpy"

    def test_cli_flag_parsed(self):
        parser = build_parser()
        args = parser.parse_args(["trace", "--kernel-tier", "scipy"])
        assert args.kernel_tier == "scipy"
        args = parser.parse_args(["serve", "--kernel-tier", "numba"])
        assert args.kernel_tier == "numba"
        args = parser.parse_args(["trace"])
        assert args.kernel_tier is None

    def test_engine_plumbs_tier_to_cluster(self):
        g = barabasi_albert(30, 2, seed=1)
        engine = AnytimeAnywhereCloseness(
            g, AnytimeConfig(nprocs=2, collect_snapshots=False, kernel_tier="scipy")
        )
        engine.setup()
        assert engine.cluster.tier.name == "scipy"
        for w in engine.cluster.workers:
            assert w.tier is engine.cluster.tier
        engine.cluster.close()

    def test_base_tier_kernels_abstract(self):
        tier = KernelTier()
        with pytest.raises(NotImplementedError):
            tier.minplus_fold(np.zeros((1, 1)), np.zeros((1, 1)), [0], np.arange(1))


class TestSubscriberMemo:
    """Sorted subscriber lists are cached, not re-sorted per row."""

    def _worker(self):
        g = path_graph(6)
        owner = {v: (0 if v < 4 else 1) for v in range(6)}
        idx = GlobalIndex(g.vertex_list())
        w = Worker(0, 6, idx, DEFAULT_COST)
        w.load_subgraph(extract_local_subgraph(g, [0, 1, 2, 3], owner, 0))
        return w

    def test_sorted_and_cached(self):
        w = self._worker()
        w.subscribe(2, 5)
        w.subscribe(2, 1)
        w.subscribe(2, 3)
        first = w._sorted_subscribers(2)
        assert first == [1, 3, 5]
        assert w._sorted_subscribers(2) is first  # memo hit

    def test_subscribe_invalidates_memo(self):
        w = self._worker()
        w.subscribe(2, 5)
        assert w._sorted_subscribers(2) == [5]
        w.subscribe(2, 1)
        assert w._sorted_subscribers(2) == [1, 5]

    def test_record_subscriber_invalidates_memo(self):
        w = self._worker()
        w.subscribe(2, 5)
        assert w._sorted_subscribers(2) == [5]
        w.record_subscriber(2, 3)
        assert w._sorted_subscribers(2) == [3, 5]
        assert w.subscribers[2] == {3, 5}

    def test_unsubscribe_rank_invalidates_memo(self):
        w = self._worker()
        w.subscribe(2, 5)
        w.subscribe(2, 3)
        assert w._sorted_subscribers(2) == [3, 5]
        w.unsubscribe_rank(5)
        assert w._sorted_subscribers(2) == [3]

    def test_assignment_resets_memo(self):
        w = self._worker()
        w.subscribe(2, 5)
        assert w._sorted_subscribers(2) == [5]
        w.subscribers = {}
        assert w._sorted_subscribers(2) == []


@st.composite
def graph_and_batch(draw):
    """A connected graph plus a valid vertex-addition batch against it."""
    n = draw(st.integers(4, 16))
    g = Graph()
    g.add_vertex(0)
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        g.add_vertex(v)
        g.add_edge(v, parent, float(draw(st.integers(1, 9))))
    k = draw(st.integers(1, 3))
    additions = []
    for i, v in enumerate(range(n, n + k)):
        targets = {draw(st.integers(0, n - 1))}
        edges = tuple((t, float(draw(st.integers(1, 9)))) for t in sorted(targets))
        additions.append(VertexAddition(v, edges=edges))
    return g, ChangeBatch(vertex_additions=additions)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    data=graph_and_batch(),
    nprocs=st.integers(1, 4),
    strategy=st.sampled_from(["roundrobin", "cutedge", "leastloaded"]),
    fault_seed=st.integers(0, 2**16),
)
def test_tiers_identical_property(data, nprocs, strategy, fault_seed):
    """numpy and scipy tiers agree bit-for-bit on arbitrary inputs."""
    g, batch = data
    plan = FaultPlan(seed=fault_seed, loss_prob=0.1, dup_prob=0.05)
    fingerprints = []
    for tier in ("numpy", "scipy"):
        engine = AnytimeAnywhereCloseness(
            g.copy(),
            AnytimeConfig(
                nprocs=nprocs, seed=5, collect_snapshots=False, kernel_tier=tier
            ),
        )
        engine.setup()
        res = engine.run(
            changes=ChangeStream({1: batch}),
            strategy=strategy,
            resilience=ResilienceConfig(fault_plan=plan),
        )
        fingerprints.append(
            (_bits(res.closeness), res.rc_steps, res.modeled_seconds, _trace(engine))
        )
        engine.cluster.close()
    assert fingerprints[0] == fingerprints[1]
