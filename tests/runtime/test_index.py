"""Tests for the global vertex index."""

import pytest

from repro.errors import VertexNotFound
from repro.runtime import GlobalIndex


def test_insertion_order_columns():
    idx = GlobalIndex([5, 2, 9])
    assert idx.column(5) == 0
    assert idx.column(2) == 1
    assert idx.column(9) == 2
    assert len(idx) == 3


def test_add_idempotent():
    idx = GlobalIndex([1])
    assert idx.add(1) == 0
    assert len(idx) == 1


def test_add_many():
    idx = GlobalIndex()
    assert idx.add_many([3, 4, 3]) == [0, 1, 0]


def test_vertex_at_roundtrip():
    idx = GlobalIndex([10, 20, 30])
    for v in (10, 20, 30):
        assert idx.vertex_at(idx.column(v)) == v


def test_missing_vertex():
    with pytest.raises(VertexNotFound):
        GlobalIndex().column(7)


def test_contains():
    idx = GlobalIndex([1])
    assert 1 in idx
    assert 2 not in idx


def test_remove_compacts():
    idx = GlobalIndex([10, 20, 30, 40])
    col = idx.remove(20)
    assert col == 1
    assert idx.column(30) == 1
    assert idx.column(40) == 2
    assert 20 not in idx
    assert len(idx) == 3


def test_remove_then_add():
    idx = GlobalIndex([1, 2])
    idx.remove(1)
    assert idx.add(99) == 1
    assert idx.vertex_at(1) == 99
