"""Tests for the multilevel building blocks: matching, contraction, FM."""

import numpy as np
import pytest

from repro.graph import barabasi_albert
from repro.partition.coarsening import (
    contract,
    heavy_edge_matching,
    level_from_graph,
)
from repro.partition.refinement import block_weights, compute_cut, refine_level

from ..conftest import complete_graph, path_graph


def make_level(n=60, m=3, seed=0):
    return level_from_graph(barabasi_albert(n, m, seed=seed))


class TestMatching:
    def test_matching_is_symmetric(self):
        level = make_level()
        mate = heavy_edge_matching(level, np.random.default_rng(0), 1e9)
        for v, u in mate.items():
            assert mate[u] == v

    def test_matching_covers_all_vertices(self):
        level = make_level()
        mate = heavy_edge_matching(level, np.random.default_rng(0), 1e9)
        assert set(mate) == set(level.adj)

    def test_matched_pairs_are_adjacent(self):
        level = make_level()
        mate = heavy_edge_matching(level, np.random.default_rng(0), 1e9)
        for v, u in mate.items():
            if u != v:
                assert u in level.adj[v]

    def test_weight_cap_respected(self):
        level = make_level()
        # cap = 1.0 forbids all matches (every vertex weighs 1)
        mate = heavy_edge_matching(level, np.random.default_rng(0), 1.0)
        assert all(u == v for v, u in mate.items())

    def test_prefers_heavy_edge(self):
        from repro.graph import Graph

        g = Graph.from_edges([(0, 1, 1.0), (0, 2, 10.0)])
        level = level_from_graph(g)
        mate = heavy_edge_matching(level, np.random.default_rng(0), 1e9)
        assert mate[0] == 2 or mate[2] == 0


class TestContraction:
    def test_vertex_weight_conserved(self):
        level = make_level()
        mate = heavy_edge_matching(level, np.random.default_rng(1), 1e9)
        coarse = contract(level, mate)
        assert coarse.total_vertex_weight() == level.total_vertex_weight()

    def test_shrinks_graph(self):
        level = make_level()
        mate = heavy_edge_matching(level, np.random.default_rng(1), 1e9)
        coarse = contract(level, mate)
        assert coarse.num_vertices < level.num_vertices

    def test_fine_to_coarse_total(self):
        level = make_level()
        mate = heavy_edge_matching(level, np.random.default_rng(1), 1e9)
        coarse = contract(level, mate)
        assert set(coarse.fine_to_coarse) == set(level.adj)
        assert set(coarse.fine_to_coarse.values()) == set(coarse.adj)

    def test_cut_weight_preserved_under_projection(self):
        """Any partition of the coarse graph has the same cut weight as its
        projection to the fine graph (self-collapsed edges excluded)."""
        level = make_level(40, 2, seed=2)
        mate = heavy_edge_matching(level, np.random.default_rng(2), 1e9)
        coarse = contract(level, mate)
        assign_c = {v: v % 3 for v in coarse.adj}
        assign_f = {v: assign_c[coarse.fine_to_coarse[v]] for v in level.adj}
        assert compute_cut(coarse, assign_c) == pytest.approx(
            compute_cut(level, assign_f)
        )


class TestRefinement:
    def test_never_increases_cut(self):
        level = make_level(80, 3, seed=3)
        rng = np.random.default_rng(3)
        assign = {v: int(rng.integers(4)) for v in level.adj}
        before = compute_cut(level, assign)
        _refined, after = refine_level(
            level, assign, 4, max_load=1e9, rng=np.random.default_rng(0)
        )
        assert after <= before

    def test_respects_max_load(self):
        level = make_level(60, 2, seed=4)
        assign = {v: v % 4 for v in level.adj}
        max_load = 60 / 4 * 1.2
        refined, _cut = refine_level(
            level, assign, 4, max_load=max_load, rng=np.random.default_rng(0)
        )
        loads = block_weights(level, refined, 4)
        assert max(loads) <= max_load + 1e-9

    def test_fixes_obvious_misplacement(self):
        # path 0-1-2-3-4-5 split as {0,2,4},{1,3,5} (awful); refinement
        # should find a contiguous split
        level = level_from_graph(path_graph(6))
        assign = {v: v % 2 for v in level.adj}
        refined, cut = refine_level(
            level, assign, 2, max_load=4.0, rng=np.random.default_rng(0)
        )
        assert cut <= 2.0

    def test_clique_stays_together_when_balance_allows(self):
        level = level_from_graph(complete_graph(6))
        assign = {v: v % 2 for v in level.adj}
        _refined, cut = refine_level(
            level, assign, 2, max_load=6.0, rng=np.random.default_rng(0)
        )
        assert cut == 0.0  # all six vertices fit in one block
