"""Behavioral tests for all partitioners."""

import pytest

from repro.graph import barabasi_albert, holme_kim, planted_partition
from repro.partition import (
    BFSGrowingPartitioner,
    ContiguousPartitioner,
    HashPartitioner,
    MultilevelPartitioner,
    RoundRobinPartitioner,
    SpectralPartitioner,
    balance,
    edge_cut,
    round_robin_assign,
)

from ..conftest import path_graph

ALL_PARTITIONERS = [
    MultilevelPartitioner(seed=0),
    SpectralPartitioner(seed=0),
    BFSGrowingPartitioner(seed=0),
    HashPartitioner(),
    RoundRobinPartitioner(),
    ContiguousPartitioner(),
]


@pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: p.name)
class TestCommonContract:
    def test_covers_vertex_set(self, part):
        g = barabasi_albert(150, 3, seed=1)
        p = part.partition(g, 4)
        p.validate_against(g)
        assert p.nparts == 4

    def test_single_part(self, part):
        g = barabasi_albert(30, 2, seed=1)
        p = part.partition(g, 1)
        assert p.block_sizes() == [30]
        assert edge_cut(g, p) == 0

    def test_empty_graph(self, part):
        from repro.graph import Graph

        p = part.partition(Graph(), 3)
        assert p.num_vertices == 0

    def test_invalid_nparts(self, part):
        g = path_graph(4)
        with pytest.raises((ValueError, Exception)):
            part.partition(g, 0)


@pytest.mark.parametrize(
    "part",
    [
        MultilevelPartitioner(seed=0),
        BFSGrowingPartitioner(seed=0),
        SpectralPartitioner(seed=0),
    ],
    ids=lambda p: p.name,
)
def test_cut_optimizers_respect_balance(part):
    g = barabasi_albert(200, 3, seed=2)
    p = part.partition(g, 8)
    assert balance(p) <= 1.30


def test_multilevel_beats_roundrobin_on_cut():
    g = holme_kim(400, 3, p_triad=0.7, seed=3)
    ml = MultilevelPartitioner(seed=3).partition(g, 8)
    rr = RoundRobinPartitioner().partition(g, 8)
    assert edge_cut(g, ml) < 0.75 * edge_cut(g, rr)


def test_multilevel_strict_balance():
    g = barabasi_albert(300, 3, seed=4)
    p = MultilevelPartitioner(seed=4, epsilon=0.1, strict_balance=True).partition(
        g, 4
    )
    assert balance(p) <= 1.1 + 1e-9


def test_multilevel_recovers_planted_blocks_mostly():
    g, truth = planted_partition([40, 40], 0.4, 0.01, seed=5)
    p = MultilevelPartitioner(seed=5).partition(g, 2)
    # the planted bisection is near-optimal; the partitioner's cut should be
    # close to the number of inter-block edges
    planted_cut = sum(
        1
        for u, v, _w in g.edges()
        if (u in set(truth[0])) != (v in set(truth[0]))
    )
    assert edge_cut(g, p) <= 2 * planted_cut + 5


def test_multilevel_deterministic():
    g = barabasi_albert(150, 3, seed=6)
    a = MultilevelPartitioner(seed=9).partition(g, 4)
    b = MultilevelPartitioner(seed=9).partition(g, 4)
    assert a.assignment == b.assignment


def test_multilevel_nparts_exceeds_vertices():
    g = path_graph(3)
    p = MultilevelPartitioner(seed=0).partition(g, 8)
    assert sorted(p.assignment.values()) == [0, 1, 2]


def test_roundrobin_perfectly_balanced():
    g = barabasi_albert(101, 2, seed=0)
    p = RoundRobinPartitioner().partition(g, 4)
    sizes = p.block_sizes()
    assert max(sizes) - min(sizes) <= 1


def test_round_robin_assign_offset_continuity():
    first = round_robin_assign([0, 1, 2], 4, start=0)
    second = round_robin_assign([3, 4], 4, start=3)
    combined = {**first, **second}
    sizes = [0] * 4
    for r in combined.values():
        sizes[r] += 1
    assert max(sizes) - min(sizes) <= 1


def test_hash_partitioner_stable_under_growth():
    g = barabasi_albert(50, 2, seed=0)
    p1 = HashPartitioner().partition(g, 4)
    g2 = g.copy()
    g2.add_vertex(999)
    p2 = HashPartitioner().partition(g2, 4)
    for v in g.vertices():
        assert p1.owner(v) == p2.owner(v)


def test_hash_owner_of_matches_partition():
    g = barabasi_albert(40, 2, seed=0)
    p = HashPartitioner().partition(g, 4)
    for v in g.vertices():
        assert HashPartitioner.owner_of(v, 4) == p.owner(v)


def test_contiguous_blocks_are_ranges():
    g = path_graph(10)
    p = ContiguousPartitioner().partition(g, 3)
    for block in p.blocks():
        assert block == list(range(block[0], block[0] + len(block)))


def test_bfs_growing_handles_disconnected():
    g = path_graph(6)
    g.add_edges([(20, 21)])
    p = BFSGrowingPartitioner(seed=1).partition(g, 2)
    p.validate_against(g)


def test_spectral_bisection_splits_two_cliques():
    from repro.graph import Graph

    edges = []
    for block in (range(0, 8), range(8, 16)):
        block = list(block)
        edges += [
            (block[i], block[j])
            for i in range(len(block))
            for j in range(i + 1, len(block))
        ]
    edges.append((0, 8))  # light bridge
    g = Graph.from_edges(edges)
    p = SpectralPartitioner(seed=0).partition(g, 2)
    assert edge_cut(g, p) == 1
