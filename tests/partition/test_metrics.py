"""Tests for partition quality metrics."""

import pytest

from repro.graph import Graph
from repro.partition import (
    Partition,
    balance,
    cut_edges,
    cut_size_per_block,
    edge_cut,
    imbalance,
    new_cut_edges,
    partition_report,
    weighted_edge_cut,
)

from ..conftest import path_graph


def split_path():
    g = path_graph(4)
    p = Partition(2, {0: 0, 1: 0, 2: 1, 3: 1})
    return g, p


def test_cut_edges_listed_once():
    g, p = split_path()
    assert cut_edges(g, p) == [(1, 2, 1.0)]


def test_edge_cut_count():
    g, p = split_path()
    assert edge_cut(g, p) == 1


def test_weighted_edge_cut():
    g = Graph.from_edges([(0, 1, 5.0), (1, 2, 3.0)])
    p = Partition(2, {0: 0, 1: 1, 2: 1})
    assert weighted_edge_cut(g, p) == 5.0


def test_cut_size_per_block_counts_both_sides():
    g, p = split_path()
    assert cut_size_per_block(g, p) == [1, 1]


def test_balance_perfect():
    _g, p = split_path()
    assert balance(p) == 1.0


def test_balance_skewed():
    p = Partition(2, {0: 0, 1: 0, 2: 0, 3: 1})
    assert balance(p) == pytest.approx(1.5)


def test_balance_empty():
    assert balance(Partition(4, {})) == 1.0


def test_imbalance():
    assert imbalance([10, 10, 10]) == 0.0
    assert imbalance([20, 10, 0]) == pytest.approx(1.0)
    assert imbalance([]) == 0.0
    assert imbalance([0, 0]) == 0.0


def test_new_cut_edges_only_counts_new():
    g, p = split_path()
    old_edges = {(0, 1), (1, 2), (2, 3)}
    # add one new cut edge (0, 3) and one new internal edge (0, 1 exists)
    g.add_edge(0, 3)
    p2 = Partition(2, dict(p.assignment))
    assert new_cut_edges(g, p2, old_edges) == 1


def test_new_cut_edges_ignores_migrated_old_edges():
    g, _p = split_path()
    old_edges = {(0, 1), (1, 2), (2, 3)}
    # repartition moved vertex 1: edge (0,1) is now cut but is NOT new
    p2 = Partition(2, {0: 0, 1: 1, 2: 1, 3: 1})
    assert new_cut_edges(g, p2, old_edges) == 0


def test_partition_report_keys():
    g, p = split_path()
    rep = partition_report(g, p)
    assert rep["nparts"] == 2
    assert rep["edge_cut"] == 1
    assert rep["block_sizes"] == [2, 2]
    assert 0 <= rep["cut_imbalance"] < 10
