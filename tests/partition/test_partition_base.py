"""Tests for the Partition value object."""

import pytest

from repro.errors import InvalidPartition
from repro.partition import Partition

from ..conftest import path_graph


def make_partition():
    return Partition(2, {0: 0, 1: 0, 2: 1, 3: 1})


class TestConstruction:
    def test_valid(self):
        p = make_partition()
        assert p.nparts == 2
        assert p.num_vertices == 4

    def test_rank_out_of_range(self):
        with pytest.raises(InvalidPartition):
            Partition(2, {0: 2})

    def test_negative_rank(self):
        with pytest.raises(InvalidPartition):
            Partition(2, {0: -1})

    def test_nparts_positive(self):
        with pytest.raises(InvalidPartition):
            Partition(0, {})


class TestAccessors:
    def test_block(self):
        assert make_partition().block(0) == [0, 1]
        assert make_partition().block(1) == [2, 3]

    def test_blocks(self):
        assert make_partition().blocks() == [[0, 1], [2, 3]]

    def test_block_sizes(self):
        p = Partition(3, {0: 0, 1: 0, 2: 2})
        assert p.block_sizes() == [2, 0, 1]

    def test_owner(self):
        assert make_partition().owner(2) == 1

    def test_copy_independent(self):
        p = make_partition()
        q = p.copy()
        q.assignment[0] = 1
        assert p.owner(0) == 0


class TestValidationAndMerge:
    def test_validate_against_matching_graph(self):
        make_partition().validate_against(path_graph(4))

    def test_validate_against_mismatched_graph(self):
        with pytest.raises(InvalidPartition):
            make_partition().validate_against(path_graph(3))

    def test_merge_assignments(self):
        p = make_partition().merge_assignments({10: 1})
        assert p.owner(10) == 1
        assert p.num_vertices == 5

    def test_merge_rejects_reassignment(self):
        with pytest.raises(InvalidPartition):
            make_partition().merge_assignments({0: 1})

    def test_merge_is_pure(self):
        p = make_partition()
        p.merge_assignments({10: 0})
        assert 10 not in p.assignment
