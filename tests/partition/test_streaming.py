"""Tests for the LDG streaming partitioner and streaming assignment."""

import pytest

from repro.graph import barabasi_albert, planted_partition
from repro.partition import (
    LDGPartitioner,
    RoundRobinPartitioner,
    edge_cut,
    ldg_stream_assign,
)


def test_covers_all_vertices():
    g = barabasi_albert(100, 3, seed=0)
    p = LDGPartitioner().partition(g, 4)
    p.validate_against(g)


def test_capacity_respected():
    g = barabasi_albert(120, 3, seed=1)
    p = LDGPartitioner(capacity_slack=0.1).partition(g, 4)
    assert max(p.block_sizes()) <= 120 * 1.1 / 4 + 1


def test_beats_roundrobin_on_cut():
    g, _ = planted_partition([40, 40, 40], 0.3, 0.01, seed=2)
    ldg = LDGPartitioner().partition(g, 3)
    rr = RoundRobinPartitioner().partition(g, 3)
    assert edge_cut(g, ldg) < edge_cut(g, rr)


def test_deterministic_without_seed():
    g = barabasi_albert(60, 2, seed=3)
    a = LDGPartitioner().partition(g, 4)
    b = LDGPartitioner().partition(g, 4)
    assert a.assignment == b.assignment


def test_seeded_shuffle_changes_stream_order():
    g = barabasi_albert(60, 2, seed=3)
    a = LDGPartitioner(seed=1).partition(g, 4)
    b = LDGPartitioner(seed=2).partition(g, 4)
    # different arrival orders generally give different placements
    assert a.assignment != b.assignment


def test_stream_assign_continues_existing_placement():
    g, comms = planted_partition([20, 20], 0.5, 0.01, seed=4)
    existing = {v: 0 for v in comms[0]}
    existing.update({v: 1 for v in comms[1]})
    # add a new vertex adjacent to community 0 only
    new = g.next_vertex_id()
    g.add_vertex(new)
    for t in comms[0][:4]:
        g.add_edge(new, t)
    out = ldg_stream_assign(
        g, 2, order=[new], initial_assignment=existing
    )
    assert out[new] == 0


def test_stream_assign_neighborless_goes_to_lightest():
    g = barabasi_albert(20, 2, seed=5)
    g.add_vertex(999)
    existing = {v: 0 for v in range(20)}
    out = ldg_stream_assign(g, 2, order=[999], initial_assignment=existing)
    assert out[999] == 1  # block 1 is empty -> highest capacity headroom


def test_invalid_nparts():
    g = barabasi_albert(10, 2, seed=0)
    with pytest.raises(ValueError):
        ldg_stream_assign(g, 0)
