"""Tests for the repro-lint invariant linter (tools/repro_lint).

Every rule gets a flag / no-flag / suppression triple over synthetic
fixture files, plus CLI-level tests (text/json output, exit codes) and
a self-check that the real ``src/repro`` tree lints clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path
from typing import List, Optional

from repro_lint import LintConfig, Registry, lint_file, lint_paths
from repro_lint.cli import main as lint_main
from repro_lint.config import load_config
from repro_lint.core import Finding, collect_suppressions

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(
    tmp_path: Path,
    rel: str,
    source: str,
    *,
    select: Optional[List[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Write ``source`` at ``tmp_path/rel`` and lint it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(path, config or LintConfig(), select=select)


def codes(findings: List[Finding]) -> List[str]:
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# framework
# ----------------------------------------------------------------------
class TestFramework:
    def test_all_rules_registered(self) -> None:
        assert Registry.codes() == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
            "RPL008",
            "RPL009",
            "RPL010",
        ]

    def test_rules_have_docs(self) -> None:
        for rule_cls in Registry.rules():
            assert rule_cls.name
            assert rule_cls.description

    def test_out_of_scope_file_is_ignored(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "scripts/helper.py",
            "import random\nrandom.random()\n",
        )
        assert findings == []

    def test_syntax_error_reports_rpl000(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path, "src/repro/runtime/bad.py", "def broken(:\n"
        )
        assert codes(findings) == ["RPL000"]

    def test_select_filters_rules(self, tmp_path: Path) -> None:
        source = """
            import random
            random.random()
            try:
                pass
            except:
                pass
        """
        findings = lint_source(
            tmp_path, "src/repro/runtime/x.py", source, select=["RPL005"]
        )
        assert codes(findings) == ["RPL005"]

    def test_findings_sorted_by_location(self, tmp_path: Path) -> None:
        source = """
            import random
            random.random()
            random.randint(0, 3)
        """
        findings = lint_source(tmp_path, "src/repro/model/x.py", source)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_per_file_ignores(self, tmp_path: Path) -> None:
        config = LintConfig(
            per_file_ignores={"repro/runtime/legacy.py": ("RPL001",)}
        )
        findings = lint_source(
            tmp_path,
            "src/repro/runtime/legacy.py",
            "import random\nrandom.random()\n",
            config=config,
        )
        assert findings == []


class TestSuppressions:
    def test_same_line_pragma(self) -> None:
        sup = collect_suppressions(
            "x = 1  # repro-lint: disable=RPL001\n"
        )
        assert sup[1] == {"RPL001"}

    def test_multiple_codes(self) -> None:
        sup = collect_suppressions(
            "x = 1  # repro-lint: disable=RPL001,RPL003\n"
        )
        assert sup[1] == {"RPL001", "RPL003"}

    def test_standalone_pragma_rolls_forward(self) -> None:
        sup = collect_suppressions(
            "# repro-lint: disable=RPL002\nfor x in s:\n    pass\n"
        )
        assert "RPL002" in sup[2]

    def test_pragma_inside_string_is_not_a_pragma(self) -> None:
        sup = collect_suppressions(
            's = "# repro-lint: disable=RPL001"\n'
        )
        assert 1 not in sup


# ----------------------------------------------------------------------
# RPL001 — unseeded randomness
# ----------------------------------------------------------------------
class TestRPL001:
    def test_flags_module_level_random(self, tmp_path: Path) -> None:
        source = """
            import random
            x = random.random()
        """
        findings = lint_source(tmp_path, "src/repro/model/r.py", source)
        assert codes(findings) == ["RPL001"]

    def test_flags_unseeded_default_rng(self, tmp_path: Path) -> None:
        source = """
            import numpy as np
            rng = np.random.default_rng()
        """
        findings = lint_source(tmp_path, "src/repro/model/r.py", source)
        assert codes(findings) == ["RPL001"]

    def test_flags_none_seed(self, tmp_path: Path) -> None:
        source = """
            import numpy as np
            rng = np.random.default_rng(None)
        """
        findings = lint_source(tmp_path, "src/repro/model/r.py", source)
        assert codes(findings) == ["RPL001"]

    def test_seeded_rng_is_clean(self, tmp_path: Path) -> None:
        source = """
            import random
            import numpy as np
            rng = np.random.default_rng(42)
            rng2 = np.random.default_rng(seed=7)
            r = random.Random(0)
            x = rng.integers(0, 10)
        """
        findings = lint_source(tmp_path, "src/repro/model/r.py", source)
        assert findings == []

    def test_seed_via_from_import(self, tmp_path: Path) -> None:
        source = """
            from numpy.random import default_rng
            bad = default_rng()
            good = default_rng(3)
        """
        findings = lint_source(tmp_path, "src/repro/model/r.py", source)
        assert codes(findings) == ["RPL001"]
        assert findings[0].line == 3  # the dedented source leads with \n

    def test_suppression(self, tmp_path: Path) -> None:
        source = """
            import random
            x = random.random()  # repro-lint: disable=RPL001
        """
        findings = lint_source(tmp_path, "src/repro/model/r.py", source)
        assert findings == []


# ----------------------------------------------------------------------
# RPL002 — nondeterministic iteration
# ----------------------------------------------------------------------
class TestRPL002:
    def test_flags_for_over_set_literal_var(self, tmp_path: Path) -> None:
        source = """
            def f():
                ranks = {1, 2, 3}
                for r in ranks:
                    handle(r)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert codes(findings) == ["RPL002"]

    def test_flags_annotated_set_argument(self, tmp_path: Path) -> None:
        source = """
            from typing import Set

            def f(ranks: Set[int]) -> None:
                for r in ranks:
                    handle(r)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert codes(findings) == ["RPL002"]

    def test_flags_set_valued_dict_lookup(self, tmp_path: Path) -> None:
        source = """
            from typing import Dict, Set

            class W:
                def __init__(self) -> None:
                    self.subscribers: Dict[int, Set[int]] = {}

                def f(self, v: int) -> None:
                    for dst in self.subscribers.get(v, ()):
                        handle(dst)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert codes(findings) == ["RPL002"]

    def test_flags_list_materialization(self, tmp_path: Path) -> None:
        source = """
            def f():
                s = set([3, 1, 2])
                return list(s)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert codes(findings) == ["RPL002"]

    def test_sorted_iteration_is_clean(self, tmp_path: Path) -> None:
        source = """
            def f():
                ranks = {1, 2, 3}
                for r in sorted(ranks):
                    handle(r)
                return sorted(v for v in ranks if v > 1)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert findings == []

    def test_dict_iteration_is_clean(self, tmp_path: Path) -> None:
        # plain dicts preserve insertion order — deterministic
        source = """
            def f(d):
                for k in d:
                    handle(k)
                for k, v in d.items():
                    handle(k, v)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert findings == []

    def test_outside_order_sensitive_package_is_clean(
        self, tmp_path: Path
    ) -> None:
        source = """
            def f():
                for r in {1, 2, 3}:
                    handle(r)
        """
        findings = lint_source(tmp_path, "src/repro/graph/g.py", source)
        assert findings == []

    def test_set_union_taint(self, tmp_path: Path) -> None:
        source = """
            def f(a, b):
                merged = set(a) | set(b)
                for x in merged:
                    handle(x)
        """
        findings = lint_source(tmp_path, "src/repro/partition/p.py", source)
        assert codes(findings) == ["RPL002"]

    def test_reassignment_clears_taint(self, tmp_path: Path) -> None:
        source = """
            def f():
                xs = {1, 2}
                xs = sorted(xs)
                for x in xs:
                    handle(x)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        source = """
            def f():
                ranks = {1, 2, 3}
                for r in ranks:  # repro-lint: disable=RPL002
                    handle(r)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert findings == []


# ----------------------------------------------------------------------
# RPL003 — wall-clock leakage
# ----------------------------------------------------------------------
class TestRPL003:
    def test_flags_time_time(self, tmp_path: Path) -> None:
        source = """
            import time
            t = time.time()
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert codes(findings) == ["RPL003"]

    def test_flags_perf_counter_from_import(self, tmp_path: Path) -> None:
        source = """
            from time import perf_counter
            t = perf_counter()
        """
        findings = lint_source(tmp_path, "src/repro/core/e.py", source)
        assert codes(findings) == ["RPL003"]

    def test_flags_datetime_now(self, tmp_path: Path) -> None:
        source = """
            from datetime import datetime
            stamp = datetime.now()
        """
        findings = lint_source(tmp_path, "src/repro/model/m.py", source)
        assert codes(findings) == ["RPL003"]

    def test_allowlisted_tracing_module_is_clean(
        self, tmp_path: Path
    ) -> None:
        source = """
            import time
            t = time.perf_counter()
        """
        findings = lint_source(
            tmp_path, "src/repro/runtime/tracing.py", source
        )
        assert findings == []

    def test_allowlisted_bench_package_is_clean(
        self, tmp_path: Path
    ) -> None:
        source = """
            import time
            t = time.perf_counter()
        """
        findings = lint_source(
            tmp_path, "src/repro/bench/scenarios.py", source
        )
        assert findings == []

    def test_modeled_clock_is_clean(self, tmp_path: Path) -> None:
        source = """
            def advance(clock: float, elapsed: float) -> float:
                return clock + elapsed
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        source = """
            import time
            t = time.time()  # repro-lint: disable=RPL003
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert findings == []


# ----------------------------------------------------------------------
# RPL004 — uncharged wire copies
# ----------------------------------------------------------------------
class TestRPL004:
    def test_flags_uncharged_send(self, tmp_path: Path) -> None:
        source = """
            def forward(src, dst, payload):
                dst.receive_rows(src.rank, payload)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/c.py", source)
        assert codes(findings) == ["RPL004"]

    def test_charged_send_is_clean(self, tmp_path: Path) -> None:
        source = """
            def forward(self, src, dst, payload, words):
                self.charge_comm_words(src.rank, dst.rank, words)
                dst.receive_rows(src.rank, payload)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/c.py", source)
        assert findings == []

    def test_self_receive_is_clean(self, tmp_path: Path) -> None:
        # a worker's own intake path: priced by the remote caller
        source = """
            class Worker:
                def ingest(self, sender, payload):
                    self.receive_rows(sender, payload)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert findings == []

    def test_outside_wire_package_is_clean(self, tmp_path: Path) -> None:
        source = """
            def forward(dst, payload):
                dst.receive_rows(0, payload)
        """
        findings = lint_source(tmp_path, "src/repro/core/e.py", source)
        assert findings == []

    def test_nested_function_does_not_leak_charge(
        self, tmp_path: Path
    ) -> None:
        # the charge lives in a *nested* function that may never run
        source = """
            def forward(self, dst, payload):
                def maybe_charge():
                    self.charge_comm_words(0, 1, 10)
                dst.receive_rows(0, payload)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/c.py", source)
        assert codes(findings) == ["RPL004"]

    def test_suppression(self, tmp_path: Path) -> None:
        source = """
            def forward(dst, payload):
                dst.receive_rows(0, payload)  # repro-lint: disable=RPL004
        """
        findings = lint_source(tmp_path, "src/repro/runtime/c.py", source)
        assert findings == []


# ----------------------------------------------------------------------
# RPL005 — overbroad except on fault paths
# ----------------------------------------------------------------------
class TestRPL005:
    def test_flags_bare_except(self, tmp_path: Path) -> None:
        source = """
            def step():
                try:
                    run()
                except:
                    pass
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert codes(findings) == ["RPL005"]

    def test_flags_except_exception_on_fault_path(
        self, tmp_path: Path
    ) -> None:
        source = """
            def recover():
                try:
                    restore()
                except Exception:
                    return None
        """
        findings = lint_source(tmp_path, "src/repro/runtime/f.py", source)
        assert codes(findings) == ["RPL005"]

    def test_reraising_handler_is_clean(self, tmp_path: Path) -> None:
        source = """
            def recover():
                try:
                    restore()
                except Exception as exc:
                    raise RuntimeError("restore failed") from exc
        """
        findings = lint_source(tmp_path, "src/repro/core/c.py", source)
        assert findings == []

    def test_specific_exception_is_clean(self, tmp_path: Path) -> None:
        source = """
            def recover():
                try:
                    restore()
                except (KeyError, ValueError):
                    return None
        """
        findings = lint_source(tmp_path, "src/repro/runtime/f.py", source)
        assert findings == []

    def test_except_exception_outside_fault_path_is_clean(
        self, tmp_path: Path
    ) -> None:
        source = """
            def parse():
                try:
                    load()
                except Exception:
                    return None
        """
        findings = lint_source(tmp_path, "src/repro/model/m.py", source)
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        source = """
            def step():
                try:
                    run()
                except Exception:  # repro-lint: disable=RPL005
                    pass
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert findings == []


# ----------------------------------------------------------------------
# RPL006 — bare print() in library code
# ----------------------------------------------------------------------
class TestRPL006:
    def test_flags_bare_print(self, tmp_path: Path) -> None:
        source = """
            def debug(x):
                print("value", x)
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert codes(findings) == ["RPL006"]

    def test_allowlisted_cli_is_clean(self, tmp_path: Path) -> None:
        source = """
            def main():
                print("table")
        """
        findings = lint_source(tmp_path, "src/repro/cli.py", source)
        assert findings == []

    def test_allowlisted_bench_is_clean(self, tmp_path: Path) -> None:
        source = """
            def progress():
                print("running...")
        """
        findings = lint_source(tmp_path, "src/repro/bench/b.py", source)
        assert findings == []

    def test_method_named_print_is_clean(self, tmp_path: Path) -> None:
        source = """
            def render(doc):
                doc.print()
        """
        findings = lint_source(tmp_path, "src/repro/obs/x.py", source)
        assert findings == []

    def test_custom_allowlist(self, tmp_path: Path) -> None:
        config = LintConfig(print_allowlist=("repro/tools_io/",))
        flagged = lint_source(
            tmp_path,
            "src/repro/cli.py",
            "print('hi')\n",
            config=config,
        )
        assert codes(flagged) == ["RPL006"]
        clean = lint_source(
            tmp_path,
            "src/repro/tools_io/p.py",
            "print('hi')\n",
            config=config,
        )
        assert clean == []

    def test_suppression(self, tmp_path: Path) -> None:
        source = """
            def debug(x):
                print(x)  # repro-lint: disable=RPL006
        """
        findings = lint_source(tmp_path, "src/repro/runtime/w.py", source)
        assert findings == []


# ----------------------------------------------------------------------
# RPL007 — wall-clock retry backoff
# ----------------------------------------------------------------------
class TestRPL007:
    def test_flags_sleep_in_retry_loop(self, tmp_path: Path) -> None:
        source = """
            import time

            def deliver(packet, max_retries):
                for attempt in range(max_retries):
                    if send(packet):
                        return
                    time.sleep(0.1 * attempt)
        """
        findings = lint_source(
            tmp_path, "src/repro/runtime/net.py", source, select=["RPL007"]
        )
        assert codes(findings) == ["RPL007"]

    def test_flags_unseeded_jitter_in_backoff_loop(
        self, tmp_path: Path
    ) -> None:
        source = """
            import random

            def resend(ch):
                backoff = 1.0
                while ch.pending():
                    backoff *= 2 * (1 + random.random())
                    ch.charge(backoff)
        """
        findings = lint_source(
            tmp_path, "src/repro/runtime/net.py", source, select=["RPL007"]
        )
        assert codes(findings) == ["RPL007"]

    def test_flags_seedless_default_rng_in_retry_loop(
        self, tmp_path: Path
    ) -> None:
        source = """
            import numpy as np

            def jittered_retries(n):
                for attempt in range(n):
                    rng = np.random.default_rng()
                    yield rng.random()
        """
        findings = lint_source(
            tmp_path, "src/repro/runtime/net.py", source, select=["RPL007"]
        )
        assert codes(findings) == ["RPL007"]

    def test_modeled_clock_backoff_is_clean(self, tmp_path: Path) -> None:
        # the blessed pattern: seeded generator + modeled-clock charge
        source = """
            import numpy as np

            def resend(ch, tracer, seed):
                rng = np.random.default_rng(seed)
                for attempt in range(ch.max_retries):
                    delay = 1e-3 * 2 ** attempt * (1 + 0.1 * rng.random())
                    tracer.add_comm(delay)
        """
        findings = lint_source(
            tmp_path, "src/repro/runtime/net.py", source, select=["RPL007"]
        )
        assert findings == []

    def test_sleep_outside_retry_loop_not_flagged(
        self, tmp_path: Path
    ) -> None:
        # plain sleeps are RPL003's wall-clock problem, not RPL007's
        source = """
            import time

            def warmup(items):
                for item in items:
                    time.sleep(0.5)
        """
        findings = lint_source(
            tmp_path, "src/repro/runtime/net.py", source, select=["RPL007"]
        )
        assert findings == []

    def test_bench_allowlist_may_sleep(self, tmp_path: Path) -> None:
        source = """
            import time

            def poll(job):
                for attempt in range(10):
                    if job.done():
                        return
                    time.sleep(1.0)
        """
        findings = lint_source(
            tmp_path, "src/repro/bench/poll.py", source, select=["RPL007"]
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        source = """
            import time

            def deliver(packet, retries):
                for attempt in range(retries):
                    time.sleep(1)  # repro-lint: disable=RPL007
        """
        findings = lint_source(
            tmp_path, "src/repro/runtime/net.py", source, select=["RPL007"]
        )
        assert findings == []


# ----------------------------------------------------------------------
# config loading
# ----------------------------------------------------------------------
class TestConfig:
    def test_defaults_when_pyproject_missing(self, tmp_path: Path) -> None:
        cfg = load_config(tmp_path / "nope.toml")
        assert cfg == LintConfig()

    def test_pyproject_table_overrides(self, tmp_path: Path) -> None:
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                wall-clock-allowlist = ["mypkg/timing.py"]
                send-primitives = ["push_rows"]
                """
            ),
            encoding="utf-8",
        )
        cfg = load_config(pyproject)
        assert cfg.wall_clock_allowlist == ("mypkg/timing.py",)
        assert cfg.send_primitives == ("push_rows",)
        # untouched fields keep their defaults
        assert cfg.charge_primitives == LintConfig().charge_primitives

    def test_repo_pyproject_parses(self) -> None:
        cfg = load_config(REPO_ROOT / "pyproject.toml")
        assert "repro/" in cfg.target_packages


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_exit_zero_on_clean_tree(self, tmp_path: Path) -> None:
        clean = tmp_path / "src/repro/model/clean.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("x = 1\n", encoding="utf-8")
        assert lint_main(["--no-config", str(clean)]) == 0

    def test_exit_one_on_findings(self, tmp_path: Path, capsys) -> None:
        bad = tmp_path / "src/repro/model/bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrandom.random()\n", encoding="utf-8")
        assert lint_main(["--no-config", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out

    def test_exit_two_on_missing_path(self, tmp_path: Path) -> None:
        assert lint_main([str(tmp_path / "ghost.py")]) == 2

    def test_exit_two_on_no_paths(self) -> None:
        assert lint_main([]) == 2

    def test_exit_two_on_unknown_select(self, tmp_path: Path) -> None:
        f = tmp_path / "x.py"
        f.write_text("x = 1\n", encoding="utf-8")
        assert lint_main(["--select", "RPL999", str(f)]) == 2

    def test_json_output(self, tmp_path: Path, capsys) -> None:
        bad = tmp_path / "src/repro/model/bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrandom.random()\n", encoding="utf-8")
        assert (
            lint_main(["--no-config", "--format", "json", str(bad)]) == 1
        )
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 1
        assert report["findings"][0]["code"] == "RPL001"
        assert report["findings"][0]["line"] == 2

    def test_list_rules(self, capsys) -> None:
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in Registry.codes():
            assert code in out

    def test_directory_walk(self, tmp_path: Path) -> None:
        pkg = tmp_path / "src/repro/runtime"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text("import time\ntime.time()\n")
        (pkg / "b.py").write_text("x = 1\n")
        findings = lint_paths([tmp_path / "src"], LintConfig())
        assert codes(findings) == ["RPL003"]


# ----------------------------------------------------------------------
# self-check: the shipped tree must satisfy its own invariants
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_src_repro_is_lint_clean(self) -> None:
        cfg = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src" / "repro"], cfg)
        assert findings == [], "\n".join(f.render() for f in findings)
