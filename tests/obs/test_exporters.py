"""Exporter formats: JSONL (schema-valid), Perfetto (structural),
Prometheus text, and the FORMAT:PATH spec parser."""

import json

import pytest

import validate_trace  # tools/ is on sys.path via tests/conftest.py
from repro.obs import (
    JSONLExporter,
    PerfettoExporter,
    PrometheusExporter,
    make_exporter,
    parse_spec,
)

from .conftest import run_scenario


class TestParseSpec:
    def test_formats(self, tmp_path):
        assert parse_spec("jsonl:a.jsonl") == ("jsonl", "a.jsonl")
        assert parse_spec("perfetto:t.json") == ("perfetto", "t.json")
        assert parse_spec("prom:m.prom") == ("prom", "m.prom")

    def test_prometheus_alias(self):
        assert parse_spec("prometheus:m.prom") == ("prom", "m.prom")

    def test_case_insensitive_format(self):
        assert parse_spec("JSONL:a.jsonl") == ("jsonl", "a.jsonl")

    @pytest.mark.parametrize(
        "bad", ["jsonl", "jsonl:", "csv:x.csv", ":path", "x"]
    )
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    def test_make_exporter_types(self, tmp_path):
        assert isinstance(make_exporter("jsonl:x"), JSONLExporter)
        assert isinstance(make_exporter("perfetto:x"), PerfettoExporter)
        assert isinstance(make_exporter("prometheus:x"), PrometheusExporter)


class TestJSONL:
    def test_export_validates_against_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_scenario("dynamic", observers=(f"jsonl:{path}",))
        errors = validate_trace.validate_trace_file(path)
        assert errors == []

    def test_chaos_export_validates_against_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_scenario(
            "chaos", observers=(f"jsonl:{path}", "convergence")
        )
        errors = validate_trace.validate_trace_file(path)
        assert errors == []

    def test_validator_flags_bad_events(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"seq": -1, "kind": "begin", "level": "nope", "name": 3,'
            ' "t": 0.0, "step": null, "rank": null, "attrs": {},'
            ' "wall": null, "extra": 1}\n'
            "not json\n",
            encoding="utf-8",
        )
        errors = validate_trace.validate_trace_file(bad)
        assert any("below minimum" in e for e in errors)
        assert any("not in enum" in e for e in errors)
        assert any("expected type string" in e for e in errors)
        assert any("unexpected property 'extra'" in e for e in errors)
        assert any("invalid JSON" in e for e in errors)

    def test_eventless_close_leaves_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        exp = JSONLExporter(str(path))
        exp.close(registry=None)
        assert path.read_text(encoding="utf-8") == ""


class TestPerfetto:
    def test_four_rank_dynamic_trace_is_structurally_valid(self, tmp_path):
        path = tmp_path / "trace.perfetto.json"
        run_scenario(
            "dynamic", nprocs=4, observers=(f"perfetto:{path}",)
        )
        doc = json.loads(path.read_text(encoding="utf-8"))
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        assert doc["displayTimeUnit"] == "ms"
        phs = {e["ph"] for e in events}
        assert phs <= {"B", "E", "i", "X", "C", "M"}
        # every begin is balanced by an end, in order, per (pid, tid)
        stacks = {}
        for e in events:
            key = (e["pid"], e["tid"])
            if e["ph"] == "B":
                stacks.setdefault(key, []).append(e["name"])
            elif e["ph"] == "E":
                assert stacks[key].pop() == e["name"]
        assert all(not s for s in stacks.values())
        # rank kernels are complete slices on one track per rank
        kernel_tids = {
            e["tid"] for e in events if e["ph"] == "X"
        }
        assert kernel_tids == {1, 2, 3, 4}
        assert all(
            e["dur"] >= 0 for e in events if e["ph"] == "X"
        )
        assert all(
            e.get("ts", 0) >= 0 for e in events if e["ph"] != "M"
        )
        # thread-name metadata covers the coordinator and all 4 ranks
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"coordinator", "rank 0", "rank 1", "rank 2",
                         "rank 3"}


class TestPrometheus:
    def test_dump_has_typed_well_known_series(self, tmp_path):
        path = tmp_path / "metrics.prom"
        run_scenario("chaos", observers=(f"prom:{path}",))
        text = path.read_text(encoding="utf-8")
        assert "# TYPE repro_wire_words_total counter" in text
        assert "# TYPE repro_delta_hit_rate gauge" in text
        assert "# TYPE repro_faults_total counter" in text
        assert (
            "# TYPE repro_rank_compute_modeled_seconds histogram" in text
        )
        assert 'repro_boundary_rows_total{encoding="dense"}' in text
        assert 'repro_pending_rows{rank="0"}' in text
        assert 'le="+Inf"' in text
