"""Unit tests for the declarative SLO engine (`repro.obs.slo`)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.slo import (
    SLO_KINDS,
    SLOEvaluator,
    SLOSample,
    SLOSpec,
    load_slo_specs,
    specs_from_json,
)
from repro.obs.slo import _percentile_nearest_rank


def sample(tick, tick_seconds=0.001, **kwargs):
    return SLOSample(
        tick=tick, t=0.01 * (tick + 1), tick_seconds=tick_seconds, **kwargs
    )


class TestSpecValidation:
    def test_all_kinds_construct(self):
        for kind in SLO_KINDS:
            SLOSpec(name=f"s-{kind}", kind=kind, threshold=0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "", "kind": "staleness", "threshold": 0.1},
            {"name": "two words", "kind": "staleness", "threshold": 0.1},
            {"name": "x", "kind": "not-a-kind", "threshold": 0.1},
            {"name": "x", "kind": "staleness", "threshold": -1.0},
            {"name": "x", "kind": "tick_latency", "threshold": 0.0},
            {"name": "x", "kind": "staleness", "threshold": 0.1, "window": 0},
            {"name": "x", "kind": "staleness", "threshold": 0.1,
             "budget_fraction": 1.0},
            {"name": "x", "kind": "tick_latency", "threshold": 0.1,
             "percentile": 0.0},
            {"name": "x", "kind": "tick_latency", "threshold": 0.1,
             "percentile": 1.5},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SLOSpec(**kwargs)

    def test_describe_mentions_name_and_window(self):
        spec = SLOSpec(name="lat", kind="tick_latency", threshold=0.5,
                       window=4, percentile=0.9)
        text = spec.describe()
        assert "lat" in text and "p90" in text and "4" in text

    def test_duplicate_names_rejected(self):
        specs = [
            SLOSpec(name="a", kind="staleness", threshold=0.1),
            SLOSpec(name="a", kind="tick_latency", threshold=0.2),
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            SLOEvaluator(specs)


class TestPercentile:
    def test_nearest_rank_values(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert _percentile_nearest_rank(values, 0.5) == 5.0
        assert _percentile_nearest_rank(values, 0.95) == 10.0
        assert _percentile_nearest_rank(values, 1.0) == 10.0
        assert _percentile_nearest_rank(values, 0.1) == 1.0
        assert _percentile_nearest_rank([], 0.5) == 0.0

    def test_order_independent(self):
        assert _percentile_nearest_rank([3.0, 1.0, 2.0], 0.5) == 2.0


class TestTransitions:
    def test_latency_fires_and_resolves(self):
        ev = SLOEvaluator([
            SLOSpec(name="lat", kind="tick_latency", threshold=0.01,
                    window=4, percentile=0.5)
        ])
        # under threshold: no alert
        assert ev.observe(sample(0, 0.005)) == []
        # sustained breach: exactly one firing transition
        alerts = ev.observe(sample(1, 0.02))
        alerts += ev.observe(sample(2, 0.02))
        alerts += ev.observe(sample(3, 0.02))
        firing = [a for a in alerts if a.state == "firing"]
        assert len(firing) == 1
        assert firing[0].kind == "tick_latency"
        assert firing[0].burn_rate > 1.0
        # recovery: the median falls back under the bound
        resolved = []
        for t in range(4, 10):
            resolved += ev.observe(sample(t, 0.001))
        assert [a.state for a in resolved] == ["resolved"]
        assert ev.firing == []

    def test_budget_fires_only_past_budget(self):
        ev = SLOEvaluator([
            SLOSpec(name="st", kind="staleness", threshold=0.1,
                    window=4, budget_fraction=0.5)
        ])
        # 1 bad of 2 ticks = 0.5, not above the 0.5 budget
        assert ev.observe(sample(0, residual_max=0.01)) == []
        assert ev.observe(sample(1, residual_max=0.5)) == []
        # 2 bad of 3 > 0.5: fires
        alerts = ev.observe(sample(2, residual_max=0.9))
        assert [a.state for a in alerts] == ["firing"]
        assert alerts[0].burn_rate == pytest.approx((2 / 3) / 0.5)

    def test_no_data_ticks_hold_state(self):
        ev = SLOEvaluator([
            SLOSpec(name="st", kind="staleness", threshold=0.1, window=2)
        ])
        alerts = ev.observe(sample(0, residual_max=0.5))
        assert [a.state for a in alerts] == ["firing"]
        # ticks without a probe sample neither resolve nor re-fire
        for t in range(1, 5):
            assert ev.observe(sample(t, residual_max=None)) == []
        assert ev.firing == ["st"]
        state = ev.status()[0]
        assert state["samples"] == 1

    def test_delta_hit_rate_is_a_floor(self):
        ev = SLOEvaluator([
            SLOSpec(name="hit", kind="delta_hit_rate", threshold=0.5,
                    window=2)
        ])
        assert ev.observe(sample(0, delta_hit_rate=0.9)) == []
        alerts = ev.observe(sample(1, delta_hit_rate=0.1))
        assert [a.state for a in alerts] == ["firing"]

    def test_degraded_ticks_burn_budget_without_crashing(self):
        ev = SLOEvaluator([
            SLOSpec(name="degr", kind="degraded_budget", threshold=0,
                    window=4, budget_fraction=0.25)
        ])
        assert ev.observe(sample(0, degraded=False)) == []
        # one degraded tick of two: 0.5 > 0.25 budget, fires
        alerts = ev.observe(sample(1, degraded=True))
        assert [a.state for a in alerts] == ["firing"]
        assert alerts[0].bad_ticks == 1
        # healthy ticks age the bad one out of the window: resolves
        resolved = []
        for t in range(2, 8):
            resolved += ev.observe(sample(t, degraded=False))
        assert [a.state for a in resolved] == ["resolved"]

    def test_rank_health_threshold(self):
        ev = SLOEvaluator([
            SLOSpec(name="rank", kind="rank_health", threshold=1,
                    window=2)
        ])
        assert ev.observe(sample(0, rank_health_max=1.0)) == []
        alerts = ev.observe(sample(1, rank_health_max=2.0))
        assert [a.state for a in alerts] == ["firing"]

    def test_alert_line_is_canonical(self):
        ev = SLOEvaluator([
            SLOSpec(name="lat", kind="tick_latency", threshold=0.01,
                    window=1, percentile=1.0)
        ])
        (alert,) = ev.observe(sample(3, 0.025))
        assert alert.line() == (
            "slo=lat state=firing kind=tick_latency tick=3 t=0.040000"
            " value=0.025 threshold=0.01 burn=2.5 bad=1 window=1"
        )
        attrs = alert.attrs()
        assert attrs["state"] == "firing"
        assert attrs["value"] == 0.025


class TestSpecLoading:
    def test_object_and_bare_list_forms(self):
        raw = [{"name": "a", "kind": "staleness", "threshold": 0.1}]
        assert len(specs_from_json(raw)) == 1
        assert len(specs_from_json({"slos": raw})) == 1

    def test_unknown_and_missing_fields(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            specs_from_json([{"name": "a", "kind": "staleness",
                              "threshold": 0.1, "oops": 1}])
        with pytest.raises(ConfigurationError, match="missing required"):
            specs_from_json([{"name": "a", "kind": "staleness"}])
        with pytest.raises(ConfigurationError, match="JSON array"):
            specs_from_json({"nope": []})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps({"slos": [
            {"name": "lat", "kind": "tick_latency", "threshold": 0.5},
        ]}), encoding="utf-8")
        specs = load_slo_specs(str(path))
        assert specs[0].name == "lat"
        assert specs[0].window == 8  # default

    def test_repo_example_spec_file_loads(self):
        from pathlib import Path

        example = (
            Path(__file__).resolve().parents[2]
            / "examples" / "serving_slos.json"
        )
        specs = load_slo_specs(str(example))
        assert {s.kind for s in specs} == set(SLO_KINDS)
