"""Convergence telemetry: probes, oracles, and anytime quality claims."""

import math

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.centrality.exact import apsp_dijkstra
from repro.graph import barabasi_albert
from repro.obs import ConvergenceProbe, exact_distance_oracle

from .conftest import run_scenario


class TestDistanceOracle:
    def test_matches_apsp(self):
        g = barabasi_albert(30, 2, seed=3)
        oracle = exact_distance_oracle(g)
        dist, ids = apsp_dijkstra(g)
        for i, u in enumerate(ids):
            row = oracle.row(u)
            assert row is not None
            for j, v in enumerate(ids):
                assert row[v] == pytest.approx(float(dist[i, j]))

    def test_unknown_source_is_none(self):
        g = barabasi_albert(10, 2, seed=3)
        assert exact_distance_oracle(g).row(9999) is None


class TestProbe:
    def test_history_covers_every_superstep(self):
        probe = ConvergenceProbe()
        result, _ = run_scenario("dynamic", observers=(probe,))
        assert sorted(probe.history) == list(range(result.rc_steps))
        first = probe.history[0]
        assert math.isinf(first["residual_max"])
        last = probe.history[result.rc_steps - 1]
        assert last["residual_max"] == 0.0
        assert last["pending_rows"] == 0.0
        assert last["unacked_rows"] == 0.0
        assert last["resolved_fraction"] == pytest.approx(1.0)

    def test_oracle_match_reaches_one_at_convergence(self):
        g = barabasi_albert(50, 2, seed=7)
        probe = ConvergenceProbe(oracle=exact_distance_oracle(g))
        config = AnytimeConfig(
            nprocs=4, seed=7, collect_snapshots=False, observers=(probe,)
        )
        with AnytimeAnywhereCloseness(g, config) as engine:
            engine.setup()
            result = engine.run()
        assert result.converged
        fractions = [
            s["oracle_match_fraction"] for _, s in sorted(probe.history.items())
        ]
        assert fractions[-1] == pytest.approx(1.0)
        # quality is monotonically non-decreasing toward the truth
        assert all(b >= a - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_interrupted_run_carries_quality_statement(self):
        """The anytime claim: a budget-interrupted run still reports
        *how good* its answer is (RunResult.convergence)."""
        g = barabasi_albert(80, 2, seed=9)
        config = AnytimeConfig(
            nprocs=4,
            seed=9,
            collect_snapshots=False,
            observers=("convergence",),
        )
        with AnytimeAnywhereCloseness(g, config) as engine:
            engine.setup()
            result = engine.run(budget_modeled_seconds=1e-9)
        assert not result.converged
        sample = result.convergence["convergence"]
        assert set(sample) >= {
            "residual_max",
            "residual_mean",
            "pending_rows",
            "unacked_rows",
            "resolved_fraction",
        }
        assert 0.0 <= sample["resolved_fraction"] <= 1.0

    def test_probe_results_in_run_result_on_full_run(self):
        result, engine = run_scenario("static", observers=("convergence",))
        assert result.convergence["convergence"] == (
            engine.obs.last_samples["convergence"]
        )
