"""Unit tests for the benchmark regression ledger (`repro.obs.history`)."""

from __future__ import annotations

import json

from repro.obs.history import (
    BenchRecord,
    append_records,
    diff_records,
    latest_by_key,
    load_records,
    records_from_report,
    records_from_rows,
    render_diff,
)

REPORT = {
    "bench": "demo",
    "pass": True,
    "failures": [],
    "smoke": True,
    "n_vertices": 500,
    "points": [
        {"backend": "serial", "modeled_seconds": 1.25,
         "wall_seconds": 9.5, "bitwise_identical": True},
        {"backend": "process", "modeled_seconds": 1.25,
         "wall_seconds": 7.5, "bitwise_identical": True},
    ],
}


def rec(metric="modeled_seconds", value=1.0, case="c", **kwargs):
    return BenchRecord(
        bench="demo", case=case, metric=metric, value=value, **kwargs
    )


class TestNormalization:
    def test_report_flattens_to_records(self):
        records = records_from_report(REPORT)
        keys = {(r.case, r.metric) for r in records}
        assert ("", "n_vertices") in keys
        assert ("points[serial]", "modeled_seconds") in keys
        assert ("points[process]", "wall_seconds") in keys
        # booleans and bookkeeping keys never become measurements
        metrics = {r.metric for r in records}
        assert "bitwise_identical" not in metrics
        assert "pass" not in metrics and "smoke" not in metrics

    def test_smoke_flag_becomes_scale_context(self):
        smoke = records_from_report(REPORT)
        assert all(r.context["scale"] == "smoke" for r in smoke)
        full = records_from_report({**REPORT, "smoke": False})
        assert all(r.context["scale"] == "full" for r in full)
        # same metric at the two scales never shares a ledger identity
        assert smoke[0].key != full[0].key

    def test_unit_heuristic(self):
        records = {r.metric: r for r in records_from_report(REPORT)}
        assert records_from_report(REPORT)[0].schema_version == 1
        assert records["n_vertices"].unit == "count"
        by_case = {
            (r.case, r.metric): r for r in records_from_report(REPORT)
        }
        assert by_case[("points[serial]", "modeled_seconds")].unit == (
            "seconds"
        )

    def test_rows_normalize_with_string_labels_as_case(self):
        rows = [
            {"strategy": "cutedge", "modeled_seconds": 2.0, "ok": True},
            {"strategy": "vertex", "modeled_seconds": 3.0, "ok": False},
        ]
        records = records_from_rows("fig", rows)
        assert {r.case for r in records} == {
            "strategy=cutedge", "strategy=vertex",
        }
        assert all(r.metric == "modeled_seconds" for r in records)


class TestLedgerIO:
    def test_roundtrip_and_last_wins(self, tmp_path):
        path = tmp_path / "demo.jsonl"
        append_records(path, [rec(value=1.0)])
        append_records(path, [rec(value=2.0), rec(metric="other", value=5)])
        loaded = load_records(path)
        assert len(loaded) == 3
        latest = latest_by_key(loaded)
        assert latest[rec().key].value == 2.0  # append-only: last wins

    def test_created_stamp_is_annotation_only(self, tmp_path):
        stamped = rec(created="2026-08-08T00:00:00Z")
        bare = rec()
        assert stamped.key == bare.key
        line = json.loads(stamped.to_json())
        assert line["created"] == "2026-08-08T00:00:00Z"
        assert "created" not in json.loads(bare.to_json())


class TestDiff:
    def test_gated_increase_regresses(self):
        base = [rec(value=1.0), rec(metric="wall_seconds", value=1.0)]
        cur = [rec(value=1.10), rec(metric="wall_seconds", value=9.0)]
        diff = diff_records(base, cur, threshold=0.05)
        assert not diff.ok
        (bad,) = diff.regressions
        assert bad.metric == "modeled_seconds"
        assert bad.delta == 0.10000000000000009 or abs(bad.delta - 0.1) < 1e-9
        # wall metrics never gate, however much they move
        wall = next(r for r in diff.rows if r.metric == "wall_seconds")
        assert not wall.gated and not wall.regressed

    def test_within_threshold_and_improvements_pass(self):
        base = [rec(value=1.0)]
        assert diff_records(base, [rec(value=1.04)]).ok
        assert diff_records(base, [rec(value=0.5)]).ok

    def test_missing_and_added_are_informational(self):
        base = [rec(case="a"), rec(case="b")]
        cur = [rec(case="a"), rec(case="new")]
        diff = diff_records(base, cur)
        assert diff.ok
        assert [k[1] for k in diff.missing] == ["b"]
        assert [k[1] for k in diff.added] == ["new"]

    def test_zero_baseline_increase_is_infinite_regression(self):
        diff = diff_records([rec(value=0.0)], [rec(value=0.5)])
        assert not diff.ok
        assert diff.regressions[0].delta == float("inf")
        assert diff_records([rec(value=0.0)], [rec(value=0.0)]).ok

    def test_render_mentions_verdict(self):
        base, cur = [rec(value=1.0)], [rec(value=2.0)]
        text = render_diff(diff_records(base, cur))
        assert "REGRESSED" in text and "FAIL" in text
        ok_text = render_diff(diff_records(base, base))
        assert "OK: no gated regressions" in ok_text
