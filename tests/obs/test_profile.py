"""The span-folding cost-attribution profiler (`repro.obs.profile`)."""

from __future__ import annotations

import pytest

from repro.obs import load_events
from repro.obs.profile import (
    Profile,
    fold_cluster,
    fold_events,
    profile_to_perfetto,
    render_profile,
)

from .conftest import run_scenario


def _strip_wall(profile: dict) -> dict:
    """The deterministic part of a profile dict (wall is annotation)."""
    out = dict(profile)
    out.pop("skew", None)
    out["phases"] = [
        {k: v for k, v in row.items() if k != "wall_seconds"}
        for row in profile["phases"]
    ]
    return out


class TestFoldCluster:
    def test_run_result_carries_profile(self):
        result, _ = run_scenario("dynamic")
        prof = result.profile
        assert prof["total_seconds"] == result.modeled_seconds
        assert prof["meta"]["source"] == "cluster"
        phases = {row["phase"] for row in prof["phases"]}
        assert {"domain_decomposition", "initial_approximation",
                "rc_step"} <= phases

    def test_modeled_time_partitions_exactly(self):
        result, _ = run_scenario("dynamic")
        prof = result.profile
        bucketed = sum(r["modeled_seconds"] for r in prof["phases"])
        assert bucketed == pytest.approx(prof["attributed_seconds"])
        assert prof["attributed_seconds"] + prof["unattributed_seconds"] \
            == pytest.approx(prof["total_seconds"])
        # self = modeled - kernel - comm, never negative
        for row in prof["phases"]:
            assert row["self_seconds"] >= 0.0
            assert row["kernel_seconds"] + row["comm_seconds"] \
                <= row["modeled_seconds"] + 1e-12

    def test_attribution_coverage_at_scale(self):
        # the >=95% acceptance criterion targets full-scale dynamic
        # runs; n=240 is the smallest scale that is clearly past the
        # fixed-cost regime where per-step convergence votes dominate
        result, _ = run_scenario("dynamic", n_base=240)
        assert result.profile["coverage"] >= 0.95

    def test_rank_and_tier_charges_are_consistent(self):
        result, engine = run_scenario("dynamic")
        prof = result.profile
        charged_ranks = sum(r["charged_seconds"] for r in prof["ranks"])
        charged_tiers = sum(r["charged_seconds"] for r in prof["tiers"])
        assert charged_ranks == pytest.approx(charged_tiers)
        kernel = sum(r["kernel_seconds"] for r in prof["phases"])
        assert charged_ranks == pytest.approx(kernel)
        # metered >= charged per rank in aggregate: the critical rank's
        # time is charged, the others' metered time overlaps it
        metered = sum(r["metered_seconds"] for r in prof["ranks"])
        assert metered >= charged_ranks - 1e-12
        assert prof["meta"]["barriers"] > 0

    def test_profile_is_deterministic_across_backends(self):
        serial, _ = run_scenario("dynamic", backend="serial")
        process, _ = run_scenario("dynamic", backend="process")
        assert _strip_wall(serial.profile) == _strip_wall(process.profile)

    def test_chaos_runs_fold_too(self):
        result, _ = run_scenario("chaos")
        assert result.profile["total_seconds"] == result.modeled_seconds
        assert result.profile["coverage"] > 0.0


class TestFoldEvents:
    def test_events_fold_matches_cluster_fold(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        result, _ = run_scenario("dynamic", observers=(f"jsonl:{path}",))
        prof = fold_events(load_events(path))
        live = result.profile
        assert prof.total_seconds == pytest.approx(live["total_seconds"])
        by_name = {row["phase"]: row for row in prof.to_dict()["phases"]}
        for row in live["phases"]:
            got = by_name[row["phase"]]
            assert got["modeled_seconds"] == pytest.approx(
                row["modeled_seconds"]
            )
            assert got["count"] == row["count"]
            # without mitigation, charged == max metered: both folds
            # attribute the same kernel time to each phase
            assert got["kernel_seconds"] == pytest.approx(
                row["kernel_seconds"]
            )
        assert prof.meta["source"] == "events"
        assert prof.meta["barriers"] == live["meta"]["barriers"]

    def test_empty_stream_yields_zero_profile(self):
        prof = fold_events([])
        assert isinstance(prof, Profile)
        assert prof.total_seconds == 0.0
        assert prof.coverage == 1.0
        assert prof.phases == [] and prof.hot == []

    def test_unclosed_spans_truncate_at_last_event(self):
        events = [
            {"kind": "begin", "level": "run", "name": "run", "t": 0.0},
            {"kind": "begin", "level": "phase",
             "name": "domain_decomposition", "t": 0.0},
            {"kind": "end", "level": "phase",
             "name": "domain_decomposition", "t": 1.0, "attrs": {}},
            {"kind": "begin", "level": "superstep", "name": "rc_step",
             "t": 1.0},
            {"kind": "point", "level": "rank_kernel", "name": "kernel",
             "t": 1.5, "step": 0, "rank": 0,
             "attrs": {"modeled_seconds": 0.25, "tier": "numpy"}},
            # run aborts here: rc_step and run never close
        ]
        prof = fold_events(events)
        assert prof.meta["truncated_spans"] == 2  # rc_step + run
        rc = next(r for r in prof.phases if r["phase"] == "rc_step")
        assert rc["truncated"] == 1
        assert rc["modeled_seconds"] == pytest.approx(0.5)  # 1.0 -> 1.5
        assert prof.total_seconds == pytest.approx(1.5)

    def test_top_k_hot_paths(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_scenario("dynamic", observers=(f"jsonl:{path}",))
        events = load_events(path)
        prof = fold_events(events, top=2)
        assert len(prof.hot) == 2
        shares = [row["share"] for row in fold_events(events).hot]
        assert shares == sorted(shares, reverse=True)


class TestRendering:
    def test_render_profile_sections(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_scenario("dynamic", observers=(f"jsonl:{path}",))
        prof = fold_events(load_events(path))
        text = render_profile(prof)
        assert "cost attribution (modeled clock):" in text
        assert "phases (self/total split):" in text
        assert "ranks (kernel attribution):" in text
        assert "hot paths" in text and "skew" in text
        pinned = render_profile(prof, include_wall=False)
        assert "wall" not in pinned

    def test_render_handles_empty_profile(self):
        text = render_profile(fold_events([]))
        assert "(no phase spans)" in text

    def test_perfetto_view_shape(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_scenario("dynamic", observers=(f"jsonl:{path}",))
        prof = fold_events(load_events(path))
        doc = profile_to_perfetto(prof)
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X" and e["tid"] == 0]
        assert len(slices) == len(prof.phases)
        # phase slices tile the modeled timeline end-to-end
        assert slices[0]["ts"] == 0.0
        total_us = sum(e["dur"] for e in slices)
        assert total_us == pytest.approx(prof.attributed_seconds * 1e6)
        assert any(e["ph"] == "C" for e in events)  # coverage counter
        rank_tracks = [e for e in events if e["ph"] == "X" and e["tid"] > 0]
        assert len(rank_tracks) == len(prof.ranks)
