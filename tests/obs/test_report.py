"""Trace loading/aggregation and the `repro report` renderer."""

from repro.obs import load_events, render_report
from repro.obs.report import TraceReport, _aggregate

from .conftest import run_scenario


def _instrumented_trace(tmp_path, scenario="dynamic"):
    path = tmp_path / "trace.jsonl"
    result, _ = run_scenario(
        scenario, observers=(f"jsonl:{path}", "convergence")
    )
    return result, load_events(path)


class TestAggregate:
    def test_run_and_phase_structure(self, tmp_path):
        result, events = _instrumented_trace(tmp_path)
        report = _aggregate(events)
        assert isinstance(report, TraceReport)
        assert report.run["modeled_seconds"] == result.modeled_seconds
        assert report.run["rc_steps"] == result.rc_steps
        assert report.run["wire_words"] == result.wire_words
        phases = {p["phase"]: p for p in report.phases}
        assert phases["rc_step"]["count"] == result.rc_steps
        assert "domain_decomposition" in phases
        assert "initial_approximation" in phases
        # modeled span durations never exceed the whole run
        total = sum(p["modeled_seconds"] for p in report.phases)
        assert total <= result.modeled_seconds + 1e-12

    def test_convergence_rows_and_metrics(self, tmp_path):
        result, events = _instrumented_trace(tmp_path)
        report = _aggregate(events)
        steps = [row["step"] for row in report.convergence]
        assert steps == list(range(result.rc_steps))
        assert report.convergence[-1]["pending_rows"] == 0.0
        assert report.metrics["repro_wire_words_total"] == float(
            result.wire_words
        )


class TestRender:
    def test_report_renders_phases_convergence_metrics(self, tmp_path):
        result, events = _instrumented_trace(tmp_path)
        text = render_report(events)
        assert "run:" in text
        assert f"rc_steps={result.rc_steps}" in text
        assert "rc_step" in text
        assert "domain_decomposition" in text
        assert "convergence (per-superstep probes):" in text
        assert "resolved_fraction" in text
        assert "final metrics:" in text
        assert "repro_wire_words_total" in text

    def test_render_without_probes_or_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # no convergence probe; metric flush still happens at close
        run_scenario("static", observers=(f"jsonl:{path}",))
        text = render_report(load_events(path))
        assert "run:" in text
        assert "rc_step" in text
        assert "(no convergence probe samples in trace)" in text

    def test_render_empty_trace(self):
        text = render_report([])  # degrades, never crashes
        assert "(empty trace: no events)" in text
        assert "(no phase spans in trace)" in text


class TestHardening:
    """Aborted, truncated, and degenerate traces must still report."""

    def test_aborted_mid_phase_run_truncates_open_spans(self):
        events = [
            {"kind": "begin", "level": "run", "name": "run", "t": 0.0},
            {"kind": "begin", "level": "phase",
             "name": "domain_decomposition", "t": 0.0},
            {"kind": "end", "level": "phase",
             "name": "domain_decomposition", "t": 1.0, "attrs": {}},
            {"kind": "begin", "level": "superstep", "name": "rc_step",
             "t": 1.0},
            # the run dies here: rc_step and run never close
        ]
        report = _aggregate(events)
        assert report.truncated_spans == 2
        assert report.run["aborted"] is True
        assert report.run["modeled_seconds"] == 1.0
        rc = next(p for p in report.phases if p["phase"] == "rc_step")
        assert rc["truncated"] == 1
        text = render_report(events)
        assert "never closed" in text and "aborted mid-phase" in text

    def test_zero_superstep_run_renders(self):
        events = [
            {"kind": "begin", "level": "run", "name": "run", "t": 0.0},
            {"kind": "end", "level": "run", "name": "run", "t": 0.0,
             "attrs": {"rc_steps": 0, "converged": True}},
        ]
        text = render_report(events)
        assert "rc_steps=0" in text
        assert "(no phase spans in trace)" in text
        assert "(no convergence probe samples in trace)" in text

    def test_alert_events_render_transition_table(self):
        events = [
            {"kind": "alert", "level": "slo", "name": "lat", "t": 0.04,
             "step": 3,
             "attrs": {"state": "firing", "kind": "tick_latency",
                       "value": 0.025, "threshold": 0.01}},
            {"kind": "alert", "level": "slo", "name": "lat", "t": 0.08,
             "step": 7,
             "attrs": {"state": "resolved", "kind": "tick_latency",
                       "value": 0.004, "threshold": 0.01}},
        ]
        report = _aggregate(events)
        assert [row["slo"] for row in report.alerts] == ["lat", "lat"]
        text = render_report(events)
        assert "slo alerts (state transitions):" in text
        assert "(1 firing / 1 resolved)" in text
