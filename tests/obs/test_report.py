"""Trace loading/aggregation and the `repro report` renderer."""

from repro.obs import load_events, render_report
from repro.obs.report import TraceReport, _aggregate

from .conftest import run_scenario


def _instrumented_trace(tmp_path, scenario="dynamic"):
    path = tmp_path / "trace.jsonl"
    result, _ = run_scenario(
        scenario, observers=(f"jsonl:{path}", "convergence")
    )
    return result, load_events(path)


class TestAggregate:
    def test_run_and_phase_structure(self, tmp_path):
        result, events = _instrumented_trace(tmp_path)
        report = _aggregate(events)
        assert isinstance(report, TraceReport)
        assert report.run["modeled_seconds"] == result.modeled_seconds
        assert report.run["rc_steps"] == result.rc_steps
        assert report.run["wire_words"] == result.wire_words
        phases = {p["phase"]: p for p in report.phases}
        assert phases["rc_step"]["count"] == result.rc_steps
        assert "domain_decomposition" in phases
        assert "initial_approximation" in phases
        # modeled span durations never exceed the whole run
        total = sum(p["modeled_seconds"] for p in report.phases)
        assert total <= result.modeled_seconds + 1e-12

    def test_convergence_rows_and_metrics(self, tmp_path):
        result, events = _instrumented_trace(tmp_path)
        report = _aggregate(events)
        steps = [row["step"] for row in report.convergence]
        assert steps == list(range(result.rc_steps))
        assert report.convergence[-1]["pending_rows"] == 0.0
        assert report.metrics["repro_wire_words_total"] == float(
            result.wire_words
        )


class TestRender:
    def test_report_renders_phases_convergence_metrics(self, tmp_path):
        result, events = _instrumented_trace(tmp_path)
        text = render_report(events)
        assert "run:" in text
        assert f"rc_steps={result.rc_steps}" in text
        assert "rc_step" in text
        assert "domain_decomposition" in text
        assert "convergence (per-superstep probes):" in text
        assert "resolved_fraction" in text
        assert "final metrics:" in text
        assert "repro_wire_words_total" in text

    def test_render_without_probes_or_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # no convergence probe; metric flush still happens at close
        run_scenario("static", observers=(f"jsonl:{path}",))
        text = render_report(load_events(path))
        assert "run:" in text
        assert "rc_step" in text
        assert "(no convergence probe samples in trace)" in text

    def test_render_empty_trace(self):
        text = render_report([])  # degrades, never crashes
        assert "(no phase spans in trace)" in text
