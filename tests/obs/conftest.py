"""Shared helpers for the observability suite."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ResilienceConfig
from repro.bench.workloads import incremental_stream
from repro.core.engine import RunResult
from repro.runtime.chaos import FaultPlan

SCENARIOS = ("static", "dynamic", "chaos")


def run_scenario(
    scenario: str,
    *,
    backend: str = "serial",
    observers: Sequence[object] = (),
    nprocs: int = 4,
    n_base: int = 80,
    seed: int = 5,
) -> Tuple[RunResult, AnytimeAnywhereCloseness]:
    """One small standard run per scenario; returns (result, engine).

    The engine is closed (context manager) before returning, so exporter
    files are flushed and shm is released; ``engine`` is handed back only
    for inspecting ``engine.obs`` state.
    """
    assert scenario in SCENARIOS
    workload = incremental_stream(n_base, 6, 3, seed=seed)
    changes = None if scenario == "static" else workload.stream
    fault_plan: Optional[FaultPlan] = None
    if scenario == "chaos":
        fault_plan = FaultPlan(seed=13, loss_prob=0.1, dup_prob=0.05)
    config = AnytimeConfig(
        nprocs=nprocs,
        seed=seed,
        collect_snapshots=False,
        backend=backend,
        observers=tuple(observers),
    )
    with AnytimeAnywhereCloseness(workload.base.copy(), config) as engine:
        engine.setup()
        result = engine.run(
            changes=changes,
            strategy="cutedge",
            resilience=ResilienceConfig(fault_plan=fault_plan),
        )
    return result, engine
