"""Lifecycle: idempotent close, context managers, shm release on raise."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig, closeness
from repro.centrality import exact_closeness
from repro.graph import barabasi_albert
from repro.obs import ObserverHub
from repro.runtime import Cluster
from repro.partition import MultilevelPartitioner


def _graph(n=40, seed=3):
    return barabasi_albert(n, 2, seed=seed)


class TestClusterClose:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_close_is_idempotent(self, backend):
        c = Cluster(_graph(), 4, backend=backend)
        c.decompose(MultilevelPartitioner(seed=0))
        c.close()
        c.close()  # double close must be a no-op
        assert c._closed

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_context_manager_closes(self, backend):
        with Cluster(_graph(), 4, backend=backend) as c:
            c.decompose(MultilevelPartitioner(seed=0))
            c.run_initial_approximation()
        assert c._closed

    def test_context_manager_closes_on_raise(self):
        with pytest.raises(RuntimeError, match="boom"):
            with Cluster(_graph(), 4, backend="process") as c:
                raise RuntimeError("boom")
        assert c._closed


class TestEngineLifecycle:
    def test_engine_close_without_setup(self):
        engine = AnytimeAnywhereCloseness(_graph(), AnytimeConfig(nprocs=2))
        engine.close()  # no cluster yet: still safe, closes the hub
        engine.close()

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_engine_context_manager_closes_cluster(self, backend):
        config = AnytimeConfig(nprocs=4, seed=3, backend=backend)
        with AnytimeAnywhereCloseness(_graph(), config) as engine:
            engine.setup()
            engine.run()
        assert engine.cluster is not None
        assert engine.cluster._closed

    def test_engine_releases_shm_when_run_raises(self):
        """A raising run must still release process-backend resources
        and leave balanced spans in the trace (satellite a)."""
        config = AnytimeConfig(nprocs=4, seed=3, backend="process")
        with pytest.raises(RuntimeError, match="interrupted"):
            with AnytimeAnywhereCloseness(_graph(), config) as engine:
                engine.setup()
                raise RuntimeError("interrupted mid-run")
        assert engine.cluster._closed

    def test_setup_twice_closes_first_cluster(self):
        config = AnytimeConfig(nprocs=4, seed=3, backend="process")
        with AnytimeAnywhereCloseness(_graph(), config) as engine:
            engine.setup()
            first = engine.cluster
            engine.setup()
            assert first._closed
            assert engine.cluster is not first
        assert engine.cluster._closed

    def test_closeness_facade_closes_and_matches_exact(self):
        g = _graph(30)
        result = closeness(g, nprocs=3)
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_hub_closed_once_per_engine(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        config = AnytimeConfig(
            nprocs=2, seed=3, observers=(f"jsonl:{trace}",)
        )
        with AnytimeAnywhereCloseness(_graph(), config) as engine:
            engine.setup()
            engine.run()
        assert isinstance(engine.obs, ObserverHub)
        assert engine.obs._closed
        content = trace.read_text(encoding="utf-8")
        assert content  # exporter flushed by the context exit
        engine.close()  # second close: file must not be rewritten empty
        assert trace.read_text(encoding="utf-8") == content
