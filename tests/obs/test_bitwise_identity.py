"""Observers must never change results — the core acceptance pin.

With observers attached (JSONL exporter + convergence probe) the
closeness values (bit for bit), the modeled clock, the wire word totals,
and the fault accounting must equal an unobserved run, for static /
dynamic / chaos scenarios under both execution backends.  The exported
JSONL itself must be deterministic (byte-identical after stripping the
wall annotation) across repeats *and* across backends.
"""

import struct

import pytest

from repro.obs import canonical_line

from .conftest import SCENARIOS, run_scenario


def _bits(closeness):
    return [(v, struct.pack("<d", closeness[v])) for v in sorted(closeness)]


def _canonical_trace(path):
    return [
        canonical_line(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]


@pytest.mark.parametrize("backend", ["serial", "process"])
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_observers_do_not_change_results(scenario, backend, tmp_path):
    trace = tmp_path / "trace.jsonl"
    off, _ = run_scenario(scenario, backend=backend)
    on, _ = run_scenario(
        scenario,
        backend=backend,
        observers=(f"jsonl:{trace}", "convergence"),
    )
    assert _bits(on.closeness) == _bits(off.closeness)
    assert on.modeled_seconds == off.modeled_seconds
    assert on.wire_words == off.wire_words
    assert on.boundary_words == off.boundary_words
    assert on.rc_steps == off.rc_steps
    assert on.converged == off.converged
    # fault accounting (nonzero only in the chaos scenario)
    assert on.faults_injected == off.faults_injected
    assert on.retries == off.retries
    assert on.recoveries == off.recoveries
    assert on.fault_events == off.fault_events
    if scenario == "chaos":
        assert off.faults_injected > 0
    # observed run carries the quantified quality statement
    assert off.convergence == {}
    sample = on.convergence["convergence"]
    assert sample["pending_rows"] == 0.0
    assert sample["residual_max"] == 0.0


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_trace_identical_across_repeats_and_backends(scenario, tmp_path):
    traces = {}
    for tag, backend in (
        ("serial_a", "serial"),
        ("serial_b", "serial"),
        ("process", "process"),
    ):
        path = tmp_path / f"{tag}.jsonl"
        run_scenario(
            scenario, backend=backend, observers=(f"jsonl:{path}",)
        )
        traces[tag] = _canonical_trace(path)
    assert traces["serial_a"], "export must not be empty"
    assert traces["serial_a"] == traces["serial_b"]
    assert traces["serial_a"] == traces["process"]
