"""Unit tests for the metrics registry, histograms, and the hub."""

import pytest

from repro.obs import Histogram, MetricsRegistry, NullObserver, ObserverHub
from repro.obs.events import SpanEvent, canonical_line
from repro.obs.observer import NULL_HUB


class TestRegistry:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        r.inc("repro_x_total", 2.0)
        r.inc("repro_x_total", 3.0)
        assert r.value("repro_x_total") == 5.0
        assert r.type_of("repro_x_total") == "counter"

    def test_counter_set_overwrites(self):
        r = MetricsRegistry()
        r.counter_set("repro_x_total", 10.0)
        r.counter_set("repro_x_total", 17.0)
        assert r.value("repro_x_total") == 17.0

    def test_gauge_and_labels_sorted(self):
        r = MetricsRegistry()
        r.gauge("repro_g", 1.5, zeta="z", alpha="a")
        # labels render sorted regardless of kwargs order
        assert 'repro_g{alpha="a",zeta="z"}' in r.snapshot()
        assert r.value("repro_g", alpha="a", zeta="z") == 1.5

    def test_type_conflict_raises(self):
        r = MetricsRegistry()
        r.inc("repro_x_total")
        with pytest.raises(ValueError):
            r.gauge("repro_x_total", 1.0)

    def test_snapshot_sorted_and_includes_histograms(self):
        r = MetricsRegistry()
        r.gauge("b_gauge", 2.0)
        r.inc("a_total", 1.0)
        r.observe("h_seconds", 0.5)
        r.observe("h_seconds", 1.5)
        snap = r.snapshot()
        keys = list(snap)
        assert keys == sorted(keys)
        assert snap["h_seconds_count"] == 2.0
        assert snap["h_seconds_sum"] == 2.0

    def test_render_prometheus_format(self):
        r = MetricsRegistry()
        r.inc("repro_x_total", 4.0, kind="k")
        r.gauge("repro_g", 0.25)
        r.observe("repro_h_seconds", 0.003, rank="1")
        text = r.render_prometheus()
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{kind="k"} 4' in text
        assert "# TYPE repro_g gauge" in text
        assert "repro_g 0.25" in text
        assert "# TYPE repro_h_seconds histogram" in text
        assert 'repro_h_seconds_bucket{rank="1",le="+Inf"} 1' in text
        assert 'repro_h_seconds_sum{rank="1"} 0.003' in text
        assert 'repro_h_seconds_count{rank="1"} 1' in text
        assert text.endswith("\n")

    def test_empty_render(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestHistogram:
    def test_cumulative_counts(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        assert h.cumulative() == [
            ("1.0", 2),
            ("10.0", 3),
            ("+Inf", 4),
        ]
        assert h.n == 4
        assert h.total == pytest.approx(56.2)

    def test_boundary_value_lands_in_bucket(self):
        h = Histogram(buckets=(1.0,))
        h.observe(1.0)  # le is inclusive, Prometheus-style
        assert h.cumulative() == [("1.0", 1), ("+Inf", 1)]


class _Collector(NullObserver):
    def __init__(self):
        self.events = []
        self.closes = 0

    def on_event(self, event):
        self.events.append(event)

    def close(self, registry):
        self.closes += 1


class TestHub:
    def test_null_hub_disabled(self):
        assert NULL_HUB.enabled is False
        # emitting on a disabled hub is a no-op, not an error
        NULL_HUB.span_begin("phase", "x", 0.0)

    def test_sequence_numbers_monotone(self):
        col = _Collector()
        hub = ObserverHub([col])
        assert hub.enabled
        hub.span_begin("phase", "x", 0.0)
        hub.point("phase", "y", 0.5)
        hub.span_end("phase", "x", 1.0)
        assert [e.seq for e in col.events] == [0, 1, 2]
        assert [e.kind for e in col.events] == ["begin", "point", "end"]

    def test_close_is_idempotent_and_flushes_metrics(self):
        col = _Collector()
        hub = ObserverHub([col])
        hub.registry.inc("repro_x_total", 7.0)
        hub.close(t=2.0)
        hub.close(t=3.0)
        assert col.closes == 1
        metrics = [e for e in col.events if e.kind == "metric"]
        assert len(metrics) == 1
        assert metrics[0].name == "repro_x_total"
        assert metrics[0].attrs == {"value": 7.0}
        assert metrics[0].t == 2.0


class TestEvents:
    def test_to_json_is_key_sorted(self):
        ev = SpanEvent(
            seq=0, kind="begin", level="phase", name="x", t=0.25,
            step=1, rank=None, attrs={"b": 1, "a": 2}, wall=0.5,
        )
        line = ev.to_json()
        assert line.index('"attrs"') < line.index('"kind"')

    def test_canonical_line_strips_wall_only(self):
        ev = SpanEvent(
            seq=3, kind="end", level="phase", name="x", t=1.0,
            step=None, rank=None, attrs={}, wall=0.123,
        )
        other = SpanEvent(
            seq=3, kind="end", level="phase", name="x", t=1.0,
            step=None, rank=None, attrs={}, wall=9.9,
        )
        assert canonical_line(ev.to_json()) == canonical_line(
            other.to_json()
        )
        assert canonical_line(ev.to_json()) != ev.to_json()
