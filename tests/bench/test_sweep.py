"""Tests for the grid-sweep utility."""

import pytest

from repro.bench import grid_points, grid_sweep


def test_grid_points_product():
    pts = grid_points({"a": [1, 2], "b": ["x", "y", "z"]})
    assert len(pts) == 6
    assert pts[0] == {"a": 1, "b": "x"}
    assert pts[-1] == {"a": 2, "b": "z"}


def test_grid_points_last_axis_fastest():
    pts = grid_points({"a": [1, 2], "b": [10, 20]})
    assert [p["b"] for p in pts] == [10, 20, 10, 20]


def test_empty_grid_single_point():
    assert grid_points({}) == [{}]


def test_empty_axis_rejected():
    with pytest.raises(ValueError):
        grid_points({"a": []})


def test_non_sequence_rejected():
    with pytest.raises(TypeError):
        grid_points({"a": 5})


def test_sweep_merges_params_and_results():
    rows = grid_sweep(
        lambda a, b: {"sum": a + b}, {"a": [1, 2], "b": [10]}
    )
    assert rows == [
        {"a": 1, "b": 10, "sum": 11},
        {"a": 2, "b": 10, "sum": 12},
    ]


def test_sweep_error_raise():
    def boom(a):
        raise RuntimeError("nope")

    with pytest.raises(RuntimeError):
        grid_sweep(boom, {"a": [1]})


def test_sweep_error_skip():
    def sometimes(a):
        if a == 2:
            raise RuntimeError("nope")
        return {"ok": True}

    rows = grid_sweep(sometimes, {"a": [1, 2, 3]}, on_error="skip")
    assert [r["a"] for r in rows] == [1, 3]


def test_sweep_error_record():
    def boom(a):
        raise RuntimeError("nope")

    rows = grid_sweep(boom, {"a": [1]}, on_error="record")
    assert "RuntimeError" in rows[0]["error"]


def test_sweep_invalid_mode():
    with pytest.raises(ValueError):
        grid_sweep(lambda: {}, {}, on_error="explode")


def test_sweep_with_real_scenario():
    """End-to-end: sweep the engine over (nprocs, seed)."""
    from repro import AnytimeAnywhereCloseness, AnytimeConfig
    from repro.graph import barabasi_albert

    def run(nprocs, seed):
        g = barabasi_albert(40, 2, seed=seed)
        engine = AnytimeAnywhereCloseness(
            g, AnytimeConfig(nprocs=nprocs, collect_snapshots=False)
        )
        engine.setup()
        result = engine.run()
        return {"modeled": result.modeled_seconds, "steps": result.rc_steps}

    rows = grid_sweep(run, {"nprocs": [2, 4], "seed": [0, 1]})
    assert len(rows) == 4
    assert all(r["modeled"] > 0 for r in rows)
