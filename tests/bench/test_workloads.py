"""Tests for the experiment workload builders."""

import pytest

from repro.bench import (
    Workload,
    community_workload,
    incremental_stream,
    louvain_carved_workload,
    scale_free_workload,
    split_sizes,
)
from repro.errors import ConfigurationError
from repro.graph import louvain_communities, modularity


class TestSplitSizes:
    def test_even(self):
        assert split_sizes(12, 4) == [3, 3, 3, 3]

    def test_remainder_spread(self):
        assert split_sizes(10, 4) == [3, 3, 2, 2]

    def test_more_parts_than_total(self):
        assert split_sizes(2, 5) == [1, 1]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            split_sizes(5, 0)


def _validate(wl: Workload):
    """A workload's batches must apply cleanly and yield its final graph."""
    g = wl.base.copy()
    for _step, batch in wl.stream:
        batch.validate(g)
        batch.apply_to(g)
    assert g == wl.final


class TestScaleFreeWorkload:
    def test_sizes(self):
        wl = scale_free_workload(100, 20, seed=0)
        assert wl.base.num_vertices == 100
        assert wl.total_added == 20
        assert wl.final.num_vertices == 120

    def test_valid_and_consistent(self):
        _validate(scale_free_workload(80, 30, seed=1))

    def test_inject_step(self):
        wl = scale_free_workload(50, 10, seed=0, inject_step=7)
        assert wl.stream.steps() == [7]

    def test_batch_attaches_to_base(self):
        wl = scale_free_workload(60, 15, seed=2)
        batch = wl.single_batch()
        attach = sum(
            1
            for va in batch.vertex_additions
            for t, _w in va.edges
            if t < 60
        )
        assert attach > 0

    def test_deterministic(self):
        a = scale_free_workload(60, 15, seed=3)
        b = scale_free_workload(60, 15, seed=3)
        assert a.final == b.final


class TestCommunityWorkload:
    def test_valid_and_consistent(self):
        _validate(community_workload(80, 24, seed=0))

    def test_batch_has_community_structure(self):
        wl = community_workload(100, 40, n_communities=4, seed=1)
        newg = wl.single_batch().new_vertex_graph()
        comms = louvain_communities(newg, seed=0)
        assert modularity(newg, comms) > 0.3

    def test_every_new_vertex_attached(self):
        wl = community_workload(80, 16, seed=2, attach_per_vertex=2)
        batch = wl.single_batch()
        for va in batch.vertex_additions:
            attached = [t for t, _w in va.edges if t < 80]
            # attachments recorded on this vertex (intra edges may be on
            # the partner); every vertex got attach_per_vertex anchors
            assert len(attached) >= 2

    def test_kind_string(self):
        wl = community_workload(50, 10, seed=0)
        assert "community" in wl.kind


class TestLouvainCarvedWorkload:
    def test_valid_and_consistent(self):
        wl = louvain_carved_workload(150, 30, seed=0)
        _validate(wl)

    def test_realized_sizes_near_targets(self):
        wl = louvain_carved_workload(150, 30, seed=1)
        assert 1 <= wl.total_added <= 70
        assert wl.final.num_vertices == 180


class TestIncrementalStream:
    def test_schedule_shape(self):
        wl = incremental_stream(60, 6, 5, seed=0)
        assert wl.stream.steps() == [0, 1, 2, 3, 4]
        assert wl.total_added == 30

    def test_valid_and_consistent(self):
        _validate(incremental_stream(60, 8, 4, seed=1))

    def test_later_batches_may_attach_to_earlier_ones(self):
        wl = incremental_stream(40, 10, 4, seed=2, attach_per_vertex=2)
        found = False
        for step, batch in wl.stream:
            if step == 0:
                continue
            for va in batch.vertex_additions:
                if any(40 <= t < va.vertex for t, _w in va.edges):
                    found = True
        assert found

    def test_single_batch_raises_for_multi(self):
        wl = incremental_stream(40, 5, 3, seed=0)
        with pytest.raises(ConfigurationError):
            wl.single_batch()
