"""Smoke and shape tests for the figure scenarios (small scale)."""

import pytest

from repro.bench import (
    ScenarioScale,
    figure4,
    figure5,
    figure7,
    figure8,
    run_workload,
    community_workload,
)

SMALL = ScenarioScale.small()


@pytest.fixture(scope="module")
def fig4_rows():
    return figure4(SMALL)


@pytest.fixture(scope="module")
def fig5_rows():
    return figure5(SMALL)


def test_figure4_structure(fig4_rows):
    assert len(fig4_rows) == 2 * len(SMALL.inject_steps)
    strategies = {r["strategy"] for r in fig4_rows}
    assert strategies == {"anytime_roundrobin", "baseline_restart"}
    assert all(r["modeled_minutes"] > 0 for r in fig4_rows)


def test_figure4_baseline_grows_with_inject_step(fig4_rows):
    baseline = [
        r["modeled_minutes"]
        for r in fig4_rows
        if r["strategy"] == "baseline_restart"
    ]
    assert baseline[-1] >= baseline[0]


def test_figure5_structure(fig5_rows):
    sizes = {r["batch_size"] for r in fig5_rows}
    assert sizes == set(SMALL.batch_sizes)
    assert {r["strategy"] for r in fig5_rows} == {
        "repartition",
        "cutedge",
        "roundrobin",
    }


def test_figure7_cut_edge_ordering(fig5_rows):
    """Paper Fig. 7: Repartition-S <= CutEdge-PS <= RoundRobin-PS on new
    cut edges, at least for the largest batch."""
    rows = figure7(rows=fig5_rows)
    largest = max(r["batch_size"] for r in rows)
    by_strategy = {
        r["strategy"]: r["new_cut_edges"]
        for r in rows
        if r["batch_size"] == largest
    }
    assert by_strategy["repartition"] <= by_strategy["cutedge"]
    assert by_strategy["cutedge"] <= by_strategy["roundrobin"]


def test_figure8_baseline_dominates():
    rows = figure8(
        ScenarioScale.small(), strategies=("baseline", "roundrobin")
    )
    for per_step in {r["per_step"] for r in rows}:
        sub = {r["strategy"]: r["modeled_minutes"] for r in rows
               if r["per_step"] == per_step}
        assert sub["baseline"] > sub["roundrobin"]


def test_run_workload_verify_flag():
    wl = community_workload(60, 8, seed=0, inject_step=1)
    out = run_workload(wl, "roundrobin", SMALL, verify=True)
    assert out.max_error == pytest.approx(0.0, abs=1e-9)
    assert out.rc_steps >= 1
    assert out.new_cut_edges >= 0


def test_run_workload_baseline():
    wl = community_workload(60, 8, seed=1, inject_step=1)
    out = run_workload(wl, "baseline", SMALL, verify=True)
    assert out.restarts == 1
    assert out.max_error == pytest.approx(0.0, abs=1e-9)


def test_paper_scale_documented():
    paper = ScenarioScale.paper()
    assert paper.n_base == 50_000
    assert paper.nprocs == 16
    assert paper.fig4_batch == 512
    assert paper.per_step_sizes == (51, 187, 383, 561)
