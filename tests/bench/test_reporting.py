"""Tests for result-table formatting."""

from repro.bench import format_table, pivot, to_markdown

ROWS = [
    {"size": 10, "strategy": "rr", "minutes": 1.5},
    {"size": 10, "strategy": "ce", "minutes": 1.25},
    {"size": 20, "strategy": "rr", "minutes": 3.0},
]


def test_format_table_alignment():
    out = format_table(ROWS)
    lines = out.splitlines()
    assert lines[0].startswith("size")
    assert len(lines) == 5  # header + rule + 3 rows
    assert all(len(l) == len(lines[0]) for l in lines[1:2])


def test_format_table_column_selection():
    out = format_table(ROWS, ["strategy", "minutes"])
    assert "size" not in out
    assert "rr" in out


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_number_formatting():
    out = format_table([{"a": 1234567.0, "b": 0.00012, "c": 5.5}])
    assert "1,234,567" in out
    assert "0.0001" in out
    assert "5.50" in out


def test_to_markdown():
    md = to_markdown(ROWS, ["size", "strategy"])
    lines = md.splitlines()
    assert lines[0] == "| size | strategy |"
    assert lines[1] == "|---|---|"
    assert len(lines) == 5
    assert to_markdown([]) == "(no rows)"


def test_pivot_wide_shape():
    wide = pivot(ROWS, index="size", columns="strategy", values="minutes")
    assert wide == [
        {"size": 10, "rr": 1.5, "ce": 1.25},
        {"size": 20, "rr": 3.0},
    ]


def test_pivot_preserves_index_order():
    rows = [
        {"k": "b", "s": "x", "v": 1},
        {"k": "a", "s": "x", "v": 2},
    ]
    wide = pivot(rows, "k", "s", "v")
    assert [r["k"] for r in wide] == ["b", "a"]
