"""Error hierarchy and shared-type utilities."""

import pytest

from repro import ReproError
from repro.errors import (
    BalanceConstraintError,
    ChangeStreamError,
    CommunicationError,
    ConfigurationError,
    ConvergenceError,
    DuplicateVertex,
    EdgeNotFound,
    GraphError,
    InvalidPartition,
    InvalidWeight,
    PartitionError,
    RuntimeSimulationError,
    VertexNotFound,
    WorkerError,
)
from repro.types import as_vertex_list, check_ranks, normalize_edge


def test_everything_is_a_repro_error():
    for exc in (
        GraphError,
        VertexNotFound,
        EdgeNotFound,
        DuplicateVertex,
        InvalidWeight,
        PartitionError,
        InvalidPartition,
        BalanceConstraintError,
        RuntimeSimulationError,
        WorkerError,
        CommunicationError,
        ConvergenceError,
        ConfigurationError,
        ChangeStreamError,
    ):
        assert issubclass(exc, ReproError), exc


def test_lookup_errors_are_keyerrors():
    assert issubclass(VertexNotFound, KeyError)
    assert issubclass(EdgeNotFound, KeyError)


def test_value_errors_are_valueerrors():
    for exc in (DuplicateVertex, InvalidWeight, InvalidPartition,
                ConfigurationError, ChangeStreamError):
        assert issubclass(exc, ValueError)


def test_vertex_not_found_message():
    e = VertexNotFound(42)
    assert "42" in str(e)
    assert e.vertex == 42


def test_edge_not_found_message():
    e = EdgeNotFound(1, 2)
    assert "(1, 2)" in str(e)
    assert (e.u, e.v) == (1, 2)


def test_single_except_catches_library_failures():
    from repro.graph import Graph

    with pytest.raises(ReproError):
        Graph().remove_vertex(1)


def test_as_vertex_list():
    assert as_vertex_list([3, 1, 3, 2]) == [1, 2, 3]
    assert as_vertex_list([]) == []


def test_normalize_edge():
    assert normalize_edge(5, 2) == (2, 5)
    assert normalize_edge(2, 5) == (2, 5)


def test_check_ranks():
    check_ranks([0, 1, 2], 3)
    with pytest.raises(ValueError):
        check_ranks([3], 3)
    with pytest.raises(ValueError):
        check_ranks([-1], 3)
