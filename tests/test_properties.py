"""Property-based tests (hypothesis) for the core invariants.

These cover the guarantees the design leans on:

* the distributed pipeline equals exact closeness for arbitrary graphs,
  batches, injection steps, processor counts, and strategies,
* anytime monotonicity (DV entries are decreasing upper bounds),
* partitioner contracts (cover exactly, never lose vertices),
* graph mutation round-trips.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro import (
    AnytimeAnywhereCloseness,
    AnytimeConfig,
    ChangeStream,
    ResilienceConfig,
)
from repro.centrality import apsp_dijkstra, exact_closeness
from repro.graph import ChangeBatch, Graph, louvain_communities
from repro.graph.changes import EdgeDeletion, VertexAddition, VertexDeletion
from repro.partition import BFSGrowingPartitioner, MultilevelPartitioner

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def connected_graphs(draw, min_n=2, max_n=18):
    """A connected weighted graph: random tree + random extra edges."""
    n = draw(st.integers(min_n, max_n))
    g = Graph()
    g.add_vertex(0)
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        w = draw(st.integers(1, 9))
        g.add_vertex(v)
        g.add_edge(v, parent, float(w))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(draw(st.integers(1, 9))))
    return g


@st.composite
def graph_and_batch(draw):
    """A graph plus a valid vertex-addition batch against it."""
    g = draw(connected_graphs())
    n = g.num_vertices
    k = draw(st.integers(1, 5))
    new_ids = list(range(n, n + k))
    additions = []
    for i, v in enumerate(new_ids):
        # anchor to an existing vertex and possibly earlier new vertices
        targets = {draw(st.integers(0, n - 1))}
        if i and draw(st.booleans()):
            targets.add(new_ids[draw(st.integers(0, i - 1))])
        edges = tuple(
            (t, float(draw(st.integers(1, 9)))) for t in sorted(targets)
        )
        additions.append(VertexAddition(v, edges=edges))
    return g, ChangeBatch(vertex_additions=additions)


@settings(**SETTINGS)
@given(
    data=graph_and_batch(),
    nprocs=st.integers(1, 5),
    step=st.integers(0, 4),
    strategy=st.sampled_from(
        ["roundrobin", "cutedge", "leastloaded", "repartition"]
    ),
)
def test_vertex_addition_always_exact(data, nprocs, step, strategy):
    g, batch = data
    final = g.copy()
    batch.apply_to(final)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=nprocs, collect_snapshots=False)
    )
    engine.setup()
    result = engine.run(
        changes=ChangeStream({step: batch}), strategy=strategy
    )
    exact = exact_closeness(final)
    assert set(result.closeness) == set(exact)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


@settings(**SETTINGS)
@given(g=connected_graphs(), nprocs=st.integers(1, 5))
def test_static_always_exact(g, nprocs):
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=nprocs, collect_snapshots=False)
    )
    engine.setup()
    result = engine.run()
    exact = exact_closeness(g)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


@settings(**SETTINGS)
@given(g=connected_graphs(min_n=4), data=st.data())
def test_deletions_always_exact(g, data):
    edges = g.edge_list()
    victim_edge = data.draw(st.sampled_from(edges))
    victim_vertex = data.draw(st.integers(0, g.num_vertices - 1))
    batch = ChangeBatch(edge_deletions=[EdgeDeletion(victim_edge[0], victim_edge[1])])
    final = g.copy()
    final.remove_edge(victim_edge[0], victim_edge[1])
    stream = ChangeStream({1: batch})
    if victim_vertex not in (victim_edge[0], victim_edge[1]):
        stream.schedule(
            3, ChangeBatch(vertex_deletions=[VertexDeletion(victim_vertex)])
        )
        final.remove_vertex(victim_vertex)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=3, collect_snapshots=False)
    )
    engine.setup()
    result = engine.run(changes=stream, strategy="roundrobin")
    exact = exact_closeness(final)
    assert set(result.closeness) == set(exact)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


@settings(**SETTINGS)
@given(g=connected_graphs(min_n=4), nprocs=st.integers(2, 4))
def test_dv_entries_are_decreasing_upper_bounds(g, nprocs):
    """Anytime invariant: at every RC step, every DV entry over-approximates
    the true distance and never increases."""
    dist, ids = apsp_dijkstra(g)
    col = {v: i for i, v in enumerate(ids)}
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=nprocs))
    engine.setup()
    cluster = engine.cluster
    prev = {}

    def check(_step):
        for w in cluster.workers:
            for v in w.owned:
                row = w.dv[w.row_of[v]]
                for t in ids:
                    val = row[cluster.index.column(t)]
                    assert val >= dist[col[v], col[t]] - 1e-9
                    key = (v, t)
                    if key in prev:
                        assert val <= prev[key] + 1e-12
                    prev[key] = val

    from repro.core.recombination import run_recombination

    run_recombination(cluster, max_steps=50, on_step=check)


@settings(**SETTINGS)
@given(g=connected_graphs(min_n=5), nparts=st.integers(1, 5))
def test_partitioners_cover_exactly(g, nparts):
    for part in (MultilevelPartitioner(seed=1), BFSGrowingPartitioner(seed=1)):
        p = part.partition(g, nparts)
        p.validate_against(g)
        assert sum(p.block_sizes()) == g.num_vertices


@settings(**SETTINGS)
@given(g=connected_graphs(min_n=5))
def test_louvain_is_a_partition(g):
    comms = louvain_communities(g, seed=0)
    flat = sorted(v for c in comms for v in c)
    assert flat == g.vertex_list()


@settings(**SETTINGS)
@given(
    g=connected_graphs(min_n=4),
    nprocs=st.integers(2, 4),
    victim=st.integers(0, 3),
)
def test_crash_recovery_always_exact(g, nprocs, victim):
    """Fault tolerance: crash any worker at any point, recovery + RC must
    land back on the exact answer."""
    from repro.runtime.faults import crash_and_recover

    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=nprocs, collect_snapshots=False)
    )
    engine.setup()
    engine.run()
    crash_and_recover(engine.cluster, victim % nprocs)
    result = engine.run()
    exact = exact_closeness(g)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


@settings(max_examples=15, deadline=None,
          suppress_health_check=SETTINGS["suppress_health_check"])
@given(
    data=graph_and_batch(),
    crash_step=st.integers(0, 5),
    batch_step=st.integers(0, 3),
    victim=st.integers(0, 2),
    policy=st.sampled_from(("warm", "checkpoint", "redistribute")),
)
def test_recovery_policies_exact_and_monotone_on_survivors(
    data, crash_step, batch_step, victim, policy
):
    """Fault-tolerance closure property: for a random graph, a random
    vertex-addition batch, and a crash at a random RC step (before or
    after the batch lands), every recovery policy still converges to the
    exact answer — and the anytime guarantee survives on the workers that
    did not crash: their DV entries never increase."""
    from repro.core.recombination import run_recombination
    from repro.runtime.chaos import FaultInjector, FaultPlan
    from repro.runtime.supervisor import Supervisor

    g, batch = data
    nprocs = 3
    final = g.copy()
    batch.apply_to(final)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=nprocs, collect_snapshots=False)
    )
    engine.setup()
    cluster = engine.cluster
    injector = FaultInjector(
        FaultPlan.single_crash(crash_step, victim, loss_prob=0.1), nprocs
    )
    supervisor = Supervisor(
        cluster, injector, recovery=policy, checkpoint_interval=2
    )
    cluster.attach_chaos(injector)
    prev: dict = {}

    def check(_step):
        # survivors only: the crashed rank's rows are legitimately reset
        # (and under redistribute its vertices restart from scratch on a
        # new rank, which opens a fresh (rank, v, t) key)
        for w in cluster.workers:
            if w.rank == victim:
                continue
            for v in w.owned:
                row = w.dv[w.row_of[v]]
                for t in cluster.index.ids:
                    val = row[cluster.index.column(t)]
                    key = (w.rank, v, t)
                    if key in prev:
                        assert val <= prev[key] + 1e-12
                    prev[key] = val

    try:
        run_recombination(
            cluster,
            strategy=engine.resolve_strategy("roundrobin"),
            changes=ChangeStream({batch_step: batch}),
            supervisor=supervisor,
            on_step=check,
            max_steps=200,
        )
    finally:
        cluster.detach_chaos()
    assert injector.stats.crashes == 1
    exact = exact_closeness(final)
    got = engine.current_closeness()
    assert set(got) == set(exact)
    for v, c in exact.items():
        assert got[v] == pytest.approx(c, abs=1e-9)


@settings(**SETTINGS)
@given(data=graph_and_batch(), threshold=st.floats(0.0, 0.5))
def test_rebalanced_strategy_always_exact(data, threshold):
    from repro.core.strategies import (
        RebalancedStrategy,
        RoundRobinPS,
        VertexAdditionStrategy,
    )
    from repro.runtime import check_cluster_invariants

    g, batch = data
    final = g.copy()
    batch.apply_to(final)
    strategy = RebalancedStrategy(
        VertexAdditionStrategy(RoundRobinPS()), threshold=threshold
    )
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=3, collect_snapshots=False)
    )
    engine.setup()
    result = engine.run(changes=ChangeStream({1: batch}), strategy=strategy)
    check_cluster_invariants(engine.cluster)
    exact = exact_closeness(final)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


@settings(**SETTINGS)
@given(g=connected_graphs(min_n=4), budget=st.floats(0.0, 1e-3))
def test_budget_interruption_preserves_bounds_and_resumes(g, budget):
    dist, ids = apsp_dijkstra(g)
    col = {v: i for i, v in enumerate(ids)}
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=3, collect_snapshots=False)
    )
    engine.setup()
    engine.run(budget_modeled_seconds=budget)
    for w in engine.cluster.workers:
        for v in w.owned:
            row = w.dv[w.row_of[v]]
            for t in ids:
                assert row[engine.cluster.index.column(t)] >= (
                    dist[col[v], col[t]] - 1e-9
                )
    final = engine.run()
    assert final.converged
    exact = exact_closeness(g)
    for v, c in exact.items():
        assert final.closeness[v] == pytest.approx(c, abs=1e-9)


@settings(**SETTINGS)
@given(g=connected_graphs(min_n=3), data=st.data())
def test_graph_edge_roundtrip(g, data):
    u, v, w = data.draw(st.sampled_from(g.edge_list()))
    m, tw = g.num_edges, g.total_weight
    g.remove_edge(u, v)
    g.add_edge(u, v, w)
    assert g.num_edges == m
    assert g.total_weight == pytest.approx(tw)
    assert g.weight(u, v) == w


@settings(**SETTINGS)
@given(g=connected_graphs(min_n=3), data=st.data())
def test_vertex_removal_removes_all_traces(g, data):
    victim = data.draw(st.integers(0, g.num_vertices - 1))
    g.remove_vertex(victim)
    assert victim not in g
    for v in g.vertices():
        assert victim not in set(g.neighbors(v))


# ----------------------------------------------------------------------
# self-healing: combined fault plans x escalation ladder
# ----------------------------------------------------------------------
def _chaos_run(g, plan, policy):
    """One escalate-ladder run under ``plan``; returns the RunResult and
    the canonical fault-event trace."""
    import repro

    cfg = AnytimeConfig(
        nprocs=3,
        collect_snapshots=False,
        resilience=ResilienceConfig(
            recovery="escalate", checkpoint_interval=2
        ),
        health=policy,
    )
    result = repro.closeness(
        g, config=cfg,
        resilience=dataclasses.replace(cfg.resilience, fault_plan=plan),
    )
    return result, tuple(result.fault_events)


def _path4() -> Graph:
    """The 4-vertex path 0-1-2-3 (the pinned regression's graph)."""
    g = Graph()
    for v in range(4):
        g.add_vertex(v)
    for u, v in ((0, 1), (1, 2), (2, 3)):
        g.add_edge(u, v, 1.0)
    return g


@settings(max_examples=15, deadline=None,
          suppress_health_check=SETTINGS["suppress_health_check"])
@given(
    g=connected_graphs(min_n=4, max_n=12),
    seed=st.integers(0, 2**20),
    crashes=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 2)),
        max_size=3, unique=True,
    ),
    loss=st.sampled_from((0.0, 0.1, 0.3)),
    dup=st.sampled_from((0.0, 0.1)),
    straggler=st.sampled_from((None, (1, 4.0), (2, 16.0))),
    crash_budget=st.integers(1, 3),
)
# regression (ROADMAP item 6): rank 0's second crash exhausts the budget
# and abandons it mid-step; rank 1's same-step warm recovery then audits
# the cluster — the abandoned block must still be structurally sound
# (own-diagonal zeros, subscription records) for the run to degrade
# gracefully instead of raising
@example(g=_path4(), seed=0, crashes=[(0, 0), (1, 0), (1, 1)],
         loss=0.0, dup=0.0, straggler=None, crash_budget=1)
def test_combined_faults_complete_or_degrade_gracefully(
    g, seed, crashes, loss, dup, straggler, crash_budget
):
    """Self-healing closure property: any combination of crash x loss x
    duplication x straggler faults, pushed through the escalation ladder,
    either converges to the exact answer or degrades gracefully — never
    raises — and identical (plan, seed, config) runs are byte-identical
    in both fault trace and closeness."""
    from repro import HealthPolicy
    from repro.runtime.chaos import FaultPlan

    plan = FaultPlan(
        seed=seed,
        crashes=tuple(crashes),
        loss_prob=loss,
        dup_prob=dup,
        stragglers=(straggler,) if straggler else (),
        max_retries=6,
    )
    policy = HealthPolicy(crash_budget=crash_budget)
    result, trace = _chaos_run(g, plan, policy)
    if result.degraded:
        assert result.degraded_reason in (
            "crash-budget", "dead-fraction", "retry-budget"
        )
        assert not result.converged
        assert result.quality  # quantified quality statement present
        assert 0.0 <= result.quality["finite_fraction"] <= 1.0
        assert any("kind=degraded" in line for line in trace)
    else:
        assert result.converged
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)
    # determinism: same plan + seed + config => byte-identical outcome
    result2, trace2 = _chaos_run(g, plan, policy)
    assert trace2 == trace
    assert result2.closeness == result.closeness
    assert result2.degraded == result.degraded
    assert result2.modeled_seconds == result.modeled_seconds


def test_combined_faults_process_backend_matches_serial():
    """One deterministic mixed-fault escalate run must be bitwise
    identical across the serial and process backends."""
    import repro
    from repro import HealthPolicy
    from repro.graph import barabasi_albert
    from repro.runtime.chaos import FaultPlan

    g = barabasi_albert(60, 2, seed=5)
    plan = FaultPlan(
        seed=11,
        crashes=((1, 0), (3, 1)),
        loss_prob=0.15,
        dup_prob=0.1,
        stragglers=((2, 6.0),),
        max_retries=10,
    )
    results = {}
    for backend in ("serial", "process"):
        cfg = AnytimeConfig(
            nprocs=3,
            collect_snapshots=False,
            resilience=ResilienceConfig(
                recovery="escalate", checkpoint_interval=2
            ),
            health=HealthPolicy(),
            backend=backend,
        )
        results[backend] = repro.closeness(
            g, config=cfg,
            resilience=dataclasses.replace(
                cfg.resilience, fault_plan=plan
            ),
        )
    s, p = results["serial"], results["process"]
    assert p.closeness == s.closeness
    assert p.fault_events == s.fault_events
    assert p.modeled_seconds == s.modeled_seconds
    assert p.degraded == s.degraded
    assert p.speculations == s.speculations
