"""Tests for the whole-program layer of repro-lint.

Covers the call-graph builder on the repo's tricky shapes (``self``
methods, strategy-registry indirection, backend dispatch through an
abstract base), the seed-lineage dataflow (RPL008), interprocedural
charge coverage (RPL009), shared-memory phase discipline (RPL010), the
multi-line pragma-extent fix, and the SARIF/baseline/cache plumbing.

Fixture projects are written under ``tmp_path/src/repro/...`` so the
default path scoping (``repro/`` target, ``repro/runtime/`` wire
packages) applies exactly as it does for the real tree.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path
from typing import Dict, List, Optional

from repro_lint import LintConfig, lint_paths
from repro_lint.callgraph import ProjectContext
from repro_lint.cli import main as lint_main
from repro_lint.core import Finding, collect_suppressions
from repro_lint.dataflow import lineage_for
from repro_lint.summaries import effects_for


def write_project(
    tmp_path: Path, files: Dict[str, str]
) -> List[Path]:
    """Write fixture files (with package ``__init__.py``s) and return
    their paths in a stable order."""
    out: List[Path] = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        out.append(path)
        # package markers so absolute imports resolve
        parent = path.parent
        while parent != tmp_path and parent.name != "src":
            marker = parent / "__init__.py"
            if not marker.exists():
                marker.write_text("", encoding="utf-8")
            parent = parent.parent
    return sorted(set(out) | set(tmp_path.rglob("__init__.py")))


def lint_project(
    tmp_path: Path,
    files: Dict[str, str],
    *,
    select: Optional[List[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    paths = write_project(tmp_path, files)
    return lint_paths(paths, config or LintConfig(), select=select)


def build_project(
    tmp_path: Path,
    files: Dict[str, str],
    config: Optional[LintConfig] = None,
) -> ProjectContext:
    paths = write_project(tmp_path, files)
    parsed = []
    for p in paths:
        source = p.read_text(encoding="utf-8")
        import ast

        parsed.append((p, source, ast.parse(source)))
    return ProjectContext.build(parsed, config or LintConfig())


def codes(findings: List[Finding]) -> List[str]:
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# call-graph builder
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_self_method_resolution(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "src/repro/runtime/w.py": """
                    class Worker:
                        def outer(self):
                            self.inner()
                        def inner(self):
                            pass
                """
            },
        )
        sites = project.call_sites["repro.runtime.w.Worker.outer"]
        assert sites[0].receiver == "self"
        assert sites[0].targets == ("repro.runtime.w.Worker.inner",)

    def test_self_method_through_base_class(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "src/repro/runtime/w.py": """
                    class Base:
                        def helper(self):
                            pass
                    class Child(Base):
                        def run(self):
                            self.helper()
                """
            },
        )
        sites = project.call_sites["repro.runtime.w.Child.run"]
        assert sites[0].targets == ("repro.runtime.w.Base.helper",)

    def test_backend_dispatch_override_family(self, tmp_path: Path) -> None:
        """An abstract-base call fans out to every subclass override —
        the runtime/backends/base.py shape."""
        project = build_project(
            tmp_path,
            {
                "src/repro/runtime/backends/base.py": """
                    class ExecutionBackend:
                        def run_ia(self, tasks):
                            raise NotImplementedError
                        def drive(self, tasks):
                            return self.run_ia(tasks)
                """,
                "src/repro/runtime/backends/serial.py": """
                    from .base import ExecutionBackend
                    class SerialBackend(ExecutionBackend):
                        def run_ia(self, tasks):
                            return [t() for t in tasks]
                """,
                "src/repro/runtime/backends/process.py": """
                    from .base import ExecutionBackend
                    class ProcessBackend(ExecutionBackend):
                        def run_ia(self, tasks):
                            return list(tasks)
                """,
            },
        )
        sites = project.call_sites[
            "repro.runtime.backends.base.ExecutionBackend.drive"
        ]
        assert set(sites[0].targets) == {
            "repro.runtime.backends.base.ExecutionBackend.run_ia",
            "repro.runtime.backends.serial.SerialBackend.run_ia",
            "repro.runtime.backends.process.ProcessBackend.run_ia",
        }

    def test_strategy_registry_indirection(self, tmp_path: Path) -> None:
        """make_strategy(name) reaches every @register-ed factory."""
        project = build_project(
            tmp_path,
            {
                "src/repro/core/strategies/registry.py": """
                    STRATEGIES = {}
                    def register(name):
                        def deco(fn):
                            STRATEGIES[name] = fn
                            return fn
                        return deco
                    def make_strategy(name, config):
                        return STRATEGIES[name](config)
                """,
                "src/repro/core/strategies/ldg.py": """
                    from .registry import register
                    @register("ldg")
                    def make_ldg(config):
                        return object()
                """,
                "src/repro/core/strategies/adaptive.py": """
                    from .registry import register
                    @register("adaptive")
                    def make_adaptive(config):
                        return object()
                """,
                "src/repro/core/engine.py": """
                    from .strategies.registry import make_strategy
                    def build(config):
                        return make_strategy("ldg", config)
                """,
            },
        )
        sites = project.call_sites["repro.core.engine.build"]
        targets = set(sites[0].targets)
        assert "repro.core.strategies.ldg.make_ldg" in targets
        assert "repro.core.strategies.adaptive.make_adaptive" in targets
        # the factory itself is also a target (direct resolution)
        assert (
            "repro.core.strategies.registry.make_strategy" in targets
        )

    def test_relative_import_resolution(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "src/repro/model/cost.py": """
                    def scan_time(ops):
                        return ops * 1e-9
                """,
                "src/repro/runtime/cluster.py": """
                    from ..model.cost import scan_time
                    def charge(ops):
                        return scan_time(ops)
                """,
            },
        )
        sites = project.call_sites["repro.runtime.cluster.charge"]
        assert sites[0].targets == ("repro.model.cost.scan_time",)

    def test_super_resolves_to_base_not_cha(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "src/repro/errors.py": """
                    class Base:
                        def __init__(self, seed):
                            self.seed = seed
                    class Unrelated:
                        def __init__(self, seed):
                            self.seed = seed
                    class Child(Base):
                        def __init__(self):
                            super().__init__(0)
                """
            },
        )
        sites = project.call_sites["repro.errors.Child.__init__"]
        init_sites = [s for s in sites if s.attr == "__init__"]
        assert init_sites[0].receiver == "super"
        assert init_sites[0].targets == ("repro.errors.Base.__init__",)

    def test_dunder_attribute_calls_never_fan_out(
        self, tmp_path: Path
    ) -> None:
        project = build_project(
            tmp_path,
            {
                "src/repro/a.py": """
                    class Holder:
                        def __init__(self, seed):
                            self.seed = seed
                    def poke(obj):
                        obj.__init__(3)
                """
            },
        )
        sites = project.call_sites["repro.a.poke"]
        assert sites[0].targets == ()

    def test_module_level_calls_are_sites(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "src/repro/boot.py": """
                    def setup():
                        pass
                    setup()
                """
            },
        )
        sites = project.call_sites["repro.boot.<module>"]
        assert sites[0].targets == ("repro.boot.setup",)

    def test_constructor_edge_to_init(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "src/repro/p.py": """
                    class Partitioner:
                        def __init__(self, seed):
                            self.seed = seed
                    def build():
                        return Partitioner(7)
                """
            },
        )
        sites = project.call_sites["repro.p.build"]
        assert sites[0].targets == ("repro.p.Partitioner.__init__",)


# ----------------------------------------------------------------------
# pragma statement extents (multi-line suppression bugfix)
# ----------------------------------------------------------------------
class TestPragmaExtent:
    def test_decorated_def_pragma_on_decorator_line(self) -> None:
        source = (
            "@deco  # repro-lint: disable=RPL003\n"
            "def f(\n"
            "    x,\n"
            "):\n"
            "    pass\n"
        )
        sup = collect_suppressions(source)
        # decorator through signature (lines 1-4), body excluded
        assert sup.get(2) == {"RPL003"}
        assert sup.get(4) == {"RPL003"}
        assert 5 not in sup

    def test_multiline_call_pragma_on_first_line(self) -> None:
        source = (
            "value = compute(  # repro-lint: disable=RPL001\n"
            "    1,\n"
            "    2,\n"
            ")\n"
        )
        sup = collect_suppressions(source)
        for line in (1, 2, 3, 4):
            assert sup.get(line) == {"RPL001"}

    def test_multiline_call_pragma_on_last_line(self) -> None:
        source = (
            "value = compute(\n"
            "    1,\n"
            ")  # repro-lint: disable=RPL004\n"
        )
        sup = collect_suppressions(source)
        assert sup.get(1) == {"RPL004"}

    def test_standalone_pragma_covers_following_statement(self) -> None:
        source = (
            "# repro-lint: disable=RPL001\n"
            "value = compute(\n"
            "    1,\n"
            ")\n"
        )
        sup = collect_suppressions(source)
        for line in (2, 3, 4):
            assert sup.get(line) == {"RPL001"}

    def test_def_pragma_does_not_silence_body(self) -> None:
        source = (
            "def f():  # repro-lint: disable=all\n"
            "    risky()\n"
        )
        sup = collect_suppressions(source)
        assert sup.get(1) == {"ALL"}
        assert 2 not in sup

    def test_single_line_behaviour_unchanged(self) -> None:
        sup = collect_suppressions("x = 1  # repro-lint: disable=RPL001\n")
        assert sup == {1: {"RPL001"}}

    def test_multiline_statement_suppression_end_to_end(
        self, tmp_path: Path
    ) -> None:
        """A finding on line 1 of a three-line call is suppressed by a
        pragma on the closing paren — the original bug."""
        files = {
            "src/repro/runtime/x.py": """
                import random
                v = random.randint(
                    0,
                    3,
                )  # repro-lint: disable=RPL001
            """
        }
        assert lint_project(tmp_path, files, select=["RPL001"]) == []


# ----------------------------------------------------------------------
# RPL008 seed lineage
# ----------------------------------------------------------------------
class TestSeedLineage:
    SELECT = ["RPL008"]

    def test_constant_seed_flagged(self, tmp_path: Path) -> None:
        files = {
            "src/repro/r.py": """
                import numpy as np
                def build():
                    return np.random.default_rng(42)
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL008"]

    def test_config_seed_clean(self, tmp_path: Path) -> None:
        files = {
            "src/repro/r.py": """
                import numpy as np
                def build(config):
                    return np.random.default_rng(config.seed)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_derived_arithmetic_clean(self, tmp_path: Path) -> None:
        files = {
            "src/repro/r.py": """
                import numpy as np
                def build(self):
                    return np.random.default_rng(self.seed + 1)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_seed_list_mixing_clean(self, tmp_path: Path) -> None:
        files = {
            "src/repro/r.py": """
                import numpy as np
                def stream(seed, tag):
                    return np.random.default_rng([seed, tag])
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_seed_param_suffix_clean(self, tmp_path: Path) -> None:
        files = {
            "src/repro/r.py": """
                import numpy as np
                def chaos(chaos_seed):
                    return np.random.default_rng(chaos_seed)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_unrelated_value_flagged(self, tmp_path: Path) -> None:
        files = {
            "src/repro/r.py": """
                import numpy as np
                import time
                def build():
                    return np.random.default_rng(int(time.time()))
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL008"]

    def test_seed_kwarg_constant_flagged(self, tmp_path: Path) -> None:
        """Dataclass constructors have no visible __init__; the seed=
        keyword check still catches them."""
        files = {
            "src/repro/s.py": """
                from dataclasses import dataclass
                @dataclass
                class Partitioner:
                    seed: int = 0
                def fallback():
                    return Partitioner(seed=1)
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL008"]

    def test_seed_kwarg_derived_clean(self, tmp_path: Path) -> None:
        files = {
            "src/repro/s.py": """
                from dataclasses import dataclass
                @dataclass
                class Partitioner:
                    seed: int = 0
                def build(config):
                    return Partitioner(seed=config.seed + 1)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_positional_seed_to_project_function_flagged(
        self, tmp_path: Path
    ) -> None:
        files = {
            "src/repro/f.py": """
                import numpy as np
                def make_rng(seed):
                    return np.random.default_rng(seed)
                def build():
                    return make_rng(1234)
            """
        }
        found = lint_project(tmp_path, files, select=self.SELECT)
        assert codes(found) == ["RPL008"]
        assert "make_rng" in found[0].message

    def test_derived_through_helper_fixpoint(self, tmp_path: Path) -> None:
        """A helper whose returns are derived propagates lineage to its
        callers — requires the cross-function fixpoint."""
        files = {
            "src/repro/f.py": """
                import numpy as np
                def mix(seed):
                    return seed * 2 + 1
                def build(config):
                    return np.random.default_rng(mix(config.seed))
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_generator_over_bitgen_clean(self, tmp_path: Path) -> None:
        files = {
            "src/repro/f.py": """
                from numpy.random import Generator, PCG64
                def build(seed):
                    return Generator(PCG64(seed))
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_rng_or_default_fallback_flagged(self, tmp_path: Path) -> None:
        """``rng or default_rng(0)``: the fallback branch severs
        lineage — the refine_level shape."""
        files = {
            "src/repro/f.py": """
                import numpy as np
                def refine(rng=None):
                    rng = rng or np.random.default_rng(0)
                    return rng
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL008"]

    def test_none_seed_not_ours(self, tmp_path: Path) -> None:
        """An explicit None seed is RPL001's finding, not RPL008's."""
        files = {
            "src/repro/f.py": """
                import numpy as np
                def build():
                    return np.random.default_rng(None)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_documented_stream_escape_hatch(self, tmp_path: Path) -> None:
        config = LintConfig(documented_seed_streams=("worker_stream",))
        files = {
            "src/repro/f.py": """
                import numpy as np
                def build(rank):
                    return np.random.default_rng(worker_stream(rank))
            """
        }
        assert (
            lint_project(tmp_path, files, select=self.SELECT, config=config)
            == []
        )

    def test_pragma_suppresses_project_finding(self, tmp_path: Path) -> None:
        files = {
            "src/repro/f.py": """
                import numpy as np
                def build():
                    return np.random.default_rng(42)  # repro-lint: disable=RPL008
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_out_of_target_ignored(self, tmp_path: Path) -> None:
        files = {
            "scripts/tool.py": """
                import numpy as np
                def build():
                    return np.random.default_rng(42)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []


# ----------------------------------------------------------------------
# RPL009 charge coverage
# ----------------------------------------------------------------------
class TestChargeCoverage:
    SELECT = ["RPL009"]

    def test_uncovered_send_flagged(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/c.py": """
                def exchange(workers, rows):
                    workers[0].receive_rows(rows)
            """
        }
        found = lint_project(tmp_path, files, select=self.SELECT)
        assert codes(found) == ["RPL009"]
        assert "receive_rows" in found[0].message

    def test_same_body_charge_clean(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/c.py": """
                def exchange(self, workers, rows):
                    self.charge_comm_words([(0, 1, len(rows))])
                    workers[0].receive_rows(rows)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_charge_in_caller_covers_helper(self, tmp_path: Path) -> None:
        """The interprocedural case RPL004 cannot see: charge lives in
        the caller, the payload copy in a helper."""
        files = {
            "src/repro/runtime/c.py": """
                def exchange(self, workers, rows):
                    self.charge_comm_words([(0, 1, len(rows))])
                    _deliver(workers, rows)
                def _deliver(workers, rows):
                    workers[0].receive_rows(rows)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_charge_in_callee_covers_send(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/c.py": """
                def exchange(self, workers, rows):
                    _charge_it(self, rows)
                    workers[0].receive_rows(rows)
                def _charge_it(self, rows):
                    self.charge_comm_words([(0, 1, len(rows))])
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_uncharged_caller_chain_flagged(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/c.py": """
                def outer(workers, rows):
                    _deliver(workers, rows)
                def _deliver(workers, rows):
                    workers[0].receive_rows(rows)
            """
        }
        found = lint_project(tmp_path, files, select=self.SELECT)
        assert codes(found) == ["RPL009"]
        assert "_deliver" in found[0].message

    def test_one_uncharged_caller_flagged(self, tmp_path: Path) -> None:
        """Coverage needs *every* caller to charge, not just one."""
        files = {
            "src/repro/runtime/c.py": """
                def good(self, workers, rows):
                    self.charge_comm_words([(0, 1, len(rows))])
                    _deliver(workers, rows)
                def bad(workers, rows):
                    _deliver(workers, rows)
                def _deliver(workers, rows):
                    workers[0].receive_rows(rows)
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL009"]

    def test_transitive_caller_charge_covers(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/c.py": """
                def entry(self, workers, rows):
                    self.charge_comm_words([(0, 1, len(rows))])
                    middle(workers, rows)
                def middle(workers, rows):
                    _deliver(workers, rows)
                def _deliver(workers, rows):
                    workers[0].receive_rows(rows)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_self_receive_not_a_send(self, tmp_path: Path) -> None:
        """receive_packet delegating to self.receive_rows is a local
        hand-off, not a wire copy."""
        files = {
            "src/repro/runtime/c.py": """
                class Worker:
                    def receive_packet(self, packet):
                        self.receive_rows(packet.rows)
                    def receive_rows(self, rows):
                        self.ext = rows
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_recursion_with_charging_entry_clean(
        self, tmp_path: Path
    ) -> None:
        """A retry cycle below a charging entry point stays covered —
        the greatest fixpoint must not demote cycles reachable only
        through charging callers."""
        files = {
            "src/repro/runtime/c.py": """
                def entry(self, workers, rows):
                    self.charge_comm_words([(0, 1, len(rows))])
                    _try_send(workers, rows, 3)
                def _try_send(workers, rows, budget):
                    workers[0].receive_rows(rows)
                    if budget:
                        _retry(workers, rows, budget - 1)
                def _retry(workers, rows, budget):
                    _try_send(workers, rows, budget)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_outside_wire_package_ignored(self, tmp_path: Path) -> None:
        files = {
            "src/repro/model/c.py": """
                def exchange(workers, rows):
                    workers[0].receive_rows(rows)
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []


# ----------------------------------------------------------------------
# RPL010 phase discipline
# ----------------------------------------------------------------------
def phase_config(**extra: object) -> LintConfig:
    registry = extra.pop("phase_registry", {})
    return LintConfig(phase_registry=dict(registry), **extra)  # type: ignore[arg-type]


class TestPhaseDiscipline:
    SELECT = ["RPL010"]

    def test_unregistered_subscript_store_flagged(
        self, tmp_path: Path
    ) -> None:
        files = {
            "src/repro/runtime/w.py": """
                class Worker:
                    def sneak(self, rows):
                        self.dv[0, :] = rows
            """
        }
        found = lint_project(tmp_path, files, select=self.SELECT)
        assert codes(found) == ["RPL010"]
        assert "'dv'" in found[0].message

    def test_unregistered_rebind_flagged(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/w.py": """
                import numpy as np
                class Worker:
                    def reset(self, n):
                        self.local_apsp = np.zeros((n, n))
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL010"]

    def test_alias_mutation_flagged(self, tmp_path: Path) -> None:
        """The add_local_edge idiom: mutate through a local alias."""
        files = {
            "src/repro/runtime/w.py": """
                class Worker:
                    def relax(self, cand, improved):
                        a = self.local_apsp
                        a[improved] = cand[improved]
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL010"]

    def test_inplace_numpy_call_flagged(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/w.py": """
                import numpy as np
                class Worker:
                    def zero_diag(self):
                        np.fill_diagonal(self.local_apsp, 0.0)
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL010"]

    def test_out_kwarg_flagged(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/w.py": """
                import numpy as np
                class Worker:
                    def fold(self, saved, n):
                        np.minimum(self.dv[:, :n], saved, out=self.dv[:, :n])
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL010"]

    def test_registered_phase_clean(self, tmp_path: Path) -> None:
        config = phase_config(
            phase_registry={"Worker.apply_rows": "coordinator"}
        )
        files = {
            "src/repro/runtime/w.py": """
                class Worker:
                    def apply_rows(self, rows):
                        self.dv[0, :] = rows
            """
        }
        assert (
            lint_project(tmp_path, files, select=self.SELECT, config=config)
            == []
        )

    def test_interprocedural_mutation_via_kernel_flagged(
        self, tmp_path: Path
    ) -> None:
        """Passing self.dv into a param-mutating callee is a mutation of
        the shared array at the call site."""
        files = {
            "src/repro/runtime/w.py": """
                def fold(dv, rows):
                    dv[0, :] = rows
                class Worker:
                    def run(self, rows):
                        fold(self.dv, rows)
            """
        }
        found = lint_project(tmp_path, files, select=self.SELECT)
        assert codes(found) == ["RPL010"]
        assert "via fold" in found[0].message
        assert "Worker.run" in found[0].message

    def test_interprocedural_two_hops(self, tmp_path: Path) -> None:
        """Param mutation propagates through a wrapper (fixpoint)."""
        files = {
            "src/repro/runtime/w.py": """
                def inner(dv, rows):
                    dv[0, :] = rows
                def outer(dv, rows):
                    inner(dv, rows)
                class Worker:
                    def run(self, rows):
                        outer(self.dv, rows)
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL010"]

    def test_kernel_mutating_params_clean(self, tmp_path: Path) -> None:
        config = phase_config(phase_registry={"w.fold": "kernel"})
        files = {
            "src/repro/runtime/w.py": """
                def fold(dv, rows):
                    dv[0, :] = rows
            """
        }
        assert (
            lint_project(tmp_path, files, select=self.SELECT, config=config)
            == []
        )

    def test_kernel_touching_self_flagged(self, tmp_path: Path) -> None:
        """Location transparency: a kernel-phase function must not reach
        through self for shared arrays."""
        config = phase_config(
            phase_registry={"Worker.kernel_step": "kernel"}
        )
        files = {
            "src/repro/runtime/w.py": """
                class Worker:
                    def kernel_step(self, rows):
                        self.dv[0, :] = rows
            """
        }
        found = lint_project(
            tmp_path, files, select=self.SELECT, config=config
        )
        assert codes(found) == ["RPL010"]
        assert "location transparency" in found[0].message

    def test_kernel_calling_coordinator_mutator_flagged(
        self, tmp_path: Path
    ) -> None:
        config = phase_config(
            phase_registry={
                "w.kernel_fn": "kernel",
                "Worker.apply_rows": "coordinator",
            }
        )
        files = {
            "src/repro/runtime/w.py": """
                class Worker:
                    def apply_rows(self, rows):
                        self.dv[0, :] = rows
                def kernel_fn(worker, rows):
                    worker.apply_rows(rows)
            """
        }
        found = lint_project(
            tmp_path, files, select=self.SELECT, config=config
        )
        assert codes(found) == ["RPL010"]
        assert "coordinator" in found[0].message

    def test_reads_are_clean(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/w.py": """
                class Worker:
                    def snapshot(self):
                        return self.dv.copy(), self.local_apsp.sum()
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_unshared_names_clean(self, tmp_path: Path) -> None:
        files = {
            "src/repro/runtime/w.py": """
                import numpy as np
                class Worker:
                    def scratch(self, n):
                        buf = np.zeros(n)
                        buf[0] = 1.0
                        self.other[0] = 2.0
            """
        }
        assert lint_project(tmp_path, files, select=self.SELECT) == []

    def test_view_writeback_flagged(self, tmp_path: Path) -> None:
        """relax_with_edge_rows shape: write through an np.ix_ view."""
        files = {
            "src/repro/runtime/w.py": """
                import numpy as np
                class Worker:
                    def relax(self, rows, cols, cand):
                        sub = self.dv[np.ix_(rows, cols)]
                        sub[:] = cand
            """
        }
        assert codes(
            lint_project(tmp_path, files, select=self.SELECT)
        ) == ["RPL010"]


# ----------------------------------------------------------------------
# effect summaries / lineage internals
# ----------------------------------------------------------------------
class TestAnalysisInternals:
    def test_may_charge_closure(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "src/repro/runtime/c.py": """
                    def leaf(self, msgs):
                        self.charge_comm_words(msgs)
                    def middle(self, msgs):
                        leaf(self, msgs)
                    def top(self, msgs):
                        middle(self, msgs)
                """
            },
        )
        effects = effects_for(project)
        assert effects.summaries["repro.runtime.c.leaf"].may_charge
        assert effects.summaries["repro.runtime.c.top"].may_charge

    def test_returns_derived_fixpoint(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "src/repro/f.py": """
                    def double(seed):
                        return seed * 2
                    def wrap(seed):
                        return double(seed)
                """
            },
        )
        lineage = lineage_for(project)
        assert lineage.taint_of("repro.f.double").returns_derived
        assert lineage.taint_of("repro.f.wrap").returns_derived


# ----------------------------------------------------------------------
# SARIF / baseline / cache plumbing
# ----------------------------------------------------------------------
def run_cli(
    args: List[str], capsys
) -> tuple[int, str]:
    rc = lint_main(args)
    out = capsys.readouterr().out
    return rc, out


class TestSarifOutput:
    def test_sarif_document_shape(self, tmp_path: Path, capsys) -> None:
        write_project(
            tmp_path,
            {
                "src/repro/runtime/x.py": (
                    "import random\nrandom.random()\n"
                )
            },
        )
        rc, out = run_cli(
            [
                str(tmp_path / "src/repro"),
                "--format",
                "sarif",
                "--no-config",
            ],
            capsys,
        )
        assert rc == 1
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "RPL008" in rule_ids and "RPL010" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "RPL001"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("x.py")
        assert loc["region"]["startLine"] == 2

    def test_sarif_clean_run_has_empty_results(
        self, tmp_path: Path, capsys
    ) -> None:
        write_project(tmp_path, {"src/repro/ok.py": "X = 1\n"})
        rc, out = run_cli(
            [
                str(tmp_path / "src/repro"),
                "--format",
                "sarif",
                "--no-config",
            ],
            capsys,
        )
        assert rc == 0
        assert json.loads(out)["runs"][0]["results"] == []


class TestBaseline:
    def _dirty(self, tmp_path: Path) -> Path:
        write_project(
            tmp_path,
            {
                "src/repro/runtime/x.py": (
                    "import random\nrandom.random()\n"
                )
            },
        )
        return tmp_path / "src/repro"

    def test_write_then_clean(self, tmp_path: Path, capsys) -> None:
        target = self._dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        rc, _ = run_cli(
            [
                str(target),
                "--no-config",
                "--baseline",
                str(baseline),
                "--write-baseline",
            ],
            capsys,
        )
        assert rc == 0
        data = json.loads(baseline.read_text())
        assert data["findings"][0]["code"] == "RPL001"
        rc, _ = run_cli(
            [str(target), "--no-config", "--baseline", str(baseline)],
            capsys,
        )
        assert rc == 0

    def test_baseline_survives_line_shift(
        self, tmp_path: Path, capsys
    ) -> None:
        """Fingerprints exclude line numbers: editing above an accepted
        finding must not resurrect it."""
        target = self._dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        run_cli(
            [
                str(target),
                "--no-config",
                "--baseline",
                str(baseline),
                "--write-baseline",
            ],
            capsys,
        )
        src = tmp_path / "src/repro/runtime/x.py"
        src.write_text(
            "import random\n\n\nrandom.random()\n", encoding="utf-8"
        )
        rc, _ = run_cli(
            [str(target), "--no-config", "--baseline", str(baseline)],
            capsys,
        )
        assert rc == 0

    def test_no_baseline_flag_reports_everything(
        self, tmp_path: Path, capsys
    ) -> None:
        target = self._dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        run_cli(
            [
                str(target),
                "--no-config",
                "--baseline",
                str(baseline),
                "--write-baseline",
            ],
            capsys,
        )
        rc, out = run_cli(
            [
                str(target),
                "--no-config",
                "--baseline",
                str(baseline),
                "--no-baseline",
            ],
            capsys,
        )
        assert rc == 1
        assert "RPL001" in out

    def test_new_findings_still_fail(self, tmp_path: Path, capsys) -> None:
        target = self._dirty(tmp_path)
        baseline = tmp_path / "baseline.json"
        run_cli(
            [
                str(target),
                "--no-config",
                "--baseline",
                str(baseline),
                "--write-baseline",
            ],
            capsys,
        )
        (tmp_path / "src/repro/runtime/y.py").write_text(
            "import random\nrandom.randint(0, 2)\n", encoding="utf-8"
        )
        rc, out = run_cli(
            [str(target), "--no-config", "--baseline", str(baseline)],
            capsys,
        )
        assert rc == 1
        assert "y.py" in out


class TestIncrementalCache:
    def test_cache_round_trip_serves_stored_findings(
        self, tmp_path: Path, capsys
    ) -> None:
        """Prove the second run is served from the cache by poisoning
        the stored entries and watching the poison come back."""
        write_project(
            tmp_path,
            {
                "src/repro/runtime/x.py": (
                    "import random\nrandom.random()\n"
                )
            },
        )
        target = str(tmp_path / "src/repro")
        cache = tmp_path / "cache.json"
        rc, out = run_cli(
            [target, "--no-config", "--cache", str(cache)], capsys
        )
        assert rc == 1 and cache.is_file()
        data = json.loads(cache.read_text())
        for entries in data["entries"].values():
            for entry in entries:
                entry["message"] = "FROM-THE-CACHE"
        cache.write_text(json.dumps(data), encoding="utf-8")
        rc, out = run_cli(
            [target, "--no-config", "--cache", str(cache)], capsys
        )
        assert rc == 1
        assert "FROM-THE-CACHE" in out

    def test_content_change_invalidates(
        self, tmp_path: Path, capsys
    ) -> None:
        write_project(
            tmp_path,
            {
                "src/repro/runtime/x.py": (
                    "import random\nrandom.random()\n"
                )
            },
        )
        target = str(tmp_path / "src/repro")
        cache = tmp_path / "cache.json"
        run_cli([target, "--no-config", "--cache", str(cache)], capsys)
        data = json.loads(cache.read_text())
        for entries in data["entries"].values():
            for entry in entries:
                entry["message"] = "FROM-THE-CACHE"
        cache.write_text(json.dumps(data), encoding="utf-8")
        # content change: the poisoned entries must not be served
        (tmp_path / "src/repro/runtime/x.py").write_text(
            "import random\nrandom.randint(1, 5)\n", encoding="utf-8"
        )
        rc, out = run_cli(
            [target, "--no-config", "--cache", str(cache)], capsys
        )
        assert rc == 1
        assert "FROM-THE-CACHE" not in out
        assert "randint" in out or "RPL001" in out

    def test_corrupt_cache_is_ignored(self, tmp_path: Path, capsys) -> None:
        write_project(tmp_path, {"src/repro/ok.py": "X = 1\n"})
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        rc, _ = run_cli(
            [
                str(tmp_path / "src/repro"),
                "--no-config",
                "--cache",
                str(cache),
            ],
            capsys,
        )
        assert rc == 0


# ----------------------------------------------------------------------
# self-check: the real tree against the real config
# ----------------------------------------------------------------------
class TestRealTreeSelfCheck:
    REPO_ROOT = Path(__file__).resolve().parent.parent

    def test_src_repro_clean_with_project_rules(self) -> None:
        from repro_lint.config import load_config

        config = load_config(self.REPO_ROOT / "pyproject.toml")
        findings = lint_paths(
            [self.REPO_ROOT / "src" / "repro"],
            config,
            select=["RPL008", "RPL009", "RPL010"],
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_baseline_entries_are_current(self) -> None:
        """Every committed baseline entry still matches a real finding —
        stale entries mean the underlying code was fixed and the
        baseline should be refreshed."""
        from repro_lint.config import load_config
        from repro_lint.core import fingerprint

        config = load_config(self.REPO_ROOT / "pyproject.toml")
        baseline_path = Path(config.baseline_file)
        assert baseline_path.is_file()
        recorded = {
            e["fingerprint"]
            for e in json.loads(baseline_path.read_text())["findings"]
        }
        live = lint_paths(
            [self.REPO_ROOT / "src" / "repro"], config, baseline=set()
        )
        live_fps = {fingerprint(f) for f in live}
        assert recorded == live_fps
