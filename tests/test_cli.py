"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["figure5", "--small"])
    assert args.command == "figure5"
    assert args.small


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figure4_small(capsys):
    assert main(["figure4", "--small"]) == 0
    out = capsys.readouterr().out
    assert "figure4" in out
    assert "anytime_roundrobin" in out
    assert "baseline_restart" in out


def test_figure7_small_markdown(capsys):
    assert main(["figure7", "--small", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "| batch_size |" in out


def test_out_file(tmp_path, capsys):
    target = tmp_path / "report.txt"
    assert main(["figure7", "--small", "--out", str(target)]) == 0
    assert target.exists()
    assert "new_cut_edges" in target.read_text()


def test_partition_command(capsys):
    assert main(["partition", "--n", "120", "--nparts", "4"]) == 0
    out = capsys.readouterr().out
    assert "MultilevelPartitioner" in out
    assert "edge_cut" in out


def test_scale_overrides(capsys):
    assert main(["figure7", "--small", "--n-base", "120", "--nprocs", "2"]) == 0
    assert "figure7" in capsys.readouterr().out


def test_trace_command(capsys, tmp_path):
    out_json = tmp_path / "trace.json"
    assert main([
        "trace", "--n-base", "120", "--batch", "10", "--nprocs", "4",
        "--json", str(out_json),
    ]) == 0
    out = capsys.readouterr().out
    assert "rc_step" in out
    assert "total modeled" in out
    assert out_json.exists()


def test_scaling_command(capsys):
    assert main(["scaling", "--small"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_trace_straggler_health(capsys):
    assert main([
        "trace", "--n-base", "150", "--batch", "10", "--nprocs", "4",
        "--chaos-straggler", "1:8.0", "--health",
    ]) == 0
    out = capsys.readouterr().out
    assert "speculative re-executions" in out
    assert "missed deadlines" in out
    assert "DEGRADED" not in out


def test_trace_escalate_recovery_ladder(capsys):
    assert main([
        "trace", "--n-base", "150", "--batch", "10", "--nprocs", "4",
        "--chaos-crash", "1:0", "--chaos-crash", "2:0",
        "--chaos-crash", "3:0", "--recovery", "escalate",
    ]) == 0
    out = capsys.readouterr().out
    assert "recovery ladder:" in out
    assert "warm=1" in out and "redistribute=1" in out
    assert "mttr" in out


def test_trace_degraded_output(capsys):
    # loss so heavy that the retry budget is exhausted; with --health the
    # run degrades gracefully instead of raising
    assert main([
        "trace", "--n-base", "120", "--batch", "10", "--nprocs", "4",
        "--chaos-seed", "6", "--chaos-loss", "0.95", "--health",
    ]) == 0
    out = capsys.readouterr().out
    assert "DEGRADED (retry-budget)" in out
    assert "finite_fraction=" in out


def test_trace_bad_chaos_pair_rejected():
    with pytest.raises(SystemExit):
        main([
            "trace", "--n-base", "120", "--nprocs", "4",
            "--chaos-crash", "nonsense",
        ])
