"""diff_graphs: derive a change batch from two snapshots."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import barabasi_albert, diff_graphs

from ..conftest import path_graph


def roundtrip(old, new):
    batch = diff_graphs(old, new)
    work = old.copy()
    batch.validate(work)
    batch.apply_to(work)
    assert work == new
    return batch


def test_identical_graphs_empty_batch():
    g = barabasi_albert(30, 2, seed=0)
    batch = diff_graphs(g, g.copy())
    assert not batch


def test_vertex_addition_with_edges():
    old = path_graph(3)
    new = old.copy()
    new.add_vertex(10)
    new.add_edge(10, 0, 2.0)
    batch = roundtrip(old, new)
    assert batch.new_vertex_ids() == [10]
    assert not batch.edge_additions  # carried by the vertex addition


def test_intra_new_edges_once():
    old = path_graph(2)
    new = old.copy()
    new.add_vertices([10, 11])
    new.add_edge(10, 11, 3.0)
    new.add_edge(10, 0, 1.0)
    batch = roundtrip(old, new)
    recorded = sum(len(va.edges) for va in batch.vertex_additions)
    assert recorded == 2


def test_edge_changes():
    old = path_graph(4)
    new = old.copy()
    new.remove_edge(1, 2)
    new.add_edge(0, 3, 5.0)
    new.add_edge(0, 1, 9.0)  # reweight
    batch = roundtrip(old, new)
    assert len(batch.edge_deletions) == 1
    assert len(batch.edge_additions) == 1
    assert len(batch.edge_reweights) == 1


def test_vertex_deletion_absorbs_incident_edges():
    old = path_graph(4)
    new = old.copy()
    new.remove_vertex(1)
    batch = roundtrip(old, new)
    assert len(batch.vertex_deletions) == 1
    assert not batch.edge_deletions  # (0,1),(1,2) go with the vertex


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), data=st.data())
def test_roundtrip_random_mutations(seed, data):
    old = barabasi_albert(20, 2, seed=seed)
    new = old.copy()
    # random mutations
    if data.draw(st.booleans()):
        v = new.next_vertex_id()
        new.add_vertex(v)
        t = data.draw(st.integers(0, 19))
        new.add_edge(v, t, float(data.draw(st.integers(1, 5))))
    if data.draw(st.booleans()):
        edges = new.edge_list()
        u, vv, _w = edges[data.draw(st.integers(0, len(edges) - 1))]
        new.remove_edge(u, vv)
    if data.draw(st.booleans()):
        victim = data.draw(st.integers(0, 19))
        if new.has_vertex(victim):
            new.remove_vertex(victim)
    roundtrip(old, new)
