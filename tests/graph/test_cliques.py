"""Maximal clique enumeration tests."""

import pytest

from repro.graph import (
    Graph,
    barabasi_albert,
    degeneracy_ordering,
    holme_kim,
    max_clique,
    maximal_cliques,
)

from ..conftest import complete_graph, cycle_graph, path_graph


def cliques_set(g):
    return {tuple(c) for c in maximal_cliques(g)}


def test_complete_graph_single_clique():
    assert cliques_set(complete_graph(5)) == {(0, 1, 2, 3, 4)}


def test_path_cliques_are_edges():
    assert cliques_set(path_graph(4)) == {(0, 1), (1, 2), (2, 3)}


def test_cycle_cliques():
    assert len(cliques_set(cycle_graph(5))) == 5


def test_triangle_with_tail():
    g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    assert cliques_set(g) == {(0, 1, 2), (2, 3)}


def test_isolated_vertex_singleton():
    g = path_graph(3)
    g.add_vertex(9)
    assert (9,) in cliques_set(g)


def test_empty_graph():
    assert cliques_set(Graph()) == set()
    assert max_clique(Graph()) == []


def test_matches_networkx():
    nx = pytest.importorskip("networkx")
    for seed in (1, 2):
        g = holme_kim(80, 3, 0.7, seed=seed)
        ng = nx.Graph()
        ng.add_edges_from((u, v) for u, v, _w in g.edges())
        ours = cliques_set(g)
        ref = {tuple(sorted(c)) for c in nx.find_cliques(ng)}
        assert ours == ref


def test_max_clique_size():
    g = complete_graph(4)
    g.add_edges([(3, 10), (10, 11)])
    assert max_clique(g) == [0, 1, 2, 3]


def test_every_clique_is_maximal_and_complete():
    g = barabasi_albert(60, 3, seed=3)
    adj = {v: set(g.neighbors(v)) for v in g.vertices()}
    for c in maximal_cliques(g):
        cs = set(c)
        # complete
        for v in c:
            assert cs - {v} <= adj[v]
        # maximal: no vertex adjacent to all members
        for v in g.vertices():
            if v not in cs:
                assert not cs <= adj[v]


def test_degeneracy_ordering_covers_all():
    g = barabasi_albert(50, 3, seed=4)
    order = degeneracy_ordering(g)
    assert sorted(order) == g.vertex_list()


def test_degeneracy_bound():
    """In degeneracy order each vertex has few later neighbors (<= the
    degeneracy, which is m for BA graphs)."""
    g = barabasi_albert(80, 3, seed=5)
    order = degeneracy_ordering(g)
    pos = {v: i for i, v in enumerate(order)}
    worst = max(
        sum(1 for u in g.neighbors(v) if pos[u] > pos[v])
        for v in g.vertices()
    )
    assert worst <= 3 + 2  # degeneracy of BA(m=3) is m (small slack)
