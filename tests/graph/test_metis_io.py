"""METIS .graph format round-trips and error handling."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    barabasi_albert,
    random_weights,
    read_metis,
    write_metis,
)

from ..conftest import path_graph


def test_unweighted_roundtrip(tmp_path):
    g = barabasi_albert(50, 2, seed=0)
    p = tmp_path / "g.graph"
    write_metis(g, p)
    assert read_metis(p) == g


def test_weighted_roundtrip(tmp_path):
    g = random_weights(barabasi_albert(40, 2, seed=1), 1.0, 5.0, seed=2)
    p = tmp_path / "g.graph"
    write_metis(g, p)
    assert read_metis(p) == g


def test_header_contents(tmp_path):
    g = path_graph(4)
    p = tmp_path / "g.graph"
    write_metis(g, p)
    header = p.read_text().splitlines()[0]
    assert header == "4 3"


def test_weighted_header_has_fmt(tmp_path):
    from repro.graph import Graph

    g = Graph.from_edges([(0, 1, 2.5)])
    p = tmp_path / "g.graph"
    write_metis(g, p)
    assert p.read_text().splitlines()[0] == "2 1 001"


def test_comment_lines_skipped(tmp_path):
    p = tmp_path / "g.graph"
    p.write_text("% a comment\n3 2\n2\n1 3\n2\n")
    g = read_metis(p)
    assert g.num_edges == 2
    assert g.has_edge(0, 1) and g.has_edge(1, 2)


def test_empty_file_rejected(tmp_path):
    p = tmp_path / "empty.graph"
    p.write_text("")
    with pytest.raises(GraphError):
        read_metis(p)


def test_vertex_count_mismatch(tmp_path):
    p = tmp_path / "bad.graph"
    p.write_text("3 1\n2\n1\n")  # claims 3 vertices, 2 lines
    with pytest.raises(GraphError):
        read_metis(p)


def test_edge_count_mismatch(tmp_path):
    p = tmp_path / "bad.graph"
    p.write_text("3 5\n2\n1 3\n2\n")
    with pytest.raises(GraphError):
        read_metis(p)


def test_out_of_range_neighbor(tmp_path):
    p = tmp_path / "bad.graph"
    p.write_text("2 1\n9\n1\n")
    with pytest.raises(GraphError):
        read_metis(p)


def test_unsupported_fmt(tmp_path):
    p = tmp_path / "bad.graph"
    p.write_text("2 1 011\n2 1\n1 1\n")
    with pytest.raises(GraphError):
        read_metis(p)


def test_isolated_vertices_roundtrip(tmp_path):
    from repro.graph import Graph

    g = Graph.from_edges([(0, 1)], vertices=[2])
    p = tmp_path / "iso.graph"
    write_metis(g, p)
    h = read_metis(p)
    assert h.num_vertices == 3
    assert h.degree(2) == 0
