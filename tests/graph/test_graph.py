"""Unit tests for the core Graph data structure."""

import pytest

from repro.errors import (
    DuplicateVertex,
    EdgeNotFound,
    InvalidWeight,
    VertexNotFound,
)
from repro.graph import Graph

from ..conftest import complete_graph, path_graph


class TestVertices:
    def test_add_vertex(self):
        g = Graph()
        g.add_vertex(3)
        assert g.has_vertex(3)
        assert g.num_vertices == 1
        assert 3 in g

    def test_add_duplicate_raises(self):
        g = Graph()
        g.add_vertex(1)
        with pytest.raises(DuplicateVertex):
            g.add_vertex(1)

    def test_add_duplicate_exist_ok(self):
        g = Graph()
        g.add_vertex(1)
        g.add_vertex(1, exist_ok=True)
        assert g.num_vertices == 1

    def test_add_vertices_bulk(self):
        g = Graph()
        g.add_vertices([5, 2, 5, 9])
        assert g.vertex_list() == [2, 5, 9]

    def test_remove_vertex_returns_edges(self):
        g = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.0), (1, 2, 1.0)])
        removed = g.remove_vertex(0)
        assert sorted((u, v) for u, v, _ in removed) == [(0, 1), (0, 2)]
        assert g.num_edges == 1
        assert not g.has_vertex(0)

    def test_remove_missing_vertex(self):
        with pytest.raises(VertexNotFound):
            Graph().remove_vertex(7)

    def test_max_and_next_vertex_id(self):
        g = Graph()
        assert g.max_vertex_id() == -1
        assert g.next_vertex_id() == 0
        g.add_vertices([3, 10])
        assert g.max_vertex_id() == 10
        assert g.next_vertex_id() == 11

    def test_len(self):
        g = Graph()
        g.add_vertices(range(4))
        assert len(g) == 4


class TestEdges:
    def test_add_edge_symmetric(self):
        g = Graph()
        g.add_vertices([0, 1])
        g.add_edge(0, 1, 2.5)
        assert g.weight(0, 1) == 2.5
        assert g.weight(1, 0) == 2.5
        assert g.num_edges == 1

    def test_add_edge_missing_endpoint(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(VertexNotFound):
            g.add_edge(0, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(InvalidWeight):
            g.add_edge(0, 0)

    @pytest.mark.parametrize("w", [0.0, -1.0, float("inf"), float("nan")])
    def test_bad_weights_rejected(self, w):
        g = Graph()
        g.add_vertices([0, 1])
        with pytest.raises(InvalidWeight):
            g.add_edge(0, 1, w)

    def test_overwrite_updates_total_weight(self):
        g = Graph()
        g.add_vertices([0, 1])
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 5.0)
        assert g.num_edges == 1
        assert g.total_weight == 5.0

    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1, 4.0)])
        assert g.remove_edge(0, 1) == 4.0
        assert g.num_edges == 0
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_remove_missing_edge(self):
        g = Graph.from_edges([(0, 1)])
        g.remove_edge(0, 1)
        with pytest.raises(EdgeNotFound):
            g.remove_edge(0, 1)

    def test_weight_missing_edge(self):
        g = Graph.from_edges([(0, 1)])
        g.add_vertex(2)
        with pytest.raises(EdgeNotFound):
            g.weight(0, 2)
        with pytest.raises(VertexNotFound):
            g.weight(9, 0)

    def test_edges_listed_once(self):
        g = complete_graph(5)
        edges = list(g.edges())
        assert len(edges) == 10
        assert all(u <= v for u, v, _w in edges)

    def test_edge_list_sorted(self):
        g = Graph.from_edges([(3, 1), (0, 2), (1, 0)])
        assert [(u, v) for u, v, _ in g.edge_list()] == [(0, 1), (0, 2), (1, 3)]

    def test_add_edges_creates_vertices(self):
        g = Graph()
        g.add_edges([(0, 1), (1, 2, 3.0)])
        assert g.num_vertices == 3
        assert g.weight(1, 2) == 3.0

    def test_total_weight_tracks_removals(self):
        g = Graph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        g.remove_edge(0, 1)
        assert g.total_weight == 3.0


class TestNeighborhoods:
    def test_neighbors(self):
        g = path_graph(4)
        assert sorted(g.neighbors(1)) == [0, 2]

    def test_neighbor_items(self):
        g = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.0)])
        assert dict(g.neighbor_items(0)) == {1: 2.0, 2: 3.0}

    def test_adjacency_of_is_copy(self):
        g = Graph.from_edges([(0, 1)])
        adj = g.adjacency_of(0)
        adj[99] = 1.0
        assert not g.has_edge(0, 99)

    def test_degree(self):
        g = path_graph(5)
        assert g.degree(0) == 1
        assert g.degree(2) == 2
        with pytest.raises(VertexNotFound):
            g.degree(99)

    def test_weighted_degree(self):
        g = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.5)])
        assert g.weighted_degree(0) == 5.5

    def test_degrees_map(self):
        g = path_graph(3)
        assert g.degrees() == {0: 1, 1: 2, 2: 1}


class TestCSRExport:
    def test_full_export(self):
        g = Graph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        view = g.to_csr()
        assert view.order == [0, 1, 2]
        dense = view.matrix.toarray()
        assert dense[0, 1] == 2.0
        assert dense[1, 0] == 2.0
        assert dense[1, 2] == 3.0
        assert dense[0, 2] == 0.0

    def test_sub_view_drops_external_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        view = g.to_csr([1, 2])
        dense = view.matrix.toarray()
        assert dense[view.index[1], view.index[2]] == 1.0
        assert view.matrix.nnz == 2  # only the 1-2 edge, both directions

    def test_duplicate_order_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            g.to_csr([0, 0, 1])

    def test_missing_vertex_rejected(self):
        g = path_graph(3)
        with pytest.raises(VertexNotFound):
            g.to_csr([0, 99])

    def test_len(self):
        g = path_graph(4)
        assert len(g.to_csr()) == 4


class TestCopyEq:
    def test_copy_is_deep(self):
        g = path_graph(3)
        h = g.copy()
        h.add_edge(0, 2)
        assert not g.has_edge(0, 2)
        assert h.num_edges == g.num_edges + 1

    def test_eq(self):
        a = Graph.from_edges([(0, 1, 2.0)])
        b = Graph.from_edges([(1, 0, 2.0)])
        assert a == b
        b.add_vertex(5)
        assert a != b

    def test_eq_weight_sensitive(self):
        a = Graph.from_edges([(0, 1, 2.0)])
        b = Graph.from_edges([(0, 1, 3.0)])
        assert a != b

    def test_eq_non_graph(self):
        assert Graph() != 42

    def test_repr(self):
        assert repr(path_graph(3)) == "Graph(n=3, m=2)"

    def test_from_edges_with_isolated(self):
        g = Graph.from_edges([(0, 1)], vertices=[7])
        assert g.has_vertex(7)
        assert g.degree(7) == 0
