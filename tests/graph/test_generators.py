"""Tests for the random graph generators."""

import pytest

from repro.errors import ConfigurationError
from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    holme_kim,
    is_connected,
    planted_partition,
    powerlaw_exponent_estimate,
    random_weights,
    watts_strogatz,
)


class TestBarabasiAlbert:
    def test_size_and_edge_count(self):
        g = barabasi_albert(100, 3, seed=0)
        assert g.num_vertices == 100
        # star seed contributes m edges; each of the n-m-1 later vertices m
        assert g.num_edges == 3 + 3 * 96

    def test_connected(self):
        assert is_connected(barabasi_albert(200, 2, seed=1))

    def test_deterministic(self):
        a = barabasi_albert(80, 3, seed=5)
        b = barabasi_albert(80, 3, seed=5)
        assert a == b

    def test_seed_changes_graph(self):
        a = barabasi_albert(80, 3, seed=5)
        b = barabasi_albert(80, 3, seed=6)
        assert a != b

    def test_offset(self):
        g = barabasi_albert(10, 2, seed=0, offset=100)
        assert g.vertex_list() == list(range(100, 110))

    def test_scale_free_degree_tail(self):
        g = barabasi_albert(2000, 3, seed=2)
        gamma = powerlaw_exponent_estimate(g, dmin=3)
        assert gamma is not None
        assert 1.8 < gamma < 4.5  # BA asymptotics: gamma ~ 3

    @pytest.mark.parametrize("n,m", [(5, 5), (5, 6), (3, 0)])
    def test_invalid_params(self, n, m):
        with pytest.raises(ConfigurationError):
            barabasi_albert(n, m)


class TestHolmeKim:
    def test_size(self):
        g = holme_kim(100, 3, 0.5, seed=0)
        assert g.num_vertices == 100
        assert g.num_edges == 3 + 3 * 96

    def test_deterministic(self):
        assert holme_kim(60, 2, 0.7, seed=3) == holme_kim(60, 2, 0.7, seed=3)

    def test_triads_raise_clustering(self):
        """Triad formation should create more triangles than plain BA."""

        def triangles(g):
            count = 0
            for u, v, _ in g.edges():
                nu = set(g.neighbors(u))
                count += len(nu & set(g.neighbors(v)))
            return count

        hk = holme_kim(400, 3, 0.9, seed=7)
        ba = barabasi_albert(400, 3, seed=7)
        assert triangles(hk) > triangles(ba)

    def test_invalid_p_triad(self):
        with pytest.raises(ConfigurationError):
            holme_kim(10, 2, 1.5)


class TestErdosRenyi:
    def test_p_zero(self):
        g = erdos_renyi(20, 0.0, seed=0)
        assert g.num_edges == 0
        assert g.num_vertices == 20

    def test_p_one_complete(self):
        g = erdos_renyi(10, 1.0, seed=0)
        assert g.num_edges == 45

    def test_expected_density(self):
        g = erdos_renyi(300, 0.05, seed=1)
        expected = 0.05 * 300 * 299 / 2
        assert abs(g.num_edges - expected) < 0.25 * expected

    def test_deterministic(self):
        assert erdos_renyi(50, 0.1, seed=9) == erdos_renyi(50, 0.1, seed=9)

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi(10, 1.5)


class TestWattsStrogatz:
    def test_no_rewire_is_ring_lattice(self):
        g = watts_strogatz(12, 4, 0.0, seed=0)
        assert g.num_edges == 12 * 2
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_rewire_preserves_edge_count_upper_bound(self):
        g = watts_strogatz(50, 4, 0.5, seed=1)
        assert g.num_edges <= 100
        assert g.num_edges >= 80  # bounded retries may drop a few

    @pytest.mark.parametrize("n,k", [(10, 3), (10, 0), (5, 6)])
    def test_invalid_k(self, n, k):
        with pytest.raises(ConfigurationError):
            watts_strogatz(n, k, 0.1)


class TestPlantedPartition:
    def test_communities_returned(self):
        g, comms = planted_partition([10, 15, 5], 0.5, 0.01, seed=0)
        assert [len(c) for c in comms] == [10, 15, 5]
        assert g.num_vertices == 30

    def test_intra_denser_than_inter(self):
        g, comms = planted_partition([30, 30], 0.4, 0.02, seed=1)
        block = {v: i for i, c in enumerate(comms) for v in c}
        intra = sum(1 for u, v, _ in g.edges() if block[u] == block[v])
        inter = g.num_edges - intra
        assert intra > 3 * inter

    def test_offset(self):
        g, comms = planted_partition([4, 4], 0.9, 0.0, seed=0, offset=50)
        assert min(g.vertices()) == 50
        assert comms[0][0] == 50

    def test_invalid_probabilities(self):
        with pytest.raises(ConfigurationError):
            planted_partition([5, 5], 0.1, 0.5)  # p_out > p_in


class TestRandomWeights:
    def test_weights_in_range(self):
        g = random_weights(barabasi_albert(50, 2, seed=0), 2.0, 7.0, seed=1)
        for _u, _v, w in g.edges():
            assert 2.0 <= w < 7.0

    def test_topology_preserved(self):
        base = barabasi_albert(50, 2, seed=0)
        g = random_weights(base, seed=1)
        assert {(u, v) for u, v, _ in g.edges()} == {
            (u, v) for u, v, _ in base.edges()
        }

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            random_weights(barabasi_albert(10, 2, seed=0), 5.0, 2.0)
