"""Tests for the LFR benchmark generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import lfr_benchmark, louvain_communities, modularity


def realized_mixing(g, comms):
    block = {v: i for i, c in enumerate(comms) for v in c}
    inter = sum(1 for u, v, _w in g.edges() if block[u] != block[v])
    return inter / max(g.num_edges, 1)


def test_covers_all_vertices():
    g, comms = lfr_benchmark(300, seed=0)
    flat = sorted(v for c in comms for v in c)
    assert flat == g.vertex_list()
    assert g.num_vertices == 300


def test_average_degree_near_target():
    g, _ = lfr_benchmark(500, avg_degree=8.0, seed=1)
    avg = 2 * g.num_edges / g.num_vertices
    assert 6.0 <= avg <= 9.0


@pytest.mark.parametrize("mu", [0.05, 0.2, 0.4])
def test_mixing_tracks_target(mu):
    g, comms = lfr_benchmark(500, mu=mu, avg_degree=8.0, seed=3)
    realized = realized_mixing(g, comms)
    assert abs(realized - mu) < 0.08


def test_planted_modularity_high_for_low_mixing():
    g, comms = lfr_benchmark(400, mu=0.1, seed=4)
    assert modularity(g, comms) > 0.45


def test_louvain_recovers_low_mixing_structure():
    g, comms = lfr_benchmark(400, mu=0.05, avg_degree=10.0, seed=5)
    detected = louvain_communities(g, seed=5)
    q_detected = modularity(g, detected)
    q_planted = modularity(g, comms)
    assert q_detected >= 0.8 * q_planted


def test_degree_distribution_heavy_tailed():
    g, _ = lfr_benchmark(800, tau1=2.5, avg_degree=8.0, seed=6)
    degs = np.array([g.degree(v) for v in g.vertices()])
    assert degs.max() >= 3 * degs.mean()


def test_deterministic():
    a, ca = lfr_benchmark(200, seed=7)
    b, cb = lfr_benchmark(200, seed=7)
    assert a == b and ca == cb


def test_offset():
    g, comms = lfr_benchmark(50, seed=0, offset=1000)
    assert min(g.vertices()) == 1000
    assert comms[0][0] >= 1000


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n": 2},
        {"n": 100, "mu": 1.5},
        {"n": 100, "tau1": 0.9},
        {"n": 100, "tau2": 1.0},
    ],
)
def test_invalid_params(kwargs):
    n = kwargs.pop("n")
    with pytest.raises(ConfigurationError):
        lfr_benchmark(n, **kwargs)


def test_lfr_workload_valid():
    from repro.bench import lfr_workload

    wl = lfr_workload(250, 50, seed=8, inject_step=2)
    work = wl.base.copy()
    for _s, batch in wl.stream:
        batch.validate(work)
        batch.apply_to(work)
    assert work == wl.final
    assert wl.total_added > 0
    assert "lfr" in wl.kind
