"""Round-trip tests for graph and change-stream IO."""

import pytest

from repro.errors import ChangeStreamError, GraphError
from repro.graph import (
    ChangeBatch,
    ChangeStream,
    Graph,
    barabasi_albert,
    read_change_stream,
    read_edge_list,
    read_pajek,
    write_change_stream,
    write_edge_list,
    write_pajek,
)
from repro.graph.changes import (
    EdgeAddition,
    EdgeDeletion,
    EdgeReweight,
    VertexAddition,
    VertexDeletion,
)


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = barabasi_albert(40, 2, seed=0)
        p = tmp_path / "g.txt"
        write_edge_list(g, p)
        assert read_edge_list(p) == g

    def test_isolated_vertices_survive(self, tmp_path):
        g = Graph.from_edges([(0, 1)], vertices=[5])
        p = tmp_path / "g.txt"
        write_edge_list(g, p)
        h = read_edge_list(p)
        assert h.has_vertex(5)
        assert h.degree(5) == 0

    def test_weights_exact(self, tmp_path):
        g = Graph.from_edges([(0, 1, 0.1234567890123)])
        p = tmp_path / "g.txt"
        write_edge_list(g, p)
        assert read_edge_list(p).weight(0, 1) == 0.1234567890123

    def test_comments_and_unweighted_lines(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# comment\n0 1\n1 2 3.5\n")
        g = read_edge_list(p)
        assert g.weight(0, 1) == 1.0
        assert g.weight(1, 2) == 3.5

    def test_malformed_line(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 2 3\n")
        with pytest.raises(GraphError):
            read_edge_list(p)


class TestPajek:
    def test_roundtrip(self, tmp_path):
        g = barabasi_albert(30, 2, seed=1)
        p = tmp_path / "g.net"
        write_pajek(g, p)
        assert read_pajek(p) == g

    def test_noncontiguous_ids(self, tmp_path):
        g = Graph.from_edges([(5, 100, 2.0)])
        p = tmp_path / "g.net"
        write_pajek(g, p)
        h = read_pajek(p)
        assert h.weight(5, 100) == 2.0

    def test_external_pajek_without_labels(self, tmp_path):
        p = tmp_path / "g.net"
        p.write_text("*Vertices 3\n1\n2\n3\n*Edges\n1 2\n2 3 2.0\n")
        g = read_pajek(p)
        assert g.vertex_list() == [0, 1, 2]
        assert g.weight(1, 2) == 2.0

    def test_malformed_edge(self, tmp_path):
        p = tmp_path / "g.net"
        p.write_text("*Edges\n1\n")
        with pytest.raises(GraphError):
            read_pajek(p)


class TestChangeStreamIO:
    def make_stream(self):
        return ChangeStream(
            {
                0: ChangeBatch(
                    vertex_additions=[VertexAddition(9, edges=((0, 1.5),))],
                    edge_additions=[EdgeAddition(1, 2, 2.0)],
                ),
                4: ChangeBatch(
                    edge_deletions=[EdgeDeletion(0, 1)],
                    edge_reweights=[EdgeReweight(2, 3, 7.0)],
                    vertex_deletions=[VertexDeletion(5)],
                ),
            }
        )

    def test_roundtrip(self, tmp_path):
        stream = self.make_stream()
        p = tmp_path / "changes.json"
        write_change_stream(stream, p)
        back = read_change_stream(p)
        assert back.steps() == [0, 4]
        b0 = back.at_step(0)
        assert b0.vertex_additions[0].vertex == 9
        assert b0.vertex_additions[0].edges == ((0, 1.5),)
        assert b0.edge_additions[0] == EdgeAddition(1, 2, 2.0)
        b4 = back.at_step(4)
        assert b4.edge_deletions[0] == EdgeDeletion(0, 1)
        assert b4.edge_reweights[0] == EdgeReweight(2, 3, 7.0)
        assert b4.vertex_deletions[0] == VertexDeletion(5)

    def test_malformed_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"0": {"vertex_additions": [{"no_vertex": 1}]}}')
        with pytest.raises(ChangeStreamError):
            read_change_stream(p)
