"""Tests for change events, batches, and streams."""

import pytest

from repro.errors import ChangeStreamError
from repro.graph import (
    ChangeBatch,
    ChangeStream,
    Graph,
    batch_from_subgraph,
)
from repro.graph.changes import (
    EdgeAddition,
    EdgeDeletion,
    EdgeReweight,
    VertexAddition,
    VertexDeletion,
)

from ..conftest import path_graph


def simple_batch():
    return ChangeBatch(
        vertex_additions=[
            VertexAddition(10, edges=((0, 1.0), (11, 2.0))),
            VertexAddition(11, edges=((1, 1.0),)),
        ]
    )


class TestChangeBatch:
    def test_bool_and_count(self):
        assert not ChangeBatch()
        b = simple_batch()
        assert b
        assert b.num_events == 2

    def test_new_vertex_ids(self):
        assert simple_batch().new_vertex_ids() == [10, 11]

    def test_new_vertex_graph_only_intra_edges(self):
        g = simple_batch().new_vertex_graph()
        assert g.vertex_list() == [10, 11]
        assert g.has_edge(10, 11)
        assert g.num_edges == 1  # the edges to 0 and 1 are attachments

    def test_apply_to(self):
        g = path_graph(3)
        simple_batch().apply_to(g)
        assert g.has_vertex(10) and g.has_vertex(11)
        assert g.weight(10, 11) == 2.0
        assert g.has_edge(10, 0)
        assert g.has_edge(11, 1)

    def test_apply_mixed(self):
        g = path_graph(4)
        batch = ChangeBatch(
            edge_additions=[EdgeAddition(0, 3, 5.0)],
            edge_deletions=[EdgeDeletion(1, 2)],
            edge_reweights=[EdgeReweight(0, 1, 9.0)],
            vertex_deletions=[VertexDeletion(3)],
        )
        batch.apply_to(g)
        assert not g.has_edge(1, 2)
        assert g.weight(0, 1) == 9.0
        assert not g.has_vertex(3)


class TestValidation:
    def test_valid_batch_passes(self):
        simple_batch().validate(path_graph(3))

    def test_collision_with_existing_vertex(self):
        batch = ChangeBatch(vertex_additions=[VertexAddition(1)])
        with pytest.raises(ChangeStreamError):
            batch.validate(path_graph(3))

    def test_duplicate_new_vertex(self):
        batch = ChangeBatch(
            vertex_additions=[VertexAddition(10), VertexAddition(10)]
        )
        with pytest.raises(ChangeStreamError):
            batch.validate(path_graph(3))

    def test_edge_to_unknown_target(self):
        batch = ChangeBatch(
            vertex_additions=[VertexAddition(10, edges=((99, 1.0),))]
        )
        with pytest.raises(ChangeStreamError):
            batch.validate(path_graph(3))

    def test_self_loop_on_new_vertex(self):
        batch = ChangeBatch(
            vertex_additions=[VertexAddition(10, edges=((10, 1.0),))]
        )
        with pytest.raises(ChangeStreamError):
            batch.validate(path_graph(3))

    def test_nonpositive_weight(self):
        batch = ChangeBatch(
            vertex_additions=[VertexAddition(10, edges=((0, -1.0),))]
        )
        with pytest.raises(ChangeStreamError):
            batch.validate(path_graph(3))

    def test_delete_missing_edge(self):
        batch = ChangeBatch(edge_deletions=[EdgeDeletion(0, 2)])
        with pytest.raises(ChangeStreamError):
            batch.validate(path_graph(3))

    def test_delete_missing_vertex(self):
        batch = ChangeBatch(vertex_deletions=[VertexDeletion(42)])
        with pytest.raises(ChangeStreamError):
            batch.validate(path_graph(3))

    def test_edge_addition_to_batch_vertex_ok(self):
        batch = ChangeBatch(
            vertex_additions=[VertexAddition(10)],
            edge_additions=[EdgeAddition(0, 10)],
        )
        batch.validate(path_graph(3))

    def test_reweight_missing_edge(self):
        batch = ChangeBatch(edge_reweights=[EdgeReweight(0, 2, 1.0)])
        with pytest.raises(ChangeStreamError):
            batch.validate(path_graph(3))


class TestChangeStream:
    def test_schedule_and_lookup(self):
        s = ChangeStream()
        s.schedule(3, simple_batch())
        assert s.at_step(3) is not None
        assert s.at_step(2) is None
        assert s.steps() == [3]
        assert s.last_step == 3

    def test_double_schedule_rejected(self):
        s = ChangeStream()
        s.schedule(1, simple_batch())
        with pytest.raises(ChangeStreamError):
            s.schedule(1, simple_batch())

    def test_negative_step_rejected(self):
        with pytest.raises(ChangeStreamError):
            ChangeStream().schedule(-1, simple_batch())

    def test_iteration_sorted(self):
        s = ChangeStream({5: simple_batch(), 1: ChangeBatch()})
        assert [step for step, _b in s] == [1, 5]

    def test_empty_stream(self):
        s = ChangeStream()
        assert not s
        assert s.last_step == -1
        assert s.total_events() == 0

    def test_total_events(self):
        s = ChangeStream({0: simple_batch(), 4: simple_batch()})
        assert s.total_events() == 4


class TestBatchFromSubgraph:
    def test_intra_edges_recorded_once(self):
        newg = Graph.from_edges([(10, 11), (11, 12)])
        batch = batch_from_subgraph(newg)
        total_edges = sum(len(va.edges) for va in batch.vertex_additions)
        assert total_edges == 2

    def test_attachments(self):
        newg = Graph.from_edges([(10, 11)])
        batch = batch_from_subgraph(newg, [(10, 0, 2.0)])
        va10 = next(v for v in batch.vertex_additions if v.vertex == 10)
        assert (0, 2.0) in va10.edges

    def test_unknown_attachment_source(self):
        newg = Graph.from_edges([(10, 11)])
        with pytest.raises(ChangeStreamError):
            batch_from_subgraph(newg, [(99, 0, 1.0)])

    def test_roundtrip_application(self):
        base = path_graph(3)
        newg = Graph.from_edges([(10, 11, 2.0)])
        batch = batch_from_subgraph(newg, [(10, 1, 1.0)])
        batch.validate(base)
        batch.apply_to(base)
        assert base.weight(10, 11) == 2.0
        assert base.has_edge(10, 1)
