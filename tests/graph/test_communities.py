"""Tests for the Louvain implementation."""

import pytest

from repro.graph import (
    Graph,
    barabasi_albert,
    louvain_communities,
    modularity,
    planted_partition,
)


def test_partition_covers_all_vertices():
    g = barabasi_albert(100, 3, seed=0)
    comms = louvain_communities(g, seed=0)
    flat = sorted(v for c in comms for v in c)
    assert flat == g.vertex_list()


def test_planted_communities_recovered():
    g, truth = planted_partition([25, 25, 25], 0.6, 0.01, seed=3)
    comms = louvain_communities(g, seed=3)
    # every detected community should be (nearly) a subset of one block
    block = {v: i for i, c in enumerate(truth) for v in c}
    for c in comms:
        owners = {block[v] for v in c}
        assert len(owners) == 1, f"community mixes blocks: {c}"
    assert len(comms) == 3


def test_modularity_positive_on_clustered_graph():
    g, _ = planted_partition([20, 20], 0.5, 0.02, seed=1)
    comms = louvain_communities(g, seed=1)
    assert modularity(g, comms) > 0.3


def test_modularity_of_all_in_one_partition_is_zero():
    # Q(single community) = m/m - (2m/2m)^2 = 0 by definition
    g, _ = planted_partition([10, 10], 0.8, 0.05, seed=0)
    assert modularity(g, [g.vertex_list()]) == pytest.approx(0.0, abs=1e-12)


def test_empty_graph():
    g = Graph()
    assert louvain_communities(g) == []
    assert modularity(g, []) == 0.0


def test_edgeless_graph_singletons():
    g = Graph()
    g.add_vertices(range(5))
    comms = louvain_communities(g, seed=0)
    assert sorted(comms) == [[0], [1], [2], [3], [4]]


def test_deterministic_for_seed():
    g = barabasi_albert(120, 3, seed=7)
    assert louvain_communities(g, seed=5) == louvain_communities(g, seed=5)


def test_weighted_edges_respected():
    # two triangles joined by a light bridge: heavy weights keep them apart
    g = Graph.from_edges(
        [(0, 1, 10.0), (1, 2, 10.0), (0, 2, 10.0),
         (3, 4, 10.0), (4, 5, 10.0), (3, 5, 10.0),
         (2, 3, 0.1)]
    )
    comms = louvain_communities(g, seed=0)
    assert sorted(map(sorted, comms)) == [[0, 1, 2], [3, 4, 5]]


def test_resolution_parameter():
    g, _ = planted_partition([12, 12, 12, 12], 0.7, 0.05, seed=2)
    fine = louvain_communities(g, seed=2, resolution=2.0)
    coarse = louvain_communities(g, seed=2, resolution=0.2)
    assert len(fine) >= len(coarse)


def test_communities_sorted_by_first_member():
    g, _ = planted_partition([8, 8], 0.9, 0.0, seed=0)
    comms = louvain_communities(g, seed=0)
    firsts = [c[0] for c in comms]
    assert firsts == sorted(firsts)
