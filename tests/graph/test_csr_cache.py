"""Incremental CSR cache: bitwise-faithful, correctly invalidated.

``Graph.to_csr`` caches its last export and serves later calls
incrementally: a clean re-export returns the cached view object, a
prefix-extending order after vertex additions splices only the new and
dirty rows, and deletions (or any non-prefix order) fall back to a full
rebuild.  Every cached path must produce a matrix bitwise-identical to
a from-scratch build, and views handed out earlier must stay frozen
snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import VertexNotFound
from repro.graph import Graph, barabasi_albert


def fresh_bits(g: Graph, order):
    """Fingerprint of a from-scratch CSR build (via an uncached copy)."""
    view = g.copy().to_csr(list(order))
    return view_bits(view)


def view_bits(view):
    m = view.matrix
    return (
        m.shape,
        m.indptr.dtype,
        m.indices.dtype,
        m.data.dtype,
        m.indptr.tobytes(),
        m.indices.tobytes(),
        m.data.tobytes(),
        list(view.order),
    )


def sample_graph(n=30, seed=0):
    return barabasi_albert(n, 2, seed=seed)


class TestCacheHit:
    def test_unchanged_graph_returns_same_object(self):
        g = sample_graph()
        order = g.vertex_list()
        assert g.to_csr(order) is g.to_csr(order)

    def test_default_order_also_cached(self):
        g = sample_graph()
        assert g.to_csr() is g.to_csr()

    def test_mutation_before_first_export_costs_nothing(self):
        g = sample_graph()
        # no cache yet: mutations must not accumulate tracking state
        g.add_vertex(100)
        g.add_edge(100, 0, 2.0)
        assert g._csr_dirty == set()
        assert g._csr_added == set()


class TestIncrementalExtension:
    def test_vertex_additions_extend_incrementally(self):
        g = sample_graph()
        v0 = g.to_csr()
        g.add_vertex(100)
        g.add_vertex(101)
        g.add_edge(100, 3, 1.5)
        g.add_edge(100, 101, 2.5)
        g.add_edge(0, 7, 4.0)  # edge among pre-existing vertices too
        order = g.vertex_list()
        v1 = g.to_csr(order)
        assert v1 is not v0
        assert view_bits(v1) == fresh_bits(g, order)

    def test_extension_then_cache_hit(self):
        g = sample_graph()
        g.to_csr()
        g.add_vertex(100)
        g.add_edge(100, 0, 1.0)
        order = g.vertex_list()
        v1 = g.to_csr(order)
        assert g.to_csr(order) is v1

    def test_repeated_extensions(self):
        g = sample_graph()
        g.to_csr()
        for step in range(3):
            v = 100 + step
            g.add_vertex(v)
            g.add_edge(v, step, 1.0 + step)
            order = g.vertex_list()
            assert view_bits(g.to_csr(order)) == fresh_bits(g, order)

    def test_weight_overwrite_marks_dirty(self):
        g = sample_graph()
        g.to_csr()
        u, v, _ = next(g.edges())
        g.add_edge(u, v, 9.25)  # overwrite weight
        order = g.vertex_list()
        assert view_bits(g.to_csr(order)) == fresh_bits(g, order)


class TestInvalidation:
    def test_edge_deletion_drops_cache(self):
        g = sample_graph()
        order = g.vertex_list()
        v0 = g.to_csr(order)
        u, v, _ = next(g.edges())
        g.remove_edge(u, v)
        v1 = g.to_csr(order)
        assert v1 is not v0
        assert view_bits(v1) == fresh_bits(g, order)

    def test_vertex_deletion_drops_cache(self):
        g = sample_graph()
        g.to_csr()
        g.remove_vertex(5)
        order = g.vertex_list()
        assert view_bits(g.to_csr(order)) == fresh_bits(g, order)

    def test_repartition_order_change_rebuilds(self):
        # a repartition presents the same vertices in a different order:
        # the cached prefix no longer applies and the rebuild must be exact
        g = sample_graph()
        g.to_csr(g.vertex_list())
        moved = list(reversed(g.vertex_list()))
        assert view_bits(g.to_csr(moved)) == fresh_bits(g, moved)

    def test_subset_order_rebuilds(self):
        g = sample_graph()
        g.to_csr()
        sub = g.vertex_list()[:10]
        assert view_bits(g.to_csr(sub)) == fresh_bits(g, sub)

    def test_old_vertex_in_new_position_rebuilds(self):
        # an existing vertex appended out of prefix order must not be
        # mistaken for an incremental extension
        g = sample_graph()
        order = g.vertex_list()
        g.to_csr(order[:-1])
        rotated = order[1:] + order[:1]
        assert view_bits(g.to_csr(rotated)) == fresh_bits(g, rotated)

    def test_copy_starts_cold(self):
        g = sample_graph()
        v0 = g.to_csr()
        h = g.copy()
        assert h._csr_cache is None
        assert view_bits(h.to_csr()) == view_bits(v0)


class TestSnapshotSafety:
    def test_stale_view_not_poisoned_by_extension(self):
        g = sample_graph()
        v0 = g.to_csr()
        snap = view_bits(v0)
        g.add_vertex(100)
        g.add_edge(100, 0, 1.0)
        g.add_edge(2, 9, 3.0)
        g.to_csr(g.vertex_list())  # incremental rebuild
        assert view_bits(v0) == snap

    def test_stale_view_not_poisoned_by_deletion(self):
        g = sample_graph()
        v0 = g.to_csr()
        snap = view_bits(v0)
        u, v, _ = next(g.edges())
        g.remove_edge(u, v)
        g.to_csr()
        assert view_bits(v0) == snap


class TestErrorBehavior:
    def test_duplicate_order_rejected_with_warm_cache(self):
        g = sample_graph()
        g.to_csr()
        with pytest.raises(ValueError):
            g.to_csr([0, 0, 1])

    def test_missing_vertex_rejected_with_warm_cache(self):
        g = sample_graph()
        order = g.vertex_list()
        g.to_csr(order)
        with pytest.raises(VertexNotFound):
            g.to_csr(order + [99999])
        # the failed call must not have corrupted the cache
        assert view_bits(g.to_csr(order)) == fresh_bits(g, order)


@st.composite
def mutation_scripts(draw):
    """A short script of cache-relevant operations on a small graph."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["export", "add_vertex", "add_edge", "remove_edge", "remove_vertex"]
                ),
                st.integers(0, 10**6),
                st.integers(0, 10**6),
                st.integers(1, 9),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return ops


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(0, 50), script=mutation_scripts())
def test_cache_always_matches_fresh_build(seed, script):
    """Any interleaving of mutations and exports stays bitwise-exact."""
    g = sample_graph(n=12, seed=seed % 5)
    next_id = g.num_vertices
    g.to_csr()  # warm the cache so tracking is active
    for op, a, b, w in script:
        vs = g.vertex_list()
        if op == "export":
            order = g.vertex_list()
            assert view_bits(g.to_csr(order)) == fresh_bits(g, order)
        elif op == "add_vertex":
            g.add_vertex(next_id)
            # keep it reachable so later edge ops have targets
            g.add_edge(next_id, vs[a % len(vs)], float(w))
            next_id += 1
        elif op == "add_edge":
            u, v = vs[a % len(vs)], vs[b % len(vs)]
            if u != v:
                g.add_edge(u, v, float(w))
        elif op == "remove_edge":
            edges = g.edge_list()
            if edges:
                u, v, _ = edges[a % len(edges)]
                g.remove_edge(u, v)
        elif op == "remove_vertex":
            if len(vs) > 2:
                g.remove_vertex(vs[a % len(vs)])
    order = g.vertex_list()
    assert view_bits(g.to_csr(order)) == fresh_bits(g, order)
