"""Tests for structural graph analyses."""


from repro.graph import (
    Graph,
    barabasi_albert,
    connected_components,
    degree_histogram,
    is_connected,
    largest_component,
)
from repro.graph.validation import check_symmetry, powerlaw_exponent_estimate

from ..conftest import cycle_graph, path_graph


def two_component_graph():
    g = path_graph(4)
    g.add_edges([(10, 11), (11, 12)])
    return g


def test_connected_components_sorted_by_size():
    comps = connected_components(two_component_graph())
    assert len(comps) == 2
    assert comps[0] == [0, 1, 2, 3]
    assert comps[1] == [10, 11, 12]


def test_is_connected():
    assert is_connected(cycle_graph(5))
    assert not is_connected(two_component_graph())
    assert is_connected(Graph())  # vacuous


def test_largest_component():
    assert largest_component(two_component_graph()) == [0, 1, 2, 3]
    assert largest_component(Graph()) == []


def test_degree_histogram():
    hist = degree_histogram(path_graph(4))
    assert hist == {1: 2, 2: 2}


def test_check_symmetry_passes():
    check_symmetry(barabasi_albert(30, 2, seed=0))


def test_powerlaw_estimate_none_for_tiny_graph():
    assert powerlaw_exponent_estimate(path_graph(4)) is None


def test_powerlaw_estimate_reasonable():
    g = barabasi_albert(1500, 3, seed=0)
    gamma = powerlaw_exponent_estimate(g, dmin=3)
    assert gamma is not None and gamma > 1.5
