"""Tests for sub-graph views and local-subgraph extraction (DD support)."""

import pytest

from repro.graph import Graph, extract_local_subgraph, induced_subgraph

from ..conftest import complete_graph, path_graph


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = path_graph(5)
        sub = induced_subgraph(g, [1, 2, 3])
        assert sub.vertex_list() == [1, 2, 3]
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert sub.num_edges == 2

    def test_weights_preserved(self):
        g = Graph.from_edges([(0, 1, 3.5), (1, 2, 1.5)])
        sub = induced_subgraph(g, [0, 1])
        assert sub.weight(0, 1) == 3.5

    def test_empty_selection(self):
        assert induced_subgraph(path_graph(3), []).num_vertices == 0


class TestExtractLocalSubgraph:
    def owner_map(self):
        # 0,1 -> rank 0; 2,3 -> rank 1
        return {0: 0, 1: 0, 2: 1, 3: 1}

    def test_internal_structure(self):
        g = path_graph(4)
        sub = extract_local_subgraph(g, [0, 1], self.owner_map(), 0)
        assert sub.owned == [0, 1]
        assert sub.local_graph.has_edge(0, 1)
        assert sub.local_graph.num_edges == 1

    def test_cut_edges_and_boundaries(self):
        g = path_graph(4)
        sub = extract_local_subgraph(g, [0, 1], self.owner_map(), 0)
        assert sub.cut_edges == [(1, 2, 1.0)]
        assert sub.external_boundary == frozenset({2})
        assert sub.local_boundary == frozenset({1})
        assert sub.cut_size == 1

    def test_cut_edges_by_local(self):
        g = complete_graph(4)
        sub = extract_local_subgraph(g, [0, 1], self.owner_map(), 0)
        grouped = sub.cut_edges_by_local()
        assert set(grouped) == {0, 1}
        assert sorted(x for x, _w in grouped[0]) == [2, 3]

    def test_inconsistent_assignment_detected(self):
        g = path_graph(3)
        # vertex 1 claims rank 0 in the map but is not in the owned list
        with pytest.raises(ValueError):
            extract_local_subgraph(g, [0], {0: 0, 1: 0, 2: 1}, 0)

    def test_isolated_block(self):
        g = path_graph(4)
        g.add_vertex(9)
        owner = {**self.owner_map(), 9: 0}
        sub = extract_local_subgraph(g, [0, 1, 9], owner, 0)
        assert 9 in sub.owned
        assert sub.local_graph.degree(9) == 0
