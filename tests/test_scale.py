"""Mid-scale soak tests (marked slow; run with ``-m slow``).

The regular suite runs on tiny graphs for speed; these verify nothing
breaks structurally at a few thousand vertices and 16 workers — the shape
of the paper's configuration, reduced ~25x.
"""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import community_workload
from repro.centrality import exact_closeness
from repro.runtime import check_cluster_invariants

pytestmark = pytest.mark.slow


def test_midscale_dynamic_exact():
    wl = community_workload(2000, 200, seed=99, inject_step=3)
    engine = AnytimeAnywhereCloseness(
        wl.base, AnytimeConfig(nprocs=16, collect_snapshots=False)
    )
    engine.setup()
    result = engine.run(changes=wl.stream, strategy="cutedge")
    check_cluster_invariants(engine.cluster)
    exact = exact_closeness(wl.final)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


def test_midscale_repartition_and_fault():
    wl = community_workload(1500, 400, seed=98, inject_step=2)
    engine = AnytimeAnywhereCloseness(
        wl.base, AnytimeConfig(nprocs=16, collect_snapshots=False)
    )
    engine.setup()
    engine.run(changes=wl.stream, strategy="repartition")
    engine.crash_worker(7)
    result = engine.run()
    check_cluster_invariants(engine.cluster)
    exact = exact_closeness(wl.final)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)
