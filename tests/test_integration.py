"""End-to-end integration: long mixed histories with invariant audits.

These tests drive the full feature matrix through one engine instance —
growth batches with different placements, deletions, repartitioning,
rebalancing, worker crashes, budgeted interruptions — checking cluster
invariants and exactness along the way.  This is the closest thing to a
production soak test the suite has.
"""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ChangeStream
from repro.bench import community_workload
from repro.centrality import exact_closeness, exact_harmonic
from repro.core.strategies import (
    NeighborMajorityPS,
    RebalancedStrategy,
    RepartitionStrategy,
    VertexAdditionStrategy,
)
from repro.graph import ChangeBatch, barabasi_albert, diff_graphs
from repro.graph.changes import EdgeDeletion, VertexAddition, VertexDeletion
from repro.runtime import check_cluster_invariants


def assert_exact(engine, graph):
    exact = exact_closeness(graph)
    got = engine.current_closeness()
    assert set(got) == set(exact)
    for v, c in exact.items():
        assert got[v] == pytest.approx(c, abs=1e-9), f"vertex {v}"


def test_long_mixed_lifecycle():
    base = barabasi_albert(150, 3, seed=10)
    truth = base.copy()
    engine = AnytimeAnywhereCloseness(
        base, AnytimeConfig(nprocs=6, seed=10, collect_snapshots=False)
    )
    engine.setup()
    engine.run()
    check_cluster_invariants(engine.cluster)
    assert_exact(engine, truth)

    # episode 1: small community joins via cutedge placement
    wl1 = community_workload(150, 18, seed=11, inject_step=engine._next_step + 1)
    for _s, b in wl1.stream:
        b.apply_to(truth)
    engine.run(changes=wl1.stream, strategy="cutedge")
    check_cluster_invariants(engine.cluster)
    assert_exact(engine, truth)

    # episode 2: a hub is deleted and a bridge edge removed
    hub = max(truth.vertices(), key=truth.degree)
    edge = next(
        (u, v) for u, v, _w in truth.edges() if hub not in (u, v)
    )
    batch = ChangeBatch(
        vertex_deletions=[VertexDeletion(hub)],
        edge_deletions=[EdgeDeletion(*edge)],
    )
    truth.remove_edge(*edge)
    truth.remove_vertex(hub)
    stream = ChangeStream({engine._next_step + 1: batch})
    engine.run(changes=stream, strategy="roundrobin")
    check_cluster_invariants(engine.cluster)
    assert_exact(engine, truth)

    # episode 3: large batch triggers repartition, then a worker dies;
    # the batch is generated against the *current* truth graph ids
    nxt = truth.next_vertex_id()
    additions = [
        VertexAddition(nxt + i, edges=((sorted(truth.vertices())[i], 1.0),))
        for i in range(25)
    ]
    batch3 = ChangeBatch(vertex_additions=additions)
    batch3.apply_to(truth)
    stream3 = ChangeStream({engine._next_step + 1: batch3})
    engine.run(changes=stream3, strategy=RepartitionStrategy())
    check_cluster_invariants(engine.cluster)
    assert_exact(engine, truth)

    engine.crash_worker(3)
    engine.run()
    check_cluster_invariants(engine.cluster)
    assert_exact(engine, truth)

    # other measures stay exact too
    harmonic = engine.current_measure("harmonic")
    exact_h = exact_harmonic(truth)
    for v, c in exact_h.items():
        assert harmonic[v] == pytest.approx(c, abs=1e-9)


def test_snapshot_replay_via_diff():
    """Evolve a graph externally, replay the diff through the engine."""
    old = barabasi_albert(100, 2, seed=20)
    new = old.copy()
    nxt = new.next_vertex_id()
    for i in range(10):
        new.add_vertex(nxt + i)
        new.add_edge(nxt + i, i * 3, 1.0)
    new.remove_vertex(50)
    e = next((u, v) for u, v, _w in new.edges() if u < 40 and v < 40)
    new.remove_edge(*e)

    batch = diff_graphs(old, new)
    engine = AnytimeAnywhereCloseness(
        old, AnytimeConfig(nprocs=4, collect_snapshots=False)
    )
    engine.setup()
    engine.run(changes=ChangeStream({1: batch}), strategy="roundrobin")
    check_cluster_invariants(engine.cluster)
    assert_exact(engine, new)


def test_rebalanced_skewed_growth_with_fault():
    wl = community_workload(120, 30, seed=21, inject_step=1, n_communities=1)
    strategy = RebalancedStrategy(
        VertexAdditionStrategy(NeighborMajorityPS()), threshold=0.15
    )
    engine = AnytimeAnywhereCloseness(
        wl.base, AnytimeConfig(nprocs=4, seed=21, collect_snapshots=False)
    )
    engine.setup()
    engine.run(changes=wl.stream, strategy=strategy)
    check_cluster_invariants(engine.cluster)
    engine.crash_worker(0)
    result = engine.run()
    check_cluster_invariants(engine.cluster)
    assert result.load.vertex_imbalance <= 0.5
    assert_exact(engine, wl.final)


def test_budget_interleaved_with_changes():
    wl = community_workload(100, 16, seed=22, inject_step=3)
    engine = AnytimeAnywhereCloseness(
        wl.base, AnytimeConfig(nprocs=4, collect_snapshots=False)
    )
    engine.setup()
    # tiny budgets: crawl through the timeline one sliver at a time
    for _ in range(200):
        result = engine.run(
            changes=wl.stream, strategy="roundrobin",
            budget_modeled_seconds=1e-4,
        )
        if result.converged:
            break
    assert result.converged
    check_cluster_invariants(engine.cluster)
    assert_exact(engine, wl.final)
