"""Admission-policy unit tests: batching a continuous feed."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graph.changes import VertexAddition
from repro.serve import (
    DeadlineAdmission,
    HybridAdmission,
    PendingChange,
    SizeAdmission,
)


def _queue(n, tick=0, seconds=0.0):
    return tuple(
        PendingChange(VertexAddition(100 + i, ((0, 1.0),)), tick, seconds)
        for i in range(n)
    )


class TestSizeAdmission:
    def test_holds_below_threshold(self):
        pol = SizeAdmission(max_events=4)
        assert pol.admit(_queue(3), tick=9, now=1.0) == 0
        assert pol.admit((), tick=9, now=1.0) == 0

    def test_admits_exactly_max_events(self):
        pol = SizeAdmission(max_events=4)
        assert pol.admit(_queue(4), tick=0, now=0.0) == 4
        # a backlog still admits one batch at a time
        assert pol.admit(_queue(11), tick=0, now=0.0) == 4

    def test_rejects_bad_ctor(self):
        with pytest.raises(ConfigurationError):
            SizeAdmission(max_events=0)


class TestDeadlineAdmission:
    def test_empty_queue_never_fires(self):
        pol = DeadlineAdmission(max_delay_ticks=0)
        assert pol.admit((), tick=50, now=9.9) == 0

    def test_tick_deadline_flushes_whole_queue(self):
        pol = DeadlineAdmission(max_delay_ticks=3)
        q = _queue(5, tick=10)
        assert pol.admit(q, tick=12, now=0.0) == 0
        assert pol.admit(q, tick=13, now=0.0) == 5

    def test_modeled_seconds_deadline(self):
        pol = DeadlineAdmission(max_delay_ticks=10**6, max_delay_seconds=0.5)
        q = _queue(2, tick=0, seconds=1.0)
        assert pol.admit(q, tick=1, now=1.4) == 0
        assert pol.admit(q, tick=1, now=1.5) == 2

    def test_rejects_bad_ctor(self):
        with pytest.raises(ConfigurationError):
            DeadlineAdmission(max_delay_ticks=-1)
        with pytest.raises(ConfigurationError):
            DeadlineAdmission(max_delay_seconds=-0.1)


class TestHybridAdmission:
    def test_size_wins_when_full(self):
        pol = HybridAdmission(max_events=4, max_delay_ticks=2)
        assert pol.admit(_queue(6, tick=0), tick=0, now=0.0) == 4

    def test_deadline_flushes_partial_batch(self):
        pol = HybridAdmission(max_events=8, max_delay_ticks=2)
        q = _queue(3, tick=5)
        assert pol.admit(q, tick=6, now=0.0) == 0
        assert pol.admit(q, tick=7, now=0.0) == 3

    def test_holds_fresh_partial_batch(self):
        pol = HybridAdmission(max_events=8, max_delay_ticks=4)
        assert pol.admit(_queue(3, tick=5), tick=5, now=0.0) == 0
