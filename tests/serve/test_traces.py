"""Churn-trace generation and JSONL trace-file round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graph.changes import (
    EdgeDeletion,
    EdgeReweight,
    VertexAddition,
)
from repro.serve import (
    TRACE_SHAPES,
    load_change_trace,
    save_change_trace,
    synthesize_churn,
)


@pytest.mark.parametrize("shape", sorted(TRACE_SHAPES))
def test_shapes_generate_valid_prefix_safe_feeds(shape):
    trace = synthesize_churn(shape, n_base=60, ticks=16, seed=4)
    assert trace.name == shape
    assert trace.num_events > 0
    base_vertices = set(trace.base.vertices())
    base_edges = {
        frozenset((u, v)) for u, v, _w in trace.base.edges()
    }
    known = set(base_vertices)
    deleted = set()
    last_tick = 0
    for tick, ev in trace.events:
        assert tick >= last_tick, "events must be tick-ordered"
        last_tick = tick
        assert 0 <= tick < trace.ticks
        if isinstance(ev, VertexAddition):
            assert ev.vertex not in known, "duplicate vertex id"
            for t, w in ev.edges:
                # prefix invariant: targets are base vertices or
                # vertices introduced earlier in the feed
                assert t in known
                assert w > 0
            known.add(ev.vertex)
        elif isinstance(ev, (EdgeDeletion, EdgeReweight)):
            key = frozenset((ev.u, ev.v))
            assert key in base_edges, "must target a base edge"
            if isinstance(ev, EdgeDeletion):
                assert key not in deleted, "edge deleted twice"
                deleted.add(key)


@pytest.mark.parametrize("shape", sorted(TRACE_SHAPES))
def test_synthesis_is_deterministic(shape):
    a = synthesize_churn(shape, n_base=40, ticks=10, seed=9)
    b = synthesize_churn(shape, n_base=40, ticks=10, seed=9)
    assert a.events == b.events
    assert sorted(a.base.edges()) == sorted(b.base.edges())
    c = synthesize_churn(shape, n_base=40, ticks=10, seed=10)
    assert c.events != a.events


def test_unknown_shape_and_bad_args_raise():
    with pytest.raises(ConfigurationError):
        synthesize_churn("no-such-shape")
    with pytest.raises(ConfigurationError):
        synthesize_churn("steady-small", n_base=2)
    with pytest.raises(ConfigurationError):
        synthesize_churn("steady-small", ticks=0)


def test_jsonl_roundtrip_identity(tmp_path):
    trace = synthesize_churn("bursty-communities", n_base=40, ticks=8, seed=2)
    path = tmp_path / "trace.jsonl"
    save_change_trace(path, trace.events)
    assert load_change_trace(path) == list(trace.events)
    # canonical encoding: re-saving the loaded feed is byte-identical
    text = path.read_text(encoding="utf-8")
    save_change_trace(path, load_change_trace(path))
    assert path.read_text(encoding="utf-8") == text


def test_jsonl_file_validates_against_schema(tmp_path):
    import validate_trace
    from validate_change_trace import DEFAULT_SCHEMA

    trace = synthesize_churn("steady-small", n_base=40, ticks=8, seed=2)
    path = tmp_path / "trace.jsonl"
    save_change_trace(path, trace.events)
    assert validate_trace.validate_trace_file(path, DEFAULT_SCHEMA) == []
