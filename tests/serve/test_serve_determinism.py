"""Bitwise-determinism pins for the serve loop.

The streaming service inherits the engine's core guarantee: the same
trace + seed must yield identical closeness values, identical per-tick
records, and identical policy decisions — across repeat runs and across
the serial and process backends.
"""

from __future__ import annotations

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.serve import HybridAdmission, UpdateService, synthesize_churn


def _serve_run(backend: str):
    trace = synthesize_churn("bursty-communities", n_base=40, ticks=10, seed=6)
    eng = AnytimeAnywhereCloseness(
        trace.base,
        AnytimeConfig(
            nprocs=4, seed=6, collect_snapshots=False, backend=backend
        ),
    )
    eng.setup()
    svc = UpdateService(
        eng,
        admission=HybridAdmission(max_events=6, max_delay_ticks=3),
        strategy="auto",
    )
    try:
        for t in range(trace.ticks):
            at_t = trace.events_at(t)
            if at_t:
                svc.feed(at_t)
            svc.step()
        result = svc.drain()
    finally:
        eng.close()
    return (
        result.closeness,
        tuple(tick.line() for tick in svc.ticks),
        tuple(d.line() for d in svc.policy_decisions),
    )


def test_serve_repeat_runs_are_bitwise_identical():
    first = _serve_run("serial")
    second = _serve_run("serial")
    assert first[0] == second[0]   # closeness, exact float equality
    assert first[1] == second[1]   # per-tick records
    assert first[2] == second[2]   # policy decisions


def test_serve_process_backend_matches_serial_bitwise():
    serial = _serve_run("serial")
    process = _serve_run("process")
    assert serial[0] == process[0]
    assert serial[1] == process[1]
    assert serial[2] == process[2]
