"""Session facade: lifecycle, streaming reads, closeness equivalence."""

from __future__ import annotations

import pytest

import repro
from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.centrality import exact_closeness
from repro.graph import barabasi_albert
from repro.graph.changes import VertexAddition
from repro.serve import Session, SizeAdmission


def _graph(n=40, seed=3):
    return barabasi_albert(n, 2, seed=seed)


def test_session_context_manager_lifecycle():
    g = _graph()
    with repro.session(g, AnytimeConfig(nprocs=4)) as s:
        assert isinstance(s, Session)
        assert s.engine.cluster is not None
        result = s.result()
        assert result.converged
    # close() ran; a fresh session over the same graph still works
    with repro.session(g, AnytimeConfig(nprocs=4)) as s2:
        assert s2.result().closeness == result.closeness


def test_session_feed_step_result():
    g = _graph()
    with repro.session(
        g, AnytimeConfig(nprocs=4), admission=SizeAdmission(max_events=2)
    ) as s:
        s.feed([VertexAddition(100, ((0, 1.0), (1, 1.0))),
                VertexAddition(101, ((100, 1.0),))])
        tick = s.step()
        assert tick.admitted == 2
        result = s.result()
    assert 100 in result.closeness and 101 in result.closeness
    exact = exact_closeness(s.engine.graph)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


def test_session_signals_are_readable_and_passive():
    g = _graph()
    with repro.session(g, AnytimeConfig(nprocs=4)) as s:
        sig = s.signals
        assert sig.active_workers == 4.0
        assert sig.graph_vertices == float(g.num_vertices)
        assert sig.vertex_imbalance >= 0.0
        assert set(sig.per_rank("repro_pending_rows")) == {0, 1, 2, 3}
        # reading signals twice must not change the run
        before = s.engine.modeled_seconds
        s.signals
        assert s.engine.modeled_seconds == before


def test_closeness_is_bitwise_identical_to_manual_engine():
    """repro.closeness() (now built on the session facade) must produce
    byte-identical results to driving the engine by hand."""
    g1, g2 = _graph(seed=11), _graph(seed=11)
    via_facade = repro.closeness(g1, nprocs=4)
    engine = AnytimeAnywhereCloseness(
        g2, AnytimeConfig(nprocs=4, collect_snapshots=True)
    )
    engine.setup()
    by_hand = engine.run(strategy="roundrobin")
    assert via_facade.closeness == by_hand.closeness
    assert via_facade.modeled_seconds == by_hand.modeled_seconds
    assert via_facade.rc_steps == by_hand.rc_steps


def test_session_run_passthrough_matches_closeness():
    g1, g2 = _graph(seed=5), _graph(seed=5)
    via_facade = repro.closeness(g1, nprocs=4)
    with repro.session(g2, AnytimeConfig(nprocs=4, collect_snapshots=True)) as s:
        via_session = s.run(strategy="roundrobin")
    assert via_session.closeness == via_facade.closeness
    assert via_session.modeled_seconds == via_facade.modeled_seconds


def test_session_accepts_auto_strategy_everywhere():
    g = _graph()
    result = repro.closeness(g, nprocs=4, strategy="auto")
    assert result.converged
    with repro.session(g, AnytimeConfig(nprocs=4)) as s:
        assert s.run(strategy="auto").closeness == result.closeness
