"""SLO determinism pins for the serve loop.

The alert stream is a modeled-clock artifact: the same churn trace,
seed, and SLO specs must yield byte-identical alert lines across repeat
runs and across the serial and process backends — including under a
seeded fault plan that degrades ticks.  Evaluation is read-only, so
serve results stay bitwise-identical with SLOs on or off.
"""

from __future__ import annotations

import json

from repro import (
    AnytimeAnywhereCloseness,
    AnytimeConfig,
    FaultPlan,
    HealthPolicy,
    ResilienceConfig,
)
from repro.obs import load_events
from repro.obs.registry import SLO_VIOLATIONS
from repro.obs.report import render_report
from repro.obs.slo import SLOSpec
from repro.serve import HybridAdmission, UpdateService, synthesize_churn

# a floor the bursty scenario actually breaches: early ticks rebuild
# whole communities, so the sparse-delta hit rate starts near zero
SPECS = (
    SLOSpec(name="hit-floor", kind="delta_hit_rate", threshold=0.2,
            window=4, budget_fraction=0.25),
    SLOSpec(name="lat", kind="tick_latency", threshold=0.002,
            window=4, percentile=0.5),
    SLOSpec(name="degr", kind="degraded_budget", threshold=0,
            window=8, budget_fraction=0.25),
)


def _slo_run(backend, *, observers=(), resilience=None, health=None,
             specs=SPECS):
    trace = synthesize_churn("bursty-communities", n_base=40, ticks=10, seed=6)
    eng = AnytimeAnywhereCloseness(
        trace.base,
        AnytimeConfig(
            nprocs=4,
            seed=6,
            collect_snapshots=False,
            backend=backend,
            observers=observers,
            resilience=resilience,
            health=health,
        ),
    )
    eng.setup()
    svc = UpdateService(
        eng,
        admission=HybridAdmission(max_events=6, max_delay_ticks=3),
        strategy="auto",
        slo=specs,
    )
    try:
        for t in range(trace.ticks):
            at_t = trace.events_at(t)
            if at_t:
                svc.feed(at_t)
            svc.step()
        result = svc.drain()
    finally:
        eng.close()
    return result, svc


def _alert_lines(svc):
    return tuple(a.line() for a in svc.slo_alerts)


class TestAlertDeterminism:
    def test_alerts_fire_and_repeat_runs_pin_bytes(self):
        _, first = _slo_run("serial")
        _, second = _slo_run("serial")
        lines = _alert_lines(first)
        assert lines  # the specs are chosen to actually transition
        assert any("state=firing" in line for line in lines)
        assert lines == _alert_lines(second)

    def test_alert_stream_identical_across_backends(self):
        _, serial = _slo_run("serial")
        _, process = _slo_run("process")
        assert _alert_lines(serial) == _alert_lines(process)
        assert serial.slo.status() == process.slo.status()

    def test_slo_evaluation_is_read_only(self):
        with_slo, svc = _slo_run("serial")
        without, bare = _slo_run("serial", specs=None)
        assert bare.slo_alerts == []
        assert with_slo.closeness == without.closeness
        assert [t.line() for t in svc.ticks] == [
            t.line() for t in bare.ticks
        ]


class TestDegradedServe:
    # two same-step crashes of one rank exceed crash_budget=1 inside a
    # single tick's run (per-tick supervisors reset counts between
    # ticks), so escalation degrades gracefully instead of recovering
    PLAN = FaultPlan(seed=13, crashes=((4, 0), (4, 0), (5, 1), (5, 1)))
    RES = ResilienceConfig(recovery="escalate", fault_plan=PLAN)
    HEALTH = HealthPolicy(crash_budget=1, graceful_degradation=True)

    def _degraded_run(self, backend):
        return _slo_run(backend, resilience=self.RES, health=self.HEALTH)

    def test_degraded_ticks_burn_budget_not_crash(self):
        result, svc = self._degraded_run("serial")
        assert result.degraded
        fired = [a for a in svc.slo_alerts
                 if a.slo == "degr" and a.state == "firing"]
        assert len(fired) == 1
        assert fired[0].bad_ticks >= 1 and fired[0].burn_rate > 1.0
        assert "degr" in svc.slo.firing

    def test_degraded_alert_stream_pins_across_backends(self):
        _, serial = self._degraded_run("serial")
        _, process = self._degraded_run("process")
        lines = _alert_lines(serial)
        assert lines == _alert_lines(process)
        assert _alert_lines(self._degraded_run("serial")[1]) == lines


class TestAlertExport:
    def test_alerts_flow_through_jsonl_exporter(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        _, svc = _slo_run("serial", observers=(f"jsonl:{path}",))
        assert svc.slo_alerts
        events = load_events(path)
        alerts = [e for e in events if e.get("kind") == "alert"]
        assert len(alerts) == len(svc.slo_alerts)
        for ev, alert in zip(alerts, svc.slo_alerts):
            assert ev["level"] == "slo"
            assert ev["name"] == alert.slo
            assert ev["step"] == alert.tick
            assert ev["attrs"]["state"] == alert.state
        # every line is schema-clean JSON with sorted keys
        for raw in path.read_text(encoding="utf-8").splitlines():
            doc = json.loads(raw)
            assert list(doc) == sorted(doc)

    def test_report_renders_slo_section(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        _, svc = _slo_run("serial", observers=(f"jsonl:{path}",))
        text = render_report(load_events(path))
        assert "slo alerts (state transitions):" in text
        firing = sum(1 for a in svc.slo_alerts if a.state == "firing")
        assert f"{firing} firing" in text

    def test_violation_counter_counts_firing_transitions(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        _, svc = _slo_run("serial", observers=(f"jsonl:{path}",))
        # the flush names carry labels: repro_slo_violations_total{slo="x"}
        metrics = [
            e for e in load_events(path)
            if e.get("kind") == "metric"
            and e.get("name", "").startswith(SLO_VIOLATIONS)
        ]
        fired = {}
        for a in svc.slo_alerts:
            if a.state == "firing":
                fired[a.slo] = fired.get(a.slo, 0) + 1
        got = {}
        for e in metrics:
            label = e["name"].split('slo="', 1)[1].rstrip('"}')
            got[label] = e["attrs"]["value"]
        assert got == fired and sum(got.values()) > 0
