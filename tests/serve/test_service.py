"""UpdateService behavior: the streaming ingest loop over an engine."""

from __future__ import annotations

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.centrality import exact_closeness
from repro.errors import ConfigurationError
from repro.graph import Graph, barabasi_albert
from repro.graph.changes import EdgeDeletion, VertexAddition
from repro.serve import (
    HybridAdmission,
    SizeAdmission,
    UpdateService,
    batch_to_events,
    events_to_batch,
)


def _engine(n=40, nprocs=4, seed=3):
    g = barabasi_albert(n, 2, seed=seed)
    eng = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=nprocs, seed=seed, collect_snapshots=False)
    )
    eng.setup()
    return eng


def test_events_to_batch_roundtrip():
    events = [
        VertexAddition(100, ((0, 1.0),)),
        EdgeDeletion(0, 1),
        VertexAddition(101, ((100, 2.0),)),
    ]
    batch = events_to_batch(events)
    assert len(batch.vertex_additions) == 2
    assert len(batch.edge_deletions) == 1
    # flattening emits safe application order: additions first
    flat = batch_to_events(batch)
    assert flat[0].vertex == 100 and flat[1].vertex == 101
    assert isinstance(flat[2], EdgeDeletion)


def test_events_to_batch_rejects_non_events():
    with pytest.raises(ConfigurationError):
        events_to_batch(["not-an-event"])


def test_empty_flush_is_a_refinement_tick():
    svc = UpdateService(_engine(), strategy="roundrobin")
    tick = svc.flush()
    assert tick.admitted == 0
    assert tick.strategy == "" and tick.reason == ""
    assert tick.rc_steps == 1
    assert svc.batches_formed == 0
    # the tick still advanced the modeled clock deterministically
    assert tick.modeled_seconds > 0.0


def test_deadline_triggered_partial_batch():
    svc = UpdateService(
        _engine(),
        admission=HybridAdmission(max_events=8, max_delay_ticks=2),
        strategy="roundrobin",
    )
    svc.feed([VertexAddition(100, ((0, 1.0),)),
              VertexAddition(101, ((1, 1.0),))])
    held = svc.step()          # tick 0: fresh partial batch is held
    assert held.admitted == 0 and svc.pending_events == 2
    svc.step()                 # tick 1: still inside the deadline
    fired = svc.step()         # tick 2: staleness bound expires
    assert fired.admitted == 2
    assert fired.strategy == "roundrobin"
    assert svc.pending_events == 0


def test_mixed_add_delete_batch_routes_through_composite():
    """One admitted batch carrying additions AND a base-edge deletion must
    apply cleanly whatever strategy the policy picks."""
    eng = _engine()
    svc = UpdateService(
        eng, admission=SizeAdmission(max_events=3), strategy="auto"
    )
    # delete a base edge that keeps the graph connected (BA m=2 gives
    # every late vertex two anchors), plus two new vertices
    base_edge = next(
        (u, v) for u, v, _w in sorted(eng.graph.edges())
        if eng.graph.degree(u) >= 3 and eng.graph.degree(v) >= 3
    )
    svc.feed([
        VertexAddition(100, ((0, 1.0), (1, 1.0))),
        VertexAddition(101, ((100, 1.0),)),
        EdgeDeletion(*base_edge),
    ])
    tick = svc.step()
    assert tick.admitted == 3
    assert not eng.graph.has_edge(*base_edge)
    assert 100 in eng.graph and 101 in eng.graph
    result = svc.drain()
    assert result.converged
    exact = exact_closeness(eng.graph)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


def test_policy_switches_strategy_mid_stream():
    """A trickle batch and a bulk batch through the same service must
    route through different strategies (ThresholdPolicy is pure batch
    arithmetic, so the switch is deterministic by construction)."""
    g = barabasi_albert(60, 2, seed=3)
    eng = AnytimeAnywhereCloseness(
        g,
        AnytimeConfig(
            nprocs=4, seed=3, collect_snapshots=False,
            strategy_policy="threshold",
        ),
    )
    eng.setup()
    svc = UpdateService(
        eng, admission=SizeAdmission(max_events=2), strategy="auto"
    )
    # batch 1: a two-vertex trickle (<= 5% of |V|) -> RoundRobin-PS
    svc.feed([
        VertexAddition(100 + i, ((i, 1.0), (i + 1, 1.0))) for i in range(2)
    ])
    first = svc.step()
    # batch 2: six additions at once (> 5% of |V|) -> Repartition-S
    svc.admission = SizeAdmission(max_events=6)
    svc.feed([
        VertexAddition(200 + i, ((i, 1.0), (i + 1, 1.0))) for i in range(6)
    ])
    second = svc.step()
    decisions = svc.policy_decisions
    assert len(decisions) == 2
    assert [d.strategy for d in decisions] == [first.strategy, second.strategy]
    assert (first.strategy, first.reason) == ("roundrobin", "small-batch")
    assert (second.strategy, second.reason) == ("repartition", "large-batch")


def test_summaries_emitted_at_interval():
    svc = UpdateService(
        _engine(), admission=SizeAdmission(max_events=2),
        strategy="roundrobin", summary_interval=2,
    )
    svc.feed([VertexAddition(100, ((0, 1.0),)),
              VertexAddition(101, ((1, 1.0),))])
    for _ in range(4):
        svc.step()
    assert len(svc.summaries) == 2
    summ = svc.summaries[0]
    assert summ.tick == 2
    assert summ.events_admitted == 2
    assert summ.strategy_counts == {"roundrobin": 1}
    assert len(summ.lines()) == 5


def test_rejects_bad_summary_interval():
    with pytest.raises(ConfigurationError):
        UpdateService(_engine(), summary_interval=-1)
