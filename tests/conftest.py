"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Optional

import pytest

# the repro_lint developer tool lives under tools/, outside the installed
# package; make it importable for tests/test_repro_lint.py
_TOOLS = str(Path(__file__).resolve().parent.parent / "tools")
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ChangeStream
from repro.centrality import exact_closeness
from repro.graph import Graph, barabasi_albert


def path_graph(n: int) -> Graph:
    """0 - 1 - 2 - ... - (n-1)."""
    return Graph.from_edges([(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    return Graph.from_edges(
        [(i, (i + 1) % n) for i in range(n)]
    )


def star_graph(n_leaves: int) -> Graph:
    """Hub 0 with leaves 1..n."""
    return Graph.from_edges([(0, i) for i in range(1, n_leaves + 1)])


def complete_graph(n: int) -> Graph:
    return Graph.from_edges(
        [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols grid; vertex id = r * cols + c."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph.from_edges(edges)


def run_and_verify(
    base: Graph,
    *,
    changes: Optional[ChangeStream] = None,
    strategy: str = "roundrobin",
    nprocs: int = 4,
    final: Optional[Graph] = None,
    seed: int = 0,
    tol: float = 1e-9,
) -> Dict[int, float]:
    """Run the engine and assert the result matches exact closeness."""
    engine = AnytimeAnywhereCloseness(
        base, AnytimeConfig(nprocs=nprocs, seed=seed, collect_snapshots=False)
    )
    engine.setup()
    result = engine.run(changes=changes, strategy=strategy)
    target = final if final is not None else base
    exact = exact_closeness(target)
    assert set(result.closeness) == set(exact)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=tol), f"vertex {v}"
    return result.closeness


@pytest.fixture
def ba_graph() -> Graph:
    return barabasi_albert(120, 3, seed=4)


@pytest.fixture
def small_ba() -> Graph:
    return barabasi_albert(40, 2, seed=4)
