"""Betweenness centrality: exact Brandes and pivot sampling."""

import pytest

from repro.centrality import approximate_betweenness, exact_betweenness
from repro.errors import ConfigurationError
from repro.graph import Graph, barabasi_albert, random_weights

from ..conftest import complete_graph, path_graph, star_graph


class TestExact:
    def test_path_middle_dominates(self):
        b = exact_betweenness(path_graph(5), normalized=False)
        # vertex 2 lies on all 4 pairs crossing it: (0,3),(0,4),(1,3),(1,4)
        assert b[2] == pytest.approx(4.0)
        assert b[0] == 0.0

    def test_star_hub(self):
        b = exact_betweenness(star_graph(5), normalized=False)
        assert b[0] == pytest.approx(4 * 5 / 2)  # all C(5,2)=10 leaf pairs
        assert all(b[i] == 0.0 for i in range(1, 6))

    def test_complete_graph_zero(self):
        b = exact_betweenness(complete_graph(6))
        assert all(v == 0.0 for v in b.values())

    def test_normalization(self):
        raw = exact_betweenness(path_graph(6), normalized=False)
        norm = exact_betweenness(path_graph(6), normalized=True)
        scale = 2.0 / (5 * 4)
        for v in raw:
            assert norm[v] == pytest.approx(raw[v] * scale)

    def test_matches_networkx_unweighted(self):
        nx = pytest.importorskip("networkx")
        g = barabasi_albert(60, 2, seed=1)
        ng = nx.Graph()
        ng.add_edges_from((u, v) for u, v, _w in g.edges())
        ref = nx.betweenness_centrality(ng, normalized=True)
        ours = exact_betweenness(g)
        for v in ref:
            assert ours[v] == pytest.approx(ref[v], abs=1e-9)

    def test_matches_networkx_weighted(self):
        nx = pytest.importorskip("networkx")
        g = random_weights(barabasi_albert(40, 2, seed=2), 1.0, 9.0, seed=3)
        ng = nx.Graph()
        ng.add_weighted_edges_from(g.edges())
        ref = nx.betweenness_centrality(ng, weight="weight", normalized=True)
        ours = exact_betweenness(g)
        for v in ref:
            assert ours[v] == pytest.approx(ref[v], abs=1e-9)

    def test_disconnected(self):
        g = path_graph(3)
        g.add_edges([(10, 11), (11, 12)])
        b = exact_betweenness(g, normalized=False)
        assert b[1] == 1.0
        assert b[11] == 1.0

    def test_empty_and_singleton(self):
        assert exact_betweenness(Graph()) == {}
        g = Graph()
        g.add_vertex(0)
        assert exact_betweenness(g) == {0: 0.0}


class TestApproximate:
    def test_all_pivots_is_exact(self):
        g = barabasi_albert(30, 2, seed=4)
        exact = exact_betweenness(g)
        approx = approximate_betweenness(g, 30, seed=0)
        for v in exact:
            assert approx[v] == pytest.approx(exact[v], abs=1e-12)

    def test_more_pivots_more_accurate(self):
        g = barabasi_albert(100, 2, seed=5)
        exact = exact_betweenness(g)

        def err(k):
            approx = approximate_betweenness(g, k, seed=6)
            return sum(abs(approx[v] - exact[v]) for v in exact)

        assert err(60) < err(5)

    def test_top_vertex_found_with_few_pivots(self):
        g = star_graph(20)
        approx = approximate_betweenness(g, 4, seed=7)
        assert max(approx, key=approx.get) == 0

    def test_invalid_pivots(self):
        with pytest.raises(ConfigurationError):
            approximate_betweenness(path_graph(4), 0)

    def test_empty_graph(self):
        assert approximate_betweenness(Graph(), 3) == {}
