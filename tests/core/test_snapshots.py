"""The anytime property: snapshots are valid and monotonically improving."""

import numpy as np
import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import community_workload
from repro.centrality import apsp_dijkstra
from repro.graph import barabasi_albert


def run_with_snapshots(graph, nprocs=4, changes=None, strategy="roundrobin"):
    engine = AnytimeAnywhereCloseness(
        graph, AnytimeConfig(nprocs=nprocs, collect_snapshots=True)
    )
    engine.setup()
    result = engine.run(changes=changes, strategy=strategy)
    return engine, result


def test_snapshot_per_step_plus_ia():
    g = barabasi_albert(50, 2, seed=0)
    _engine, result = run_with_snapshots(g)
    assert len(result.snapshots) == result.rc_steps + 1
    assert result.snapshots[0].step == -1


def test_resolved_fraction_monotone_static():
    g = barabasi_albert(60, 3, seed=1)
    _engine, result = run_with_snapshots(g)
    fractions = [s.resolved_fraction for s in result.snapshots]
    assert all(b >= a - 1e-12 for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] == pytest.approx(1.0)


def test_modeled_time_monotone():
    g = barabasi_albert(60, 3, seed=2)
    _engine, result = run_with_snapshots(g)
    times = [s.modeled_seconds for s in result.snapshots]
    assert all(b >= a for a, b in zip(times, times[1:]))


def test_snapshots_are_upper_bounds():
    """Every intermediate DV entry must over-approximate the true distance
    (the anytime guarantee: interruption yields valid bounds)."""
    g = barabasi_albert(50, 2, seed=3)
    dist, ids = apsp_dijkstra(g)
    col = {v: i for i, v in enumerate(ids)}

    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
    engine.setup()
    cluster = engine.cluster
    from repro.core.recombination import run_recombination

    def check(step):
        for w in cluster.workers:
            for v in w.owned:
                row = w.dv[w.row_of[v]]
                for t in ids:
                    assert (
                        row[cluster.index.column(t)]
                        >= dist[col[v], col[t]] - 1e-9
                    )

    run_recombination(cluster, max_steps=100, on_step=check)


def test_closeness_error_monotone_under_additions():
    """Distance estimates only decrease toward the truth, so per-pair error
    is monotone; we assert the aggregate unresolved count never grows
    except when the vertex set itself grows."""
    wl = community_workload(80, 16, seed=4, inject_step=2)
    _engine, result = run_with_snapshots(wl.base, changes=wl.stream)
    prev = None
    for snap in result.snapshots:
        if prev is not None and snap.n_vertices == prev.n_vertices:
            assert snap.unresolved_pairs <= prev.unresolved_pairs
        prev = snap
    assert result.snapshots[-1].unresolved_pairs == 0


def test_snapshot_closeness_matches_engine_read():
    g = barabasi_albert(40, 2, seed=5)
    engine, result = run_with_snapshots(g)
    final_snap = result.snapshots[-1]
    assert final_snap.closeness == engine.current_closeness()
