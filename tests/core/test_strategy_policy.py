"""Strategy-policy unit tests: the signal -> strategy decision ladder."""

from __future__ import annotations

import pytest

from repro import AnytimeConfig
from repro.core.strategies import (
    POLICIES,
    PolicyDrivenStrategy,
    SignalDrivenPolicy,
    ThresholdPolicy,
    make_policy,
    make_strategy,
    register_policy,
)
from repro.core.strategies.policy import (
    batch_attachment_edges,
    batch_intra_edges,
)
from repro.errors import ConfigurationError
from repro.graph.changes import ChangeBatch, VertexAddition
from repro.obs import registry as series
from repro.obs.registry import MetricsRegistry, SignalView


def _signals(**gauges):
    """A SignalView over a hand-set registry (n=100, 4 workers default)."""
    reg = MetricsRegistry()
    defaults = {
        series.GRAPH_VERTICES: 100.0,
        series.ACTIVE_WORKERS: 4.0,
        series.LOAD_VERTEX_IMBALANCE: 0.0,
        series.LOAD_CUT_IMBALANCE: 0.0,
        series.DELTA_HIT_RATE: 0.0,
    }
    defaults.update(gauges)
    for name, value in sorted(defaults.items()):
        reg.gauge(name, value)
    return SignalView(reg)


def _batch(k, intra_per_vertex=0):
    """k new vertices, each with one anchor and ``intra_per_vertex``
    backward intra-batch edges."""
    batch = ChangeBatch()
    ids = list(range(1000, 1000 + k))
    for i, v in enumerate(ids):
        edges = [(0, 1.0)]
        for j in range(1, intra_per_vertex + 1):
            if i - j >= 0:
                edges.append((ids[i - j], 1.0))
        batch.vertex_additions.append(VertexAddition(v, tuple(edges)))
    return batch


def test_batch_edge_counters():
    batch = _batch(4, intra_per_vertex=1)
    assert batch_attachment_edges(batch) == 4
    assert batch_intra_edges(batch) == 3  # vertex 0 has no earlier peer


class TestSignalDrivenLadder:
    def test_imbalance_triggers_repartition(self):
        pol = SignalDrivenPolicy()
        name, reason = pol.choose(
            _signals(**{series.LOAD_VERTEX_IMBALANCE: 0.9}), _batch(4), step=1
        )
        assert (name, reason) == ("repartition", "imbalance")

    def test_imbalance_needs_a_worthwhile_batch(self):
        """High imbalance with a sub-threshold batch must not repartition."""
        pol = SignalDrivenPolicy(repartition_min_fraction=0.05)
        name, _ = pol.choose(
            _signals(**{series.LOAD_VERTEX_IMBALANCE: 0.9}), _batch(1), step=1
        )
        assert name != "repartition"

    def test_cut_imbalance_alone_does_not_repartition(self):
        """Cut imbalance tracks degree skew, not ownership skew — it
        must not fire the O(n) reshuffle on its own."""
        pol = SignalDrivenPolicy()
        name, _ = pol.choose(
            _signals(**{series.LOAD_CUT_IMBALANCE: 0.95}), _batch(4), step=1
        )
        assert name != "repartition"

    def test_boundary_heavy_triggers_cutedge(self):
        pol = SignalDrivenPolicy()
        name, reason = pol.choose(
            _signals(), _batch(6, intra_per_vertex=2), step=1
        )
        assert (name, reason) == ("cutedge", "boundary-heavy")

    def test_delta_hit_small_batch_triggers_roundrobin(self):
        pol = SignalDrivenPolicy()
        name, reason = pol.choose(
            _signals(**{series.DELTA_HIT_RATE: 0.8}), _batch(2), step=1
        )
        assert (name, reason) == ("roundrobin", "delta-hit")

    def test_fallback(self):
        pol = SignalDrivenPolicy(fallback="leastloaded")
        name, reason = pol.choose(_signals(), _batch(1), step=1)
        assert (name, reason) == ("leastloaded", "fallback")

    def test_ladder_is_ordered_imbalance_first(self):
        pol = SignalDrivenPolicy()
        sig = _signals(**{
            series.LOAD_VERTEX_IMBALANCE: 0.9,
            series.DELTA_HIT_RATE: 0.9,
        })
        name, _ = pol.choose(sig, _batch(6, intra_per_vertex=2), step=1)
        assert name == "repartition"


class TestPolicyRegistry:
    def test_builtin_policies_registered(self):
        assert "signals" in POLICIES and "threshold" in POLICIES
        cfg = AnytimeConfig(nprocs=4)
        assert isinstance(make_policy("signals", cfg), SignalDrivenPolicy)
        assert isinstance(make_policy("threshold", cfg), ThresholdPolicy)

    def test_unknown_policy_raises_with_catalog(self):
        with pytest.raises(ConfigurationError, match="signals"):
            make_policy("no-such-policy", AnytimeConfig(nprocs=4))

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigurationError):
            register_policy("signals", lambda cfg: SignalDrivenPolicy())

    def test_auto_strategy_resolves_configured_policy(self):
        cfg = AnytimeConfig(nprocs=4, strategy_policy="threshold")
        strat = make_strategy("auto", cfg)
        assert isinstance(strat, PolicyDrivenStrategy)
        assert isinstance(strat.policy, ThresholdPolicy)

    def test_blank_strategy_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            AnytimeConfig(nprocs=4, strategy_policy="")


def test_threshold_policy_mirrors_adaptive_rule():
    cfg_view = _signals()
    pol = ThresholdPolicy(threshold=0.05)
    small, r1 = pol.choose(cfg_view, _batch(5), step=0)
    large, r2 = pol.choose(cfg_view, _batch(6), step=0)
    assert (small, r1) == ("roundrobin", "small-batch")
    assert (large, r2) == ("repartition", "large-batch")
