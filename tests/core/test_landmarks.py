"""Landmark approximate closeness and Okamoto-style top-k ranking."""

import pytest

from repro.centrality import (
    exact_closeness,
    landmark_closeness,
    rank_correlation,
    rank_vertices,
    top_k_closeness,
)
from repro.errors import ConfigurationError
from repro.graph import Graph, barabasi_albert

from ..conftest import path_graph, star_graph


class TestLandmarkEstimate:
    def test_all_landmarks_is_exact_scaled(self):
        g = path_graph(6)
        exact = exact_closeness(g)
        est = landmark_closeness(g, 6, seed=0)
        # with every vertex a landmark the estimate equals (n-1)/sum scaled:
        # avg = sum/(n-1) ... estimate = 1/(avg*(n-1)) = 1/sum = exact
        for v, c in exact.items():
            assert est[v] == pytest.approx(c, rel=1e-9)

    def test_correlates_with_exact(self):
        g = barabasi_albert(300, 3, seed=1)
        exact = exact_closeness(g)
        est = landmark_closeness(g, 30, seed=2)
        assert rank_correlation(est, exact) > 0.8

    def test_more_landmarks_better(self):
        g = barabasi_albert(300, 3, seed=3)
        exact = exact_closeness(g)
        lo = rank_correlation(landmark_closeness(g, 4, seed=4), exact)
        hi = rank_correlation(landmark_closeness(g, 100, seed=4), exact)
        assert hi >= lo

    def test_isolated_vertex_zero(self):
        g = path_graph(4)
        g.add_vertex(99)
        est = landmark_closeness(g, 5, seed=0)
        assert est[99] == 0.0

    def test_empty_graph(self):
        assert landmark_closeness(Graph(), 3) == {}

    def test_invalid_landmark_count(self):
        with pytest.raises(ConfigurationError):
            landmark_closeness(path_graph(3), 0)

    def test_deterministic(self):
        g = barabasi_albert(80, 2, seed=5)
        assert landmark_closeness(g, 10, seed=6) == landmark_closeness(
            g, 10, seed=6
        )


class TestTopK:
    def test_star_hub_found(self):
        ranked = top_k_closeness(star_graph(12), 1, seed=0)
        assert ranked[0][0] == 0

    def test_values_are_exact(self):
        g = barabasi_albert(150, 3, seed=7)
        exact = exact_closeness(g)
        for v, c in top_k_closeness(g, 5, seed=8):
            assert c == pytest.approx(exact[v], abs=1e-12)

    def test_matches_exact_topk_with_enough_padding(self):
        g = barabasi_albert(300, 3, seed=9)
        exact_top = rank_vertices(exact_closeness(g))[:10]
        got = [v for v, _c in top_k_closeness(
            g, 10, n_landmarks=40, padding_factor=3.0, seed=10
        )]
        assert got == exact_top

    def test_k_larger_than_graph(self):
        g = path_graph(4)
        ranked = top_k_closeness(g, 10, seed=0)
        assert len(ranked) == 4

    def test_sorted_descending(self):
        g = barabasi_albert(100, 2, seed=11)
        vals = [c for _v, c in top_k_closeness(g, 8, seed=12)]
        assert vals == sorted(vals, reverse=True)

    def test_empty_graph(self):
        assert top_k_closeness(Graph(), 3) == []

    @pytest.mark.parametrize("kwargs", [{"k": 0}, {"k": 3, "padding_factor": 0.5}])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            top_k_closeness(path_graph(4), **kwargs)
