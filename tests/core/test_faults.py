"""Fault tolerance: crash + warm recovery (paper §VI future work)."""

import numpy as np
import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.centrality import exact_closeness
from repro.errors import RuntimeSimulationError
from repro.graph import barabasi_albert
from repro.runtime.faults import crash_and_recover, crash_worker, recover_worker



def converged_engine(n=80, nprocs=4, seed=1):
    g = barabasi_albert(n, 2, seed=seed)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=nprocs, collect_snapshots=False)
    )
    engine.setup()
    engine.run()
    return g, engine


class TestCrash:
    def test_crash_wipes_derived_state(self):
        _g, engine = converged_engine()
        cluster = engine.cluster
        crash_worker(cluster, 1)
        w = cluster.workers[1]
        assert np.isinf(w.dv).all()
        assert w.local_apsp.size == 0
        assert w.ext_dvs == {}
        assert w.subscribers == {}

    def test_crash_invalid_rank(self):
        _g, engine = converged_engine()
        with pytest.raises(RuntimeSimulationError):
            crash_worker(engine.cluster, 99)

    def test_peers_drop_queues_to_dead_rank(self):
        _g, engine = converged_engine()
        cluster = engine.cluster
        # force something into peers' queues for rank 1
        for w in cluster.workers:
            if w.rank != 1 and w.owned:
                w._pending[1].add(w.owned[0])
        crash_worker(cluster, 1)
        for w in cluster.workers:
            if w.rank != 1:
                assert not w._pending[1]


class TestRecovery:
    @pytest.mark.parametrize("victim", [0, 2, 3])
    def test_exact_after_recovery(self, victim):
        g, engine = converged_engine()
        crash_and_recover(engine.cluster, victim)
        result = engine.run()
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_exact_after_crash_during_dynamic_run(self):
        from repro.bench import community_workload

        wl = community_workload(100, 20, seed=2, inject_step=1)
        engine = AnytimeAnywhereCloseness(
            wl.base, AnytimeConfig(nprocs=4, collect_snapshots=False)
        )
        engine.setup()
        engine.run(changes=wl.stream, strategy="roundrobin")
        engine.crash_worker(2)
        result = engine.run()
        exact = exact_closeness(wl.final)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_multiple_sequential_failures(self):
        g, engine = converged_engine(nprocs=4)
        for victim in (0, 1, 2, 3):
            crash_and_recover(engine.cluster, victim)
            engine.run()
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert engine.current_closeness()[v] == pytest.approx(c, abs=1e-9)

    def test_recovery_charges_time(self):
        _g, engine = converged_engine()
        before = engine.modeled_seconds
        crash_and_recover(engine.cluster, 1)
        assert engine.modeled_seconds > before

    def test_recovery_rewires_subscriptions_both_ways(self):
        _g, engine = converged_engine()
        cluster = engine.cluster
        crash_and_recover(cluster, 1)
        w = cluster.workers[1]
        # recovered worker is re-subscribed at its boundary owners
        for x in w.cut_by_ext:
            assert 1 in cluster.workers[cluster.owner_of(x)].subscribers[x]
        # and peers are re-subscribed at the recovered worker
        for peer in cluster.workers:
            if peer.rank == 1:
                continue
            for x in peer.cut_by_ext:
                if cluster.owner_of(x) == 1:
                    assert peer.rank in w.subscribers[x]

    def test_recover_requires_decomposed_cluster(self):
        from repro.runtime import Cluster

        g = barabasi_albert(20, 2, seed=0)
        cluster = Cluster(g, 2)
        with pytest.raises(RuntimeSimulationError):
            recover_worker(cluster, 0)


class TestRepeatedRecovery:
    def test_same_rank_crashes_twice(self):
        """crash -> recover -> crash -> recover on one rank must not leave
        stale subscriptions behind (the second recovery re-wires from a
        clean slate) and must land back on the exact answer."""
        g, engine = converged_engine()
        cluster = engine.cluster
        for _ in range(2):
            crash_and_recover(cluster, 1)
            engine.run()
        from repro.runtime import check_cluster_invariants

        check_cluster_invariants(cluster)
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert engine.current_closeness()[v] == pytest.approx(c, abs=1e-9)

    def test_no_duplicate_subscription_wiring(self):
        """Peers' subscription sets for the recovered rank are rebuilt, not
        accumulated: repeated recoveries keep exactly one subscription per
        (vertex, rank) pair."""
        _g, engine = converged_engine()
        cluster = engine.cluster
        snapshot = {
            w.rank: {v: set(d) for v, d in w.subscribers.items()}
            for w in cluster.workers
        }
        crash_and_recover(cluster, 1)
        engine.run()
        crash_and_recover(cluster, 1)
        engine.run()
        for w in cluster.workers:
            assert {
                v: set(d) for v, d in w.subscribers.items() if d
            } == {v: d for v, d in snapshot[w.rank].items() if d}

    def test_back_to_back_crashes_without_intervening_run(self):
        g, engine = converged_engine()
        cluster = engine.cluster
        crash_and_recover(cluster, 0)
        crash_and_recover(cluster, 2)  # no engine.run() in between
        result = engine.run()
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)
