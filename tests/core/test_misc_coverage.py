"""Coverage for smaller behaviors not exercised elsewhere."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import ScenarioScale, figure6
from repro.core.snapshots import take_snapshot
from repro.errors import ConfigurationError
from repro.graph import barabasi_albert
from repro.model import DEFAULT_COST
from repro.runtime import Cluster, GlobalIndex, Worker

from ..conftest import path_graph


def test_worker_speed_scales_charges():
    idx = GlobalIndex([0, 1])
    w = Worker(0, 1, idx, DEFAULT_COST)
    w._charge(2.0)
    base = w.take_compute_seconds()
    w.speed = 4.0
    w._charge(2.0)
    assert w.take_compute_seconds() == pytest.approx(base / 4.0)


def test_wf_improved_snapshot():
    g = path_graph(5)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=2, wf_improved=True)
    )
    engine.setup()
    result = engine.run()
    # wf closeness of an end vertex of P5: (n-1)/sum(d) = 4/(1+2+3+4)
    assert result.closeness[0] == pytest.approx(4 / 10)


def test_config_defaults_are_constructed():
    cfg = AnytimeConfig(nprocs=3)
    assert cfg.partitioner is not None
    assert cfg.cutedge_partitioner is not None
    assert cfg.schedule is not None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"nprocs": 0},
        {"max_rc_steps": 0},
        {"repartition_threshold": 2.0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        AnytimeConfig(**kwargs)


def test_figure6_scenario_small():
    rows = figure6(ScenarioScale.small())
    assert {r["strategy"] for r in rows} == {
        "repartition",
        "cutedge",
        "roundrobin",
    }
    assert all(r["modeled_minutes"] > 0 for r in rows)


def test_load_history_tracks_steps():
    g = barabasi_albert(50, 2, seed=0)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=3, collect_snapshots=True)
    )
    engine.setup()
    result = engine.run()
    # one entry at setup plus one per RC step
    assert len(engine.load_history) == result.rc_steps + 1
    assert all(sum(h.vertices) == 50 for h in engine.load_history)


def test_snapshot_on_empty_worker():
    """A cluster where some worker owns nothing must still snapshot."""
    g = path_graph(3)
    cluster = Cluster(g, 4)
    from repro.partition import RoundRobinPartitioner

    cluster.decompose(RoundRobinPartitioner())
    cluster.run_initial_approximation()
    snap = take_snapshot(cluster, 0)
    assert set(snap.closeness) == {0, 1, 2}


def test_cluster_load_report_keys():
    g = barabasi_albert(30, 2, seed=1)
    cluster = Cluster(g, 2)
    from repro.partition import MultilevelPartitioner

    cluster.decompose(MultilevelPartitioner(seed=1))
    report = cluster.load_report()
    assert set(report) == {"vertices", "cut_edges"}
    assert sum(report["vertices"]) == 30
