"""ResilienceConfig consolidation + deprecation shims (one-release window)."""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro import (
    AnytimeAnywhereCloseness,
    AnytimeConfig,
    FaultPlan,
    ResilienceConfig,
)
from repro.errors import ConfigurationError
from repro.graph import barabasi_albert


def _graph():
    return barabasi_albert(30, 2, seed=1)


class TestResilienceConfig:
    def test_defaults(self):
        res = ResilienceConfig()
        assert res.recovery == "warm"
        assert res.checkpoint_interval == 8
        assert res.fault_plan is None

    def test_validates_recovery_name_and_interval(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(recovery="cold")
        with pytest.raises(ConfigurationError):
            ResilienceConfig(checkpoint_interval=0)

    def test_config_always_populates_the_group(self):
        cfg = AnytimeConfig(nprocs=4)
        assert cfg.resilience == ResilienceConfig()
        # mirrored legacy fields reflect the group
        assert cfg.recovery == "warm"
        assert cfg.checkpoint_interval == 8

    def test_group_flows_through(self):
        res = ResilienceConfig(recovery="escalate", checkpoint_interval=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cfg = AnytimeConfig(nprocs=4, resilience=res)
        assert cfg.resilience is res
        assert cfg.recovery == "escalate"
        assert cfg.checkpoint_interval == 3


class TestLegacyConfigKwargs:
    def test_legacy_kwargs_warn_and_fold_into_group(self):
        with pytest.warns(DeprecationWarning, match="resilience"):
            cfg = AnytimeConfig(
                nprocs=4, recovery="checkpoint", checkpoint_interval=5
            )
        assert cfg.resilience == ResilienceConfig(
            recovery="checkpoint", checkpoint_interval=5
        )

    def test_conflicting_legacy_and_group_raise(self):
        with pytest.raises(ConfigurationError, match="recovery"):
            AnytimeConfig(
                nprocs=4,
                recovery="warm",
                resilience=ResilienceConfig(recovery="escalate"),
            )

    def test_matching_legacy_and_group_pass_silently(self):
        """dataclasses.replace() round-trips re-pass the mirrored legacy
        fields; values matching the group must not warn or raise."""
        with pytest.warns(DeprecationWarning):
            cfg = AnytimeConfig(nprocs=4, recovery="checkpoint")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            clone = dataclasses.replace(cfg)
        assert clone.resilience == cfg.resilience

    def test_legacy_recovery_still_validated(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                AnytimeConfig(nprocs=4, recovery="nonsense")


class TestLegacyRunKwargs:
    def _engine(self):
        eng = AnytimeAnywhereCloseness(
            _graph(), AnytimeConfig(nprocs=3, collect_snapshots=False)
        )
        eng.setup()
        return eng

    def test_run_fault_plan_kwarg_warns_but_works(self):
        eng = self._engine()
        plan = FaultPlan(seed=0, loss_prob=0.05)
        with pytest.warns(DeprecationWarning, match="fault_plan"):
            result = eng.run(fault_plan=plan)
        assert result.converged

    def test_run_resilience_group_does_not_warn(self):
        eng = self._engine()
        plan = FaultPlan(seed=0, loss_prob=0.05)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = eng.run(resilience=ResilienceConfig(fault_plan=plan))
        assert result.converged

    def test_legacy_and_group_runs_are_bitwise_identical(self):
        plan = FaultPlan(seed=3, loss_prob=0.1, dup_prob=0.05)
        eng1, eng2 = self._engine(), self._engine()
        with pytest.warns(DeprecationWarning):
            legacy = eng1.run(fault_plan=plan, recovery="warm")
        grouped = eng2.run(
            resilience=ResilienceConfig(recovery="warm", fault_plan=plan)
        )
        assert legacy.closeness == grouped.closeness
        assert legacy.modeled_seconds == grouped.modeled_seconds
        assert legacy.fault_events == grouped.fault_events

    def test_recovery_without_fault_plan_still_raises(self):
        eng = self._engine()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="fault_plan"):
                eng.run(recovery="warm")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="fault_plan"):
                eng.run(checkpoint_interval=4)
