"""Repartition-S correctness and anytime-reuse behavior."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ChangeStream
from repro.bench import community_workload
from repro.core.strategies import RepartitionStrategy
from repro.graph import ChangeBatch
from repro.graph.changes import EdgeDeletion
from repro.partition import balance

from ..conftest import run_and_verify


@pytest.mark.parametrize("inject_step", [0, 3])
def test_exact_after_repartition(inject_step):
    wl = community_workload(100, 40, seed=2, inject_step=inject_step)
    run_and_verify(
        wl.base,
        changes=wl.stream,
        strategy="repartition",
        final=wl.final,
        nprocs=4,
    )


def test_partition_rebalanced_after_large_batch():
    wl = community_workload(100, 60, seed=3, inject_step=1)
    engine = AnytimeAnywhereCloseness(wl.base, AnytimeConfig(nprocs=4))
    engine.setup()
    engine.run(changes=wl.stream, strategy="repartition")
    part = engine.cluster.partition
    assert part.num_vertices == 160
    assert balance(part) <= 1.3


def test_repartition_reuses_partial_results():
    """Rows migrated by Repartition-S must seed the new owners' DVs."""
    wl = community_workload(80, 30, seed=4, inject_step=2)
    engine = AnytimeAnywhereCloseness(wl.base, AnytimeConfig(nprocs=4))
    engine.setup()
    strategy = RepartitionStrategy()
    # run the static phase first so partial results exist
    from repro.core.recombination import run_recombination

    run_recombination(engine.cluster, max_steps=100)
    batch = wl.single_batch()
    strategy.apply(engine.cluster, batch, 2)
    # immediately after repartitioning (before further RC), old vertices
    # must still know their old exact distances (anytime reuse)
    import numpy as np

    from repro.centrality import apsp_dijkstra

    dist, ids = apsp_dijkstra(wl.base)
    col = {v: i for i, v in enumerate(ids)}
    checked = 0
    for w in engine.cluster.workers:
        for v in w.owned:
            if v not in col:
                continue  # new vertex
            row = w.dv[w.row_of[v]]
            for t in ids[:20]:
                assert row[engine.cluster.index.column(t)] <= dist[col[v], col[t]] + 1e-9
                checked += 1
    assert checked > 0


def test_repartition_rejects_deletions():
    wl = community_workload(60, 10, seed=5)
    engine = AnytimeAnywhereCloseness(wl.base, AnytimeConfig(nprocs=2))
    engine.setup()
    stream = ChangeStream(
        {0: ChangeBatch(edge_deletions=[EdgeDeletion(*_edge(wl.base))])}
    )
    with pytest.raises(ValueError):
        engine.run(changes=stream, strategy=RepartitionStrategy())


def _edge(g):
    u, v, _w = next(iter(g.edges()))
    return u, v


def test_repartition_needs_extra_steps():
    """The paper: Repartition-S 'can lead to additional RC steps' because
    new vertices start with empty DVs."""
    wl = community_workload(100, 40, seed=6, inject_step=1)

    def steps(strategy):
        engine = AnytimeAnywhereCloseness(
            wl.base, AnytimeConfig(nprocs=4, collect_snapshots=False)
        )
        engine.setup()
        return engine.run(changes=wl.stream, strategy=strategy).rc_steps

    assert steps("repartition") >= steps("roundrobin")
