"""Additional SNA measures (harmonic, eccentricity, degree) and the
engine's anytime measure reads."""

import numpy as np
import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.centrality import (
    degree_centrality,
    eccentricity_from_row,
    exact_eccentricity,
    exact_harmonic,
    harmonic_from_matrix,
    harmonic_from_row,
    radius_diameter,
)
from repro.errors import ConfigurationError
from repro.graph import Graph, barabasi_albert

from ..conftest import cycle_graph, path_graph, star_graph


class TestHarmonic:
    def test_star_hub(self):
        h = exact_harmonic(star_graph(5))
        assert h[0] == pytest.approx(5.0)
        assert h[1] == pytest.approx(1.0 + 4 * 0.5)

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = barabasi_albert(50, 2, seed=1)
        ng = nx.Graph()
        ng.add_weighted_edges_from(g.edges())
        ref = nx.harmonic_centrality(ng, distance="weight")
        ours = exact_harmonic(g)
        for v in ref:
            assert ours[v] == pytest.approx(ref[v], rel=1e-9)

    def test_unreachable_ignored(self):
        row = np.array([0.0, 2.0, np.inf])
        assert harmonic_from_row(row, self_col=0) == pytest.approx(0.5)

    def test_isolated(self):
        assert harmonic_from_row(np.array([0.0]), self_col=0) == 0.0

    def test_matrix_shape_mismatch(self):
        with pytest.raises(ValueError):
            harmonic_from_matrix(np.zeros((2, 3)), [0, 1])


class TestEccentricity:
    def test_path_ends_vs_middle(self):
        e = exact_eccentricity(path_graph(5))
        assert e[0] == 4.0
        assert e[2] == 2.0

    def test_cycle_uniform(self):
        e = exact_eccentricity(cycle_graph(8))
        assert set(e.values()) == {4.0}

    def test_radius_diameter(self):
        e = exact_eccentricity(path_graph(5))
        r, d = radius_diameter(e)
        assert (r, d) == (2.0, 4.0)

    def test_radius_diameter_empty(self):
        assert radius_diameter({}) == (0.0, 0.0)

    def test_isolated_vertex_zero(self):
        g = path_graph(3)
        g.add_vertex(9)
        e = exact_eccentricity(g)
        assert e[9] == 0.0

    def test_eccentricity_from_row_unreachable(self):
        row = np.array([0.0, 3.0, np.inf])
        assert eccentricity_from_row(row, self_col=0) == 3.0


class TestDegree:
    def test_star(self):
        d = degree_centrality(star_graph(4))
        assert d[0] == pytest.approx(1.0)
        assert d[1] == pytest.approx(0.25)

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex(0)
        assert degree_centrality(g) == {0: 0.0}


class TestEngineMeasures:
    @pytest.fixture(scope="class")
    def engine(self):
        g = barabasi_albert(60, 2, seed=2)
        e = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
        e.setup()
        e.run()
        return e, g

    def test_harmonic_exact_after_convergence(self, engine):
        e, g = engine
        exact = exact_harmonic(g)
        got = e.current_measure("harmonic")
        for v, c in exact.items():
            assert got[v] == pytest.approx(c, abs=1e-9)

    def test_eccentricity_exact_after_convergence(self, engine):
        e, g = engine
        exact = exact_eccentricity(g)
        got = e.current_measure("eccentricity")
        for v, c in exact.items():
            assert got[v] == pytest.approx(c, abs=1e-9)

    def test_degree_measure(self, engine):
        e, g = engine
        assert e.current_measure("degree") == degree_centrality(g)

    def test_closeness_measure_matches_run(self, engine):
        e, _g = engine
        assert e.current_measure("closeness") == e.current_closeness()

    def test_unknown_measure(self, engine):
        e, _g = engine
        with pytest.raises(ConfigurationError):
            e.current_measure("pagerank")

    def test_anytime_harmonic_is_lower_bound_mid_run(self):
        """Distance upper bounds make harmonic (sum of reciprocals) a
        *lower* bound before convergence — the anytime direction flips
        with the reciprocal."""
        g = barabasi_albert(60, 2, seed=3)
        exact = exact_harmonic(g)
        e = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
        e.setup()
        mid = e.current_measure("harmonic")  # before any RC step
        assert all(mid[v] <= exact[v] + 1e-9 for v in exact)
