"""Correctness and behavior of the anywhere vertex-addition strategy."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ChangeStream
from repro.errors import ChangeStreamError
from repro.graph import ChangeBatch, barabasi_albert
from repro.graph.changes import EdgeDeletion, VertexAddition
from repro.bench import community_workload, scale_free_workload
from repro.core.strategies import (
    CutEdgePS,
    LeastLoadedPS,
    NeighborMajorityPS,
    RoundRobinPS,
    VertexAdditionStrategy,
)

from ..conftest import run_and_verify

PLACEMENTS = ["roundrobin", "cutedge", "leastloaded", "neighbormajority"]


@pytest.mark.parametrize("strategy", PLACEMENTS)
@pytest.mark.parametrize("inject_step", [0, 2, 5])
def test_exact_after_addition(strategy, inject_step):
    wl = community_workload(120, 24, seed=3, inject_step=inject_step, n_communities=2)
    run_and_verify(
        wl.base,
        changes=wl.stream,
        strategy=strategy,
        final=wl.final,
        nprocs=4,
    )


@pytest.mark.parametrize("strategy", ["roundrobin", "cutedge"])
def test_exact_scale_free_growth(strategy):
    wl = scale_free_workload(100, 30, seed=5, inject_step=1)
    run_and_verify(
        wl.base, changes=wl.stream, strategy=strategy, final=wl.final, nprocs=4
    )


def test_isolated_new_vertex():
    g = barabasi_albert(40, 2, seed=1)
    batch = ChangeBatch(vertex_additions=[VertexAddition(100)])
    final = g.copy()
    batch.apply_to(final)
    closeness = run_and_verify(
        g, changes=ChangeStream({1: batch}), final=final, nprocs=4
    )
    assert closeness[100] == 0.0  # unreachable vertex


def test_multiple_batches_different_steps():
    g = barabasi_albert(60, 2, seed=2)
    final = g.copy()
    stream = ChangeStream()
    nxt = 60
    for step in (0, 2, 4):
        batch = ChangeBatch(
            vertex_additions=[
                VertexAddition(nxt, edges=((step, 1.0), (step + 1, 1.0))),
                VertexAddition(nxt + 1, edges=((nxt, 1.0),)),
            ]
        )
        stream.schedule(step, batch)
        batch.apply_to(final)
        nxt += 2
    run_and_verify(g, changes=stream, final=final, nprocs=4)


def test_rejects_deletions():
    g = barabasi_albert(30, 2, seed=0)
    strategy = VertexAdditionStrategy(RoundRobinPS())
    stream = ChangeStream(
        {0: ChangeBatch(edge_deletions=[EdgeDeletion(0, 1)])}
    )
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=2))
    engine.setup()
    with pytest.raises(ChangeStreamError):
        engine.run(changes=stream, strategy=strategy)


class TestPlacementDistributions:
    def make(self, n_new=16, seed=0, n_communities=2):
        wl = community_workload(80, n_new, seed=seed, n_communities=n_communities)
        engine = AnytimeAnywhereCloseness(wl.base, AnytimeConfig(nprocs=4))
        engine.setup()
        return wl.single_batch(), engine.cluster

    def test_roundrobin_even_spread(self):
        batch, cluster = self.make()
        placement = RoundRobinPS().assign(batch, cluster)
        counts = [0] * 4
        for r in placement.values():
            counts[r] += 1
        assert max(counts) - min(counts) <= 1

    def test_roundrobin_rotation_persists(self):
        batch, cluster = self.make(n_new=3)
        ps = RoundRobinPS()
        first = ps.assign(batch, cluster)
        second = ps.assign(batch, cluster)
        # the second batch continues the rotation instead of restarting at
        # rank 0, keeping the union balanced
        combined = list(first.values()) + list(second.values())
        counts = [combined.count(r) for r in range(4)]
        assert max(counts) - min(counts) <= 1
        assert sorted(first.values()) == [0, 1, 2]
        assert sorted(second.values()) == [0, 1, 3]

    def test_cutedge_groups_communities(self):
        # one community per processor: CutEdge-PS can keep each whole
        batch, cluster = self.make(n_new=20, seed=4, n_communities=4)
        placement = CutEdgePS().assign(batch, cluster)
        new_graph = batch.new_vertex_graph()
        intra_same = sum(
            1
            for u, v, _w in new_graph.edges()
            if placement[u] == placement[v]
        )
        # CutEdge-PS keeps most intra-batch edges inside one processor
        assert intra_same >= 0.5 * new_graph.num_edges

    def test_cutedge_cuts_fewer_than_roundrobin(self):
        batch, cluster = self.make(n_new=24, seed=5)
        new_graph = batch.new_vertex_graph()

        def cut(placement):
            return sum(
                1
                for u, v, _w in new_graph.edges()
                if placement[u] != placement[v]
            )

        assert cut(CutEdgePS().assign(batch, cluster)) <= cut(
            RoundRobinPS().assign(batch, cluster)
        )

    def test_leastloaded_targets_lightest(self):
        batch, cluster = self.make(n_new=4)
        loads = [w.n_local for w in cluster.workers]
        lightest = min(range(4), key=lambda r: loads[r])
        placement = LeastLoadedPS().assign(batch, cluster)
        assert lightest in set(placement.values())

    def test_neighbormajority_follows_neighbors(self):
        g = barabasi_albert(40, 2, seed=6)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
        engine.setup()
        cluster = engine.cluster
        anchor_rank = cluster.owner_of(0)
        batch = ChangeBatch(
            vertex_additions=[
                VertexAddition(100, edges=((0, 1.0),))
            ]
        )
        placement = NeighborMajorityPS().assign(batch, cluster)
        assert placement[100] == anchor_rank

    def test_all_strategies_cover_batch(self):
        batch, cluster = self.make(n_new=10)
        for ps in (RoundRobinPS(), CutEdgePS(), LeastLoadedPS(), NeighborMajorityPS()):
            placement = ps.assign(batch, cluster)
            assert set(placement) == set(batch.new_vertex_ids())
            assert all(0 <= r < 4 for r in placement.values())
