"""Checkpoint save / restore."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import community_workload
from repro.centrality import exact_closeness
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.errors import ConfigurationError
from repro.graph import barabasi_albert
from repro.runtime import check_cluster_invariants


def make_engine(n=80, nprocs=4, seed=1):
    g = barabasi_albert(n, 2, seed=seed)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=nprocs, collect_snapshots=False)
    )
    engine.setup()
    return g, engine


def test_requires_setup(tmp_path):
    g = barabasi_albert(20, 2, seed=0)
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=2))
    with pytest.raises(ConfigurationError):
        save_checkpoint(engine, tmp_path / "c.npz")


def test_roundtrip_converged_state(tmp_path):
    g, engine = make_engine()
    engine.run()
    path = tmp_path / "c.npz"
    save_checkpoint(engine, path)
    restored = load_checkpoint(path)
    check_cluster_invariants(restored.cluster)
    # immediate read matches without any further steps
    exact = exact_closeness(g)
    got = restored.current_closeness()
    for v, c in exact.items():
        assert got[v] == pytest.approx(c, abs=1e-9)
    # resuming converges quickly (only the conservative refresh drains)
    result = restored.run()
    assert result.converged


def test_roundtrip_mid_computation_with_pending_changes(tmp_path):
    wl = community_workload(120, 24, seed=2, inject_step=3)
    engine = AnytimeAnywhereCloseness(
        wl.base, AnytimeConfig(nprocs=4, collect_snapshots=False)
    )
    engine.setup()
    engine.run(
        changes=wl.stream, strategy="cutedge", budget_modeled_seconds=1e-4
    )
    path = tmp_path / "mid.npz"
    save_checkpoint(engine, path)
    restored = load_checkpoint(path)
    result = restored.run(changes=wl.stream, strategy="cutedge")
    assert result.converged
    exact = exact_closeness(wl.final)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


def test_clock_survives(tmp_path):
    _g, engine = make_engine()
    engine.run()
    before = engine.modeled_seconds
    path = tmp_path / "c.npz"
    save_checkpoint(engine, path)
    restored = load_checkpoint(path)
    assert restored.modeled_seconds == pytest.approx(before)


def test_nprocs_mismatch_rejected(tmp_path):
    _g, engine = make_engine(nprocs=4)
    path = tmp_path / "c.npz"
    save_checkpoint(engine, path)
    with pytest.raises(ConfigurationError):
        load_checkpoint(path, AnytimeConfig(nprocs=8))


def test_weighted_graph_roundtrip(tmp_path):
    from repro.graph import random_weights

    g = random_weights(barabasi_albert(50, 2, seed=3), 1.0, 9.0, seed=4)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=3, collect_snapshots=False)
    )
    engine.setup()
    engine.run()
    path = tmp_path / "w.npz"
    save_checkpoint(engine, path)
    restored = load_checkpoint(path)
    assert restored.graph == g
    exact = exact_closeness(g)
    got = restored.current_closeness()
    for v, c in exact.items():
        assert got[v] == pytest.approx(c, abs=1e-9)


def test_worker_speeds_survive(tmp_path):
    g = barabasi_albert(60, 2, seed=6)
    engine = AnytimeAnywhereCloseness(
        g,
        AnytimeConfig(
            nprocs=4, worker_speeds=[2.0, 1.0, 1.0, 1.0],
            collect_snapshots=False,
        ),
    )
    engine.setup()
    engine.run()
    path = tmp_path / "het.npz"
    save_checkpoint(engine, path)
    restored = load_checkpoint(path)
    assert [w.speed for w in restored.cluster.workers] == [2.0, 1.0, 1.0, 1.0]


class TestAtomicWrite:
    """save_checkpoint stages via temp file + fsync + atomic rename."""

    def test_successful_save_leaves_no_temp_file(self, tmp_path):
        _g, engine = make_engine(n=40)
        engine.run()
        path = tmp_path / "c.npz"
        save_checkpoint(engine, path)
        assert path.is_file()
        assert not (tmp_path / "c.npz.tmp").exists()

    def test_interrupted_write_preserves_previous_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-write must never corrupt the checkpoint at the
        final path: the previous complete file stays untouched and no
        partial .tmp is left behind."""
        import numpy as np

        from repro.core import checkpoint as cp

        g, engine = make_engine(n=40)
        engine.run()
        path = tmp_path / "c.npz"
        save_checkpoint(engine, path)
        good = path.read_bytes()

        def exploding_savez(fh, **arrays):
            fh.write(b"PK\x03\x04 partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", exploding_savez)
        with pytest.raises(OSError, match="disk full"):
            cp.save_checkpoint(engine, path)
        monkeypatch.undo()
        # previous complete checkpoint untouched, partial staged file gone
        assert path.read_bytes() == good
        assert not (tmp_path / "c.npz.tmp").exists()
        restored = load_checkpoint(path)
        assert restored.current_closeness() == engine.current_closeness()

    def test_truncated_partial_is_never_picked_up(self, tmp_path):
        """A stray truncated .tmp (crash between write and rename) must
        not shadow the real checkpoint, and loading a truncated file at
        the final path fails loudly rather than yielding garbage."""
        _g, engine = make_engine(n=40)
        engine.run()
        path = tmp_path / "c.npz"
        save_checkpoint(engine, path)
        blob = path.read_bytes()
        # crash-between-write-and-rename leftovers are invisible to load
        (tmp_path / "c.npz.tmp").write_bytes(blob[: len(blob) // 3])
        restored = load_checkpoint(path)
        assert restored.current_closeness() == engine.current_closeness()
        # and a truncated file at the final path is rejected, not read
        trunc = tmp_path / "trunc.npz"
        trunc.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ConfigurationError):
            load_checkpoint(trunc)


class TestFileValidation:
    """Corrupted / foreign / wrong-version checkpoint files."""

    def _minimal_meta_npz(self, path, meta):
        import json

        import numpy as np

        arrays = {
            "meta_json": np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            )
        }
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)

    def test_garbage_bytes_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00\x01definitely not a zip archive\xff" * 20)
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        _g, engine = make_engine(n=40)
        engine.run()
        path = tmp_path / "full.npz"
        save_checkpoint(engine, path)
        blob = path.read_bytes()
        trunc = tmp_path / "trunc.npz"
        trunc.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ConfigurationError):
            load_checkpoint(trunc)

    def test_foreign_npz_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "foreign.npz"
        with open(path, "wb") as fh:
            np.savez_compressed(fh, weights=np.arange(10.0))
        with pytest.raises(ConfigurationError, match="no meta_json"):
            load_checkpoint(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.npz"
        self._minimal_meta_npz(path, {"version": 999, "nprocs": 2})
        with pytest.raises(ConfigurationError, match="version"):
            load_checkpoint(path)

    def test_corrupted_metadata_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "badmeta.npz"
        arrays = {
            "meta_json": np.frombuffer(b"{not json!", dtype=np.uint8)
        }
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        with pytest.raises(ConfigurationError, match="metadata"):
            load_checkpoint(path)

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "sparse.npz"
        self._minimal_meta_npz(
            path, {"version": 1, "nprocs": 2}
        )
        with pytest.raises(ConfigurationError, match="missing arrays"):
            load_checkpoint(path)

    def test_invalid_nprocs_rejected(self, tmp_path):
        path = tmp_path / "badnprocs.npz"
        self._minimal_meta_npz(path, {"version": 1, "nprocs": "four"})
        with pytest.raises(ConfigurationError, match="nprocs"):
            load_checkpoint(path)

    def test_index_vertex_mismatch_rejected(self, tmp_path):
        import numpy as np

        _g, engine = make_engine(n=30)
        engine.run()
        path = tmp_path / "tampered.npz"
        save_checkpoint(engine, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["index_ids"] = arrays["index_ids"][:-1]  # drop one column id
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        with pytest.raises(ConfigurationError, match="column index"):
            load_checkpoint(path)
