"""Adaptive and composite strategy routing."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ChangeStream
from repro.bench import community_workload
from repro.core.strategies import (
    AdaptiveStrategy,
    CompositeStrategy,
    CutEdgePS,
    RepartitionStrategy,
    RoundRobinPS,
    VertexAdditionStrategy,
)
from repro.graph import ChangeBatch, barabasi_albert
from repro.graph.changes import (
    EdgeAddition,
    EdgeDeletion,
    VertexAddition,
    VertexDeletion,
)

from ..conftest import run_and_verify


def make_adaptive(threshold=0.1):
    return AdaptiveStrategy(
        RoundRobinPS(), RepartitionStrategy(), threshold=threshold
    )


def test_small_batch_uses_addition():
    wl = community_workload(100, 5, seed=1, inject_step=1)
    strategy = make_adaptive(threshold=0.10)
    run_and_verify(
        wl.base, changes=wl.stream, strategy=strategy, final=wl.final, nprocs=4
    )
    assert strategy.last_choice == "vertex-addition[roundrobin]"


def test_large_batch_uses_repartition():
    wl = community_workload(100, 40, seed=2, inject_step=1)
    strategy = make_adaptive(threshold=0.10)
    run_and_verify(
        wl.base, changes=wl.stream, strategy=strategy, final=wl.final, nprocs=4
    )
    assert strategy.last_choice == "repartition"


def test_threshold_validation():
    with pytest.raises(ValueError):
        make_adaptive(threshold=1.5)


def test_composite_routes_mixed_batch():
    g = barabasi_albert(50, 2, seed=3)
    e0 = next(iter(g.edges()))
    batch = ChangeBatch(
        vertex_additions=[VertexAddition(100, edges=((0, 1.0),))],
        edge_additions=[EdgeAddition(5, 40, 1.0)],
        edge_deletions=[EdgeDeletion(e0[0], e0[1])],
        vertex_deletions=[VertexDeletion(20)],
    )
    final = g.copy()
    final.add_vertex(100)
    final.add_edge(100, 0, 1.0)
    if not final.has_edge(5, 40):
        final.add_edge(5, 40, 1.0)
    final.remove_edge(e0[0], e0[1])
    final.remove_vertex(20)

    strategy = CompositeStrategy(VertexAdditionStrategy(RoundRobinPS()))
    run_and_verify(
        g,
        changes=ChangeStream({1: batch}),
        strategy=strategy,
        final=final,
        nprocs=4,
    )


def test_engine_adaptive_name():
    g = barabasi_albert(30, 2, seed=4)
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=2))
    strategy = engine.resolve_strategy("adaptive")
    assert isinstance(strategy, CompositeStrategy)
    assert isinstance(strategy.addition, AdaptiveStrategy)
    assert isinstance(strategy.addition.addition.placement, CutEdgePS)


def test_engine_adaptive_handles_mixed_batches():
    """The composite wrapper must route deletions even under 'adaptive'."""
    from repro.graph.changes import EdgeDeletion

    g = barabasi_albert(40, 2, seed=5)
    e = next(iter(g.edges()))
    final = g.copy()
    final.remove_edge(e[0], e[1])
    final.add_vertex(100)
    final.add_edge(100, 3, 1.0)
    batch = ChangeBatch(
        vertex_additions=[VertexAddition(100, edges=((3, 1.0),))],
        edge_deletions=[EdgeDeletion(e[0], e[1])],
    )
    run_and_verify(
        g,
        changes=ChangeStream({1: batch}),
        strategy="adaptive",
        final=final,
        nprocs=4,
    )
