"""Budgeted (interruptible) runs and the cluster invariant checker."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import community_workload
from repro.centrality import apsp_dijkstra, exact_closeness
from repro.graph import barabasi_albert
from repro.runtime import check_cluster_invariants


def test_zero_budget_returns_ia_estimate():
    g = barabasi_albert(80, 2, seed=0)
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
    engine.setup()
    result = engine.run(budget_modeled_seconds=0.0)
    assert result.rc_steps == 0
    assert not result.converged
    assert set(result.closeness) == set(g.vertices())


def test_budget_interrupts_then_resumes_to_exact():
    g = barabasi_albert(120, 3, seed=1)
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=8))
    engine.setup()
    # find a budget that stops mid-run: one full run's cost, halved
    probe = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=8))
    probe.setup()
    full = probe.run()
    budget = (full.modeled_seconds - engine.modeled_seconds) / 2
    partial = engine.run(budget_modeled_seconds=budget)
    assert not partial.converged
    assert 0 < partial.rc_steps < full.rc_steps
    final = engine.run()
    assert final.converged
    exact = exact_closeness(g)
    for v, c in exact.items():
        assert final.closeness[v] == pytest.approx(c, abs=1e-9)


def test_partial_results_are_upper_bounds():
    g = barabasi_albert(80, 2, seed=2)
    dist, ids = apsp_dijkstra(g)
    col = {v: i for i, v in enumerate(ids)}
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
    engine.setup()
    engine.run(budget_modeled_seconds=1e-5)
    cluster = engine.cluster
    for w in cluster.workers:
        for v in w.owned:
            row = w.dv[w.row_of[v]]
            for t in ids:
                assert row[cluster.index.column(t)] >= dist[col[v], col[t]] - 1e-9


def test_converged_flag_with_pending_changes():
    wl = community_workload(80, 10, seed=3, inject_step=5)
    engine = AnytimeAnywhereCloseness(wl.base, AnytimeConfig(nprocs=4))
    engine.setup()
    partial = engine.run(
        changes=wl.stream, strategy="roundrobin", budget_modeled_seconds=0.0
    )
    assert not partial.converged  # the scheduled batch never landed
    final = engine.run(changes=wl.stream, strategy="roundrobin")
    assert final.converged
    exact = exact_closeness(wl.final)
    for v, c in exact.items():
        assert final.closeness[v] == pytest.approx(c, abs=1e-9)


class TestInvariantChecker:
    def test_passes_after_complex_history(self):
        wl = community_workload(100, 20, seed=4, inject_step=1)
        engine = AnytimeAnywhereCloseness(wl.base, AnytimeConfig(nprocs=4))
        engine.setup()
        engine.run(changes=wl.stream, strategy="cutedge")
        engine.crash_worker(1)
        engine.run()
        checks = check_cluster_invariants(engine.cluster)
        assert "cut-edges-bidirectional" in checks

    def test_detects_corruption(self):
        g = barabasi_albert(40, 2, seed=5)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
        engine.setup()
        w = engine.cluster.workers[0]
        if w.owned:
            w.dv[0, engine.cluster.index.column(w.owned[0])] = 1.0  # break diag
            with pytest.raises(AssertionError):
                check_cluster_invariants(engine.cluster)

    def test_requires_decomposition(self):
        from repro.runtime import Cluster

        cluster = Cluster(barabasi_albert(10, 2, seed=0), 2)
        with pytest.raises(AssertionError):
            check_cluster_invariants(cluster)


def test_tracer_json_roundtrip(tmp_path):
    import json

    g = barabasi_albert(40, 2, seed=6)
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
    engine.setup()
    engine.run()
    tracer = engine.cluster.tracer
    dump = tracer.to_json()
    assert dump["summary"]["modeled_seconds"] == tracer.modeled_seconds
    assert any(r["name"] == "rc_step" for r in dump["records"])
    path = tmp_path / "trace.json"
    tracer.save(path)
    loaded = json.loads(path.read_text())
    assert loaded == dump
