"""Tests for the centrality subpackage (closeness, exact refs, errors)."""

import numpy as np
import pytest

from repro.centrality import (
    apsp_dijkstra,
    apsp_floyd_warshall,
    closeness_error,
    closeness_from_matrix,
    closeness_from_row,
    distance_error,
    exact_closeness,
    rank_correlation,
    rank_vertices,
    sssp_dijkstra,
    top_k_overlap,
)
from repro.graph import barabasi_albert, random_weights

from ..conftest import cycle_graph, path_graph, star_graph


class TestExactAPSP:
    def test_dijkstra_vs_floyd_warshall(self):
        g = random_weights(barabasi_albert(40, 2, seed=0), 1.0, 5.0, seed=1)
        d1, ids1 = apsp_dijkstra(g)
        d2, ids2 = apsp_floyd_warshall(g)
        assert ids1 == ids2
        np.testing.assert_allclose(d1, d2)

    def test_path_distances(self):
        d, ids = apsp_dijkstra(path_graph(5))
        assert d[ids.index(0), ids.index(4)] == 4.0

    def test_disconnected_inf(self):
        g = path_graph(3)
        g.add_vertex(9)
        d, ids = apsp_dijkstra(g)
        assert np.isinf(d[ids.index(0), ids.index(9)])

    def test_empty_graph(self):
        from repro.graph import Graph

        d, ids = apsp_dijkstra(Graph())
        assert d.shape == (0, 0) and ids == []
        d, ids = apsp_floyd_warshall(Graph())
        assert d.shape == (0, 0)

    def test_sssp(self):
        dist = sssp_dijkstra(path_graph(4), 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}


class TestCloseness:
    def test_paper_formula_star_center(self):
        # C(hub) = 1 / sum(d) = 1 / n_leaves
        c = exact_closeness(star_graph(6))
        assert c[0] == pytest.approx(1 / 6)
        assert c[1] == pytest.approx(1 / (1 + 5 * 2))

    def test_cycle_symmetry(self):
        c = exact_closeness(cycle_graph(8))
        vals = set(round(v, 12) for v in c.values())
        assert len(vals) == 1

    def test_closeness_from_row_unreachable(self):
        row = np.array([0.0, 1.0, np.inf])
        c = closeness_from_row(row, self_col=0)
        assert c == pytest.approx(1.0)

    def test_closeness_isolated(self):
        row = np.array([0.0, np.inf])
        assert closeness_from_row(row, self_col=0) == 0.0

    def test_single_vertex(self):
        assert closeness_from_row(np.array([0.0]), self_col=0) == 0.0

    def test_wf_improved_scaling(self):
        # path 0-1, isolated 2: wf scales by reached fraction
        row = np.array([0.0, 1.0, np.inf])
        plain = closeness_from_row(row, self_col=0)
        wf = closeness_from_row(row, self_col=0, wf_improved=True)
        assert wf == pytest.approx(plain * 1 / 2)

    def test_matches_networkx_convention(self):
        nx = pytest.importorskip("networkx")
        g = barabasi_albert(60, 2, seed=2)
        ng = nx.Graph()
        ng.add_weighted_edges_from(g.edges())
        # for a connected graph: networkx wf closeness = (n-1)/sum(d),
        # ours wf = reached/total * reached/(n-1) = (n-1)/sum(d) — identical
        ref = nx.closeness_centrality(ng, distance="weight", wf_improved=True)
        ours = exact_closeness(g, wf_improved=True)
        for v in ref:
            assert ours[v] == pytest.approx(ref[v], rel=1e-9)

    def test_matrix_shape_mismatch(self):
        with pytest.raises(ValueError):
            closeness_from_matrix(np.zeros((2, 3)), [0, 1])

    def test_rank_vertices(self):
        assert rank_vertices({1: 0.5, 2: 0.9, 3: 0.5}) == [2, 1, 3]


class TestErrorMetrics:
    def test_distance_error_perfect(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        err = distance_error(d, d)
        assert err["mae"] == 0.0 and err["unresolved"] == 0.0

    def test_distance_error_unresolved(self):
        exact = np.array([[0.0, 1.0], [1.0, 0.0]])
        approx = np.array([[0.0, np.inf], [2.0, 0.0]])
        err = distance_error(approx, exact)
        assert err["unresolved"] == 1.0
        assert err["mae"] == pytest.approx(1.0 / 3.0)
        assert err["min_signed"] >= 0.0

    def test_distance_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            distance_error(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_closeness_error(self):
        err = closeness_error({1: 0.5, 2: 0.7}, {1: 0.5, 2: 0.9})
        assert err["max"] == pytest.approx(0.2)
        assert err["mae"] == pytest.approx(0.1)
        assert closeness_error({}, {}) == {"mae": 0.0, "max": 0.0}

    def test_rank_correlation_perfect(self):
        a = {i: i * 0.1 for i in range(10)}
        assert rank_correlation(a, a) == pytest.approx(1.0)

    def test_rank_correlation_reversed(self):
        a = {i: i * 0.1 for i in range(10)}
        b = {i: -i * 0.1 for i in range(10)}
        assert rank_correlation(a, b) == pytest.approx(-1.0)

    def test_rank_correlation_constant(self):
        a = {1: 0.5, 2: 0.5}
        assert rank_correlation(a, a) == 1.0

    def test_top_k_overlap(self):
        a = {1: 0.9, 2: 0.8, 3: 0.1}
        b = {1: 0.9, 3: 0.8, 2: 0.1}
        assert top_k_overlap(a, b, 1) == 1.0
        assert top_k_overlap(a, b, 2) == 0.5
        with pytest.raises(ValueError):
            top_k_overlap(a, b, 0)
