"""Heterogeneous clusters: worker speeds, weighted targets, speed-aware
placement and rebalancing."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import community_workload
from repro.centrality import exact_closeness
from repro.core.strategies import LeastLoadedPS
from repro.errors import ConfigurationError
from repro.graph import ChangeBatch, barabasi_albert
from repro.graph.changes import VertexAddition
from repro.partition import MultilevelPartitioner, edge_cut
from repro.runtime import Cluster


class TestConfig:
    def test_speed_length_validated(self):
        with pytest.raises(ConfigurationError):
            AnytimeConfig(nprocs=4, worker_speeds=[1.0, 2.0])

    def test_speed_positive(self):
        with pytest.raises(ConfigurationError):
            AnytimeConfig(nprocs=2, worker_speeds=[1.0, 0.0])

    def test_cluster_validates_too(self):
        g = barabasi_albert(20, 2, seed=0)
        with pytest.raises(ConfigurationError):
            Cluster(g, 2, worker_speeds=[1.0])


class TestWeightedTargets:
    def test_block_sizes_proportional_to_weights(self):
        g = barabasi_albert(400, 3, seed=1)
        p = MultilevelPartitioner(
            seed=1, target_weights=[2, 2, 1, 1]
        ).partition(g, 4)
        sizes = p.block_sizes()
        assert sizes[0] > 1.5 * sizes[2]
        assert sizes[1] > 1.5 * sizes[3]
        assert sum(sizes) == 400

    def test_weight_count_validated(self):
        g = barabasi_albert(40, 2, seed=2)
        with pytest.raises(ValueError):
            MultilevelPartitioner(target_weights=[1, 1]).partition(g, 4)

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(target_weights=[1.0, -1.0])

    def test_cut_still_reasonable(self):
        from repro.partition import RoundRobinPartitioner

        g = barabasi_albert(300, 3, seed=3)
        weighted = MultilevelPartitioner(
            seed=3, target_weights=[3, 1, 1, 1]
        ).partition(g, 4)
        rr = RoundRobinPartitioner().partition(g, 4)
        assert edge_cut(g, weighted) < edge_cut(g, rr)


class TestSpeedAwareExecution:
    def test_exact_results_on_heterogeneous_cluster(self):
        wl = community_workload(120, 20, seed=4, inject_step=1)
        engine = AnytimeAnywhereCloseness(
            wl.base,
            AnytimeConfig(
                nprocs=4,
                worker_speeds=[2.0, 2.0, 1.0, 1.0],
                collect_snapshots=False,
            ),
        )
        engine.setup()
        result = engine.run(changes=wl.stream, strategy="cutedge")
        exact = exact_closeness(wl.final)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_faster_workers_charge_less(self):
        g = barabasi_albert(80, 2, seed=5)

        def superstep_time(speeds):
            cluster = Cluster(g, 2, worker_speeds=speeds)
            cluster.decompose(MultilevelPartitioner(seed=5))
            for w in cluster.workers:
                w.run_initial_approximation()
            return max(w.take_compute_seconds() for w in cluster.workers)

        assert superstep_time([4.0, 4.0]) < superstep_time([1.0, 1.0])

    def test_speed_matched_partition_beats_uniform(self):
        """On a 2/2/1/1 cluster, a speed-proportional DD makes the pipeline
        faster than a uniform split (the slowest worker governs)."""
        g = barabasi_albert(300, 3, seed=6)
        speeds = [2.0, 2.0, 1.0, 1.0]

        def pipeline(partitioner):
            engine = AnytimeAnywhereCloseness(
                g,
                AnytimeConfig(
                    nprocs=4,
                    worker_speeds=speeds,
                    partitioner=partitioner,
                    collect_snapshots=False,
                ),
            )
            engine.setup()
            return engine.run().modeled_seconds

        uniform = pipeline(MultilevelPartitioner(seed=6))
        matched = pipeline(
            MultilevelPartitioner(seed=6, target_weights=speeds)
        )
        assert matched < uniform

    def test_leastloaded_prefers_fast_workers(self):
        g = barabasi_albert(40, 2, seed=7)
        engine = AnytimeAnywhereCloseness(
            g,
            AnytimeConfig(
                nprocs=4,
                worker_speeds=[4.0, 1.0, 1.0, 1.0],
                collect_snapshots=False,
            ),
        )
        engine.setup()
        batch = ChangeBatch(
            vertex_additions=[VertexAddition(100 + i) for i in range(8)]
        )
        placement = LeastLoadedPS().assign(batch, engine.cluster)
        counts = [0] * 4
        for r in placement.values():
            counts[r] += 1
        # the 4x worker absorbs the bulk of the batch
        assert counts[0] == max(counts)
