"""Edge addition / deletion / reweight correctness (anywhere strategies)."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ChangeStream
from repro.graph import ChangeBatch, barabasi_albert, random_weights
from repro.graph.changes import EdgeAddition, EdgeDeletion, EdgeReweight
from repro.core.strategies import EdgeAdditionStrategy, EdgeDeletionStrategy

from ..conftest import cycle_graph, path_graph, run_and_verify


def apply_all(graph, batches):
    final = graph.copy()
    for _s, b in sorted(batches.items()):
        b.apply_to(final)
    return final


class TestEdgeAddition:
    @pytest.mark.parametrize("inject_step", [0, 1, 3])
    def test_shortcut_edge(self, inject_step):
        g = path_graph(12)
        batch = ChangeBatch(edge_additions=[EdgeAddition(0, 11, 1.0)])
        stream = ChangeStream({inject_step: batch})
        run_and_verify(
            g, changes=stream, final=apply_all(g, {0: batch}), nprocs=3
        )

    def test_many_edges_scale_free(self):
        g = barabasi_albert(70, 2, seed=1)
        additions = [
            EdgeAddition(i, 69 - i, 1.0)
            for i in range(5)
            if not g.has_edge(i, 69 - i)
        ]
        batch = ChangeBatch(edge_additions=additions)
        run_and_verify(
            g,
            changes=ChangeStream({1: batch}),
            final=apply_all(g, {0: batch}),
            nprocs=4,
        )

    def test_weighted_edge_addition(self):
        g = random_weights(barabasi_albert(50, 2, seed=2), 1.0, 5.0, seed=2)
        batch = ChangeBatch(edge_additions=[EdgeAddition(3, 47, 0.5)])
        run_and_verify(
            g,
            changes=ChangeStream({1: batch}),
            final=apply_all(g, {0: batch}),
            nprocs=4,
        )

    def test_duplicate_heavier_edge_is_noop(self):
        g = path_graph(6)
        batch = ChangeBatch(edge_additions=[EdgeAddition(0, 1, 50.0)])
        final = g.copy()  # heavier duplicate collapses to existing weight
        run_and_verify(
            g, changes=ChangeStream({1: batch}), final=final, nprocs=2
        )

    def test_strategy_rejects_vertex_changes(self):
        from repro.graph.changes import VertexAddition

        g = path_graph(4)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=2))
        engine.setup()
        stream = ChangeStream(
            {0: ChangeBatch(vertex_additions=[VertexAddition(9)])}
        )
        with pytest.raises(ValueError):
            engine.run(changes=stream, strategy=EdgeAdditionStrategy())


class TestEdgeDeletion:
    @pytest.mark.parametrize("inject_step", [0, 2])
    def test_delete_bridge(self, inject_step):
        g = cycle_graph(12)
        batch = ChangeBatch(edge_deletions=[EdgeDeletion(0, 11)])
        run_and_verify(
            g,
            changes=ChangeStream({inject_step: batch}),
            final=apply_all(g, {0: batch}),
            nprocs=3,
        )

    def test_disconnecting_deletion(self):
        g = path_graph(8)
        batch = ChangeBatch(edge_deletions=[EdgeDeletion(3, 4)])
        run_and_verify(
            g,
            changes=ChangeStream({1: batch}),
            final=apply_all(g, {0: batch}),
            nprocs=2,
        )

    def test_multiple_deletions(self):
        g = barabasi_albert(60, 3, seed=4)
        edges = [e for e in g.edge_list()][::11][:4]
        batch = ChangeBatch(
            edge_deletions=[EdgeDeletion(u, v) for u, v, _w in edges]
        )
        run_and_verify(
            g,
            changes=ChangeStream({1: batch}),
            final=apply_all(g, {0: batch}),
            nprocs=4,
        )

    def test_delete_then_add_back(self):
        g = cycle_graph(10)
        stream = ChangeStream(
            {
                1: ChangeBatch(edge_deletions=[EdgeDeletion(0, 9)]),
                3: ChangeBatch(edge_additions=[EdgeAddition(0, 9, 1.0)]),
            }
        )
        run_and_verify(g, changes=stream, final=g.copy(), nprocs=3)


class TestReweight:
    def test_reweight_decrease(self):
        g = random_weights(cycle_graph(10), 2.0, 4.0, seed=1)
        batch = ChangeBatch(edge_reweights=[EdgeReweight(0, 1, 0.1)])
        run_and_verify(
            g,
            changes=ChangeStream({1: batch}),
            final=apply_all(g, {0: batch}),
            nprocs=3,
        )

    def test_reweight_increase(self):
        g = random_weights(cycle_graph(10), 1.0, 2.0, seed=2)
        batch = ChangeBatch(edge_reweights=[EdgeReweight(0, 1, 50.0)])
        run_and_verify(
            g,
            changes=ChangeStream({1: batch}),
            final=apply_all(g, {0: batch}),
            nprocs=3,
        )

    def test_reweight_same_weight_noop(self):
        g = path_graph(6)
        batch = ChangeBatch(edge_reweights=[EdgeReweight(0, 1, 1.0)])
        run_and_verify(
            g, changes=ChangeStream({1: batch}), final=g.copy(), nprocs=2
        )

    def test_deletion_strategy_rejects_vertex_changes(self):
        from repro.graph.changes import VertexDeletion

        g = path_graph(4)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=2))
        engine.setup()
        stream = ChangeStream(
            {0: ChangeBatch(vertex_deletions=[VertexDeletion(0)])}
        )
        with pytest.raises(ValueError):
            engine.run(changes=stream, strategy=EdgeDeletionStrategy())
