"""Static-graph correctness: the pipeline must converge to exact closeness."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.centrality import exact_closeness
from repro.graph import Graph, barabasi_albert, random_weights
from repro.partition import (
    BFSGrowingPartitioner,
    HashPartitioner,
    MultilevelPartitioner,
    RoundRobinPartitioner,
    SpectralPartitioner,
)

from ..conftest import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    run_and_verify,
    star_graph,
)


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8])
def test_ba_graph_converges_exact(nprocs):
    run_and_verify(barabasi_albert(60, 2, seed=1), nprocs=nprocs)


@pytest.mark.parametrize(
    "maker",
    [
        lambda: path_graph(17),
        lambda: cycle_graph(16),
        lambda: star_graph(12),
        lambda: complete_graph(9),
        lambda: grid_graph(5, 6),
    ],
    ids=["path", "cycle", "star", "complete", "grid"],
)
def test_structured_graphs(maker):
    run_and_verify(maker(), nprocs=4)


def test_weighted_graph():
    g = random_weights(barabasi_albert(50, 2, seed=2), 1.0, 9.0, seed=3)
    run_and_verify(g, nprocs=4, tol=1e-9)


def test_disconnected_graph():
    g = path_graph(6)
    g.add_edges([(10, 11), (11, 12)])
    run_and_verify(g, nprocs=3)


@pytest.mark.parametrize(
    "partitioner",
    [
        MultilevelPartitioner(seed=0),
        SpectralPartitioner(seed=0),
        BFSGrowingPartitioner(seed=0),
        HashPartitioner(),
        RoundRobinPartitioner(),
    ],
    ids=lambda p: p.name,
)
def test_any_partitioner_converges(partitioner):
    g = barabasi_albert(50, 2, seed=4)
    engine = AnytimeAnywhereCloseness(
        g, AnytimeConfig(nprocs=4, partitioner=partitioner)
    )
    engine.setup()
    result = engine.run()
    exact = exact_closeness(g)
    for v, c in exact.items():
        assert result.closeness[v] == pytest.approx(c, abs=1e-9)


def test_static_rc_steps_small_and_scale_free():
    """Paper §IV.C bounds static refinement by the longest processor chain
    (≈ P-1 when shortest paths never revisit a partition).  Paths may
    zigzag between two partitions, so the hard invariant we assert is
    convergence in a handful of rounds — the number of partition-boundary
    crossings of the worst shortest path — independent of P."""
    steps = []
    for nprocs in (2, 4, 8):
        g = barabasi_albert(80, 3, seed=5)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=nprocs))
        engine.setup()
        result = engine.run()
        steps.append(result.rc_steps)
    assert all(s <= 8 for s in steps), steps


def test_single_vertex_graph():
    g = Graph()
    g.add_vertex(0)
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=2))
    engine.setup()
    result = engine.run()
    assert result.closeness == {0: 0.0}


def test_two_vertex_graph():
    g = Graph.from_edges([(0, 1, 2.0)])
    closeness = run_and_verify(g, nprocs=2)
    assert closeness[0] == pytest.approx(0.5)
