"""Engine facade: lifecycle, strategy resolution, baseline restart."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ChangeStream
from repro.bench import community_workload
from repro.centrality import exact_closeness
from repro.errors import ConfigurationError
from repro.graph import ChangeBatch, barabasi_albert
from repro.graph.changes import VertexAddition
from repro.core.strategies import (
    AdaptiveStrategy,
    CompositeStrategy,
    RepartitionStrategy,
)


class TestLifecycle:
    def test_run_before_setup_raises(self):
        engine = AnytimeAnywhereCloseness(barabasi_albert(20, 2, seed=0))
        with pytest.raises(ConfigurationError):
            engine.run()

    def test_engine_copies_input_graph(self):
        g = barabasi_albert(20, 2, seed=0)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=2))
        engine.graph.add_vertex(999)
        assert not g.has_vertex(999)

    def test_resume_across_runs(self):
        wl = community_workload(60, 10, seed=1, inject_step=0)
        engine = AnytimeAnywhereCloseness(wl.base, AnytimeConfig(nprocs=3))
        engine.setup()
        first = engine.run()  # static convergence
        second = engine.run(changes=_shift(wl.stream, first.rc_steps),
                            strategy="roundrobin")
        exact = exact_closeness(wl.final)
        for v, c in exact.items():
            assert second.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_modeled_seconds_accumulate(self):
        g = barabasi_albert(40, 2, seed=2)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=3))
        engine.setup()
        after_setup = engine.modeled_seconds
        result = engine.run()
        assert result.modeled_seconds >= after_setup
        assert result.modeled_minutes == pytest.approx(
            result.modeled_seconds / 60.0
        )

    def test_setup_resets_state(self):
        g = barabasi_albert(30, 2, seed=3)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=2))
        engine.setup()
        engine.run()
        engine.setup()
        assert engine.modeled_seconds < 1e6
        result = engine.run()
        assert result.rc_steps >= 1


class TestStrategyResolution:
    @pytest.fixture
    def engine(self):
        e = AnytimeAnywhereCloseness(
            barabasi_albert(20, 2, seed=0), AnytimeConfig(nprocs=2)
        )
        return e

    @pytest.mark.parametrize(
        "name", ["roundrobin", "cutedge", "leastloaded", "neighbormajority"]
    )
    def test_placement_names(self, engine, name):
        s = engine.resolve_strategy(name)
        assert isinstance(s, CompositeStrategy)

    def test_repartition_name(self, engine):
        assert isinstance(
            engine.resolve_strategy("repartition"), RepartitionStrategy
        )

    def test_adaptive_name(self, engine):
        s = engine.resolve_strategy("adaptive")
        assert isinstance(s, CompositeStrategy)
        assert isinstance(s.addition, AdaptiveStrategy)

    def test_instance_passthrough(self, engine):
        s = RepartitionStrategy()
        assert engine.resolve_strategy(s) is s

    def test_none_passthrough(self, engine):
        assert engine.resolve_strategy(None) is None

    def test_unknown_name(self, engine):
        with pytest.raises(ConfigurationError):
            engine.resolve_strategy("magic")


class TestBaselineRestart:
    def test_static_equivalent_when_no_changes(self):
        g = barabasi_albert(40, 2, seed=4)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=3))
        result = engine.run_baseline_restart(None)
        exact = exact_closeness(g)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)
        assert result.restarts == 0

    def test_restart_per_batch(self):
        wl_a = community_workload(60, 8, seed=5, inject_step=1)
        batch_a = wl_a.single_batch()
        stream = ChangeStream({1: batch_a})
        engine = AnytimeAnywhereCloseness(wl_a.base, AnytimeConfig(nprocs=3))
        result = engine.run_baseline_restart(stream)
        assert result.restarts == 1
        exact = exact_closeness(wl_a.final)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_restart_costs_grow_with_batches(self):
        base = barabasi_albert(80, 2, seed=6)

        def run(n_batches):
            stream = ChangeStream()
            nxt = 1000
            for s in range(n_batches):
                stream.schedule(
                    s,
                    ChangeBatch(
                        vertex_additions=[
                            VertexAddition(nxt + s, edges=((s, 1.0),))
                        ]
                    ),
                )
            engine = AnytimeAnywhereCloseness(
                base, AnytimeConfig(nprocs=3, collect_snapshots=False)
            )
            return engine.run_baseline_restart(stream).modeled_seconds

        assert run(4) > 1.5 * run(1)


class TestQueries:
    def test_distances_match_exact(self):
        import numpy as np

        from repro.centrality import apsp_dijkstra

        g = barabasi_albert(40, 2, seed=7)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=3))
        engine.setup()
        engine.run()
        dist, ids = engine.distances()
        ref, ref_ids = apsp_dijkstra(g, ids)
        np.testing.assert_allclose(dist, ref)

    def test_current_closeness_midway(self):
        g = barabasi_albert(40, 2, seed=8)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=3))
        engine.setup()
        partial = engine.current_closeness()
        assert set(partial) == set(g.vertices())
        assert all(c >= 0 for c in partial.values())


def _shift(stream, offset):
    out = ChangeStream()
    for step, batch in stream:
        out.schedule(step + offset, batch)
    return out
