"""Vertex deletion (the paper's future work, implemented) correctness."""

import pytest

from repro import ChangeStream
from repro.graph import ChangeBatch, barabasi_albert
from repro.graph.changes import VertexAddition, VertexDeletion

from ..conftest import cycle_graph, path_graph, run_and_verify, star_graph


def deletion_stream(step, *vertices):
    return ChangeStream(
        {step: ChangeBatch(vertex_deletions=[VertexDeletion(v) for v in vertices])}
    )


def apply_deletions(graph, *vertices):
    final = graph.copy()
    for v in vertices:
        final.remove_vertex(v)
    return final


@pytest.mark.parametrize("victim", [0, 5, 11])
def test_delete_on_cycle(victim):
    g = cycle_graph(12)
    run_and_verify(
        g,
        changes=deletion_stream(1, victim),
        final=apply_deletions(g, victim),
        nprocs=3,
    )


def test_delete_articulation_vertex():
    g = path_graph(9)
    run_and_verify(
        g,
        changes=deletion_stream(1, 4),
        final=apply_deletions(g, 4),
        nprocs=3,
    )


def test_delete_hub_of_star():
    g = star_graph(8)
    run_and_verify(
        g,
        changes=deletion_stream(1, 0),
        final=apply_deletions(g, 0),
        nprocs=3,
    )


def test_delete_high_degree_scale_free():
    g = barabasi_albert(70, 3, seed=2)
    hub = max(g.vertices(), key=g.degree)
    run_and_verify(
        g,
        changes=deletion_stream(2, hub),
        final=apply_deletions(g, hub),
        nprocs=4,
    )


def test_delete_multiple_vertices():
    g = barabasi_albert(60, 2, seed=3)
    run_and_verify(
        g,
        changes=deletion_stream(1, 10, 20, 30),
        final=apply_deletions(g, 10, 20, 30),
        nprocs=4,
    )


def test_delete_isolated_vertex():
    g = path_graph(6)
    g.add_vertex(99)
    run_and_verify(
        g,
        changes=deletion_stream(1, 99),
        final=apply_deletions(g, 99),
        nprocs=2,
    )


def test_add_then_delete_same_vertex():
    g = barabasi_albert(40, 2, seed=4)
    stream = ChangeStream(
        {
            1: ChangeBatch(
                vertex_additions=[VertexAddition(100, edges=((0, 1.0), (5, 1.0)))]
            ),
            3: ChangeBatch(vertex_deletions=[VertexDeletion(100)]),
        }
    )
    run_and_verify(g, changes=stream, final=g.copy(), nprocs=4)


def test_delete_then_grow_elsewhere():
    g = barabasi_albert(40, 2, seed=5)
    final = apply_deletions(g, 7)
    batch = ChangeBatch(
        vertex_additions=[VertexAddition(200, edges=((3, 1.0),))]
    )
    batch.apply_to(final)
    stream = ChangeStream(
        {
            1: ChangeBatch(vertex_deletions=[VertexDeletion(7)]),
            3: batch,
        }
    )
    run_and_verify(g, changes=stream, final=final, nprocs=4)
