"""Public API surface: repro.closeness(), strategy registry, summaries."""

import json

import pytest

import repro
from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.centrality import exact_closeness
from repro.core.strategies import (
    STRATEGIES,
    CompositeStrategy,
    RepartitionStrategy,
    make_strategy,
    register,
)
from repro.core.strategies.base import DynamicStrategy
from repro.errors import ConfigurationError
from repro.graph import barabasi_albert
from repro.graph.changes import ChangeBatch, ChangeStream, VertexAddition


def _stream():
    return ChangeStream(
        {1: ChangeBatch(vertex_additions=[VertexAddition(300, ((0, 1.0),))])}
    )


class TestOneShotCloseness:
    def test_matches_engine_run(self):
        g = barabasi_albert(50, 2, seed=3)
        one_shot = repro.closeness(g, nprocs=3)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=3))
        engine.setup()
        staged = engine.run()
        assert one_shot.closeness == staged.closeness
        assert one_shot.converged

    def test_exact_against_oracle(self):
        g = barabasi_albert(40, 2, seed=5)
        result = repro.closeness(g, nprocs=4)
        for v, c in exact_closeness(g).items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_dynamic_changes(self):
        g = barabasi_albert(40, 2, seed=5)
        result = repro.closeness(
            g, nprocs=3, changes=_stream(), strategy="cutedge"
        )
        assert 300 in result.closeness
        assert result.converged

    def test_config_supplies_nprocs(self):
        g = barabasi_albert(30, 2, seed=1)
        result = repro.closeness(g, config=AnytimeConfig(nprocs=2))
        assert result.converged

    def test_conflicting_nprocs_rejected(self):
        g = barabasi_albert(30, 2, seed=1)
        with pytest.raises(ConfigurationError):
            repro.closeness(g, nprocs=3, config=AnytimeConfig(nprocs=2))

    def test_exported_in_all(self):
        assert "closeness" in repro.__all__


class TestStrategyRegistry:
    def test_builtins_registered(self):
        for name in (
            "roundrobin",
            "leastloaded",
            "neighbormajority",
            "ldg",
            "cutedge",
            "repartition",
            "adaptive",
        ):
            assert name in STRATEGIES

    def test_make_strategy_builds_fresh_instances(self):
        cfg = AnytimeConfig(nprocs=2)
        a = make_strategy("cutedge", cfg)
        b = make_strategy("cutedge", cfg)
        assert isinstance(a, CompositeStrategy)
        assert a is not b

    def test_make_strategy_repartition(self):
        cfg = AnytimeConfig(nprocs=2)
        assert isinstance(
            make_strategy("repartition", cfg), RepartitionStrategy
        )

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError, match="roundrobin"):
            make_strategy("nope", AnytimeConfig(nprocs=2))

    def test_register_decorator_and_duplicate_guard(self):
        @register("_test_strategy")
        def _factory(config):
            return RepartitionStrategy(config.partitioner)

        try:
            built = make_strategy("_test_strategy", AnytimeConfig(nprocs=2))
            assert isinstance(built, DynamicStrategy)
            with pytest.raises(ConfigurationError):
                register("_test_strategy", _factory)
            register("_test_strategy", _factory, overwrite=True)
        finally:
            STRATEGIES.pop("_test_strategy", None)

    def test_engine_resolves_custom_registration(self):
        @register("_test_engine_strategy")
        def _factory(config):
            return RepartitionStrategy(config.partitioner)

        try:
            g = barabasi_albert(40, 2, seed=2)
            result = repro.closeness(
                g,
                nprocs=2,
                changes=_stream(),
                strategy="_test_engine_strategy",
            )
            assert 300 in result.closeness
        finally:
            STRATEGIES.pop("_test_engine_strategy", None)


class TestRunResultSummary:
    def _result(self, **cfg):
        g = barabasi_albert(40, 2, seed=4)
        return repro.closeness(g, nprocs=3, config=AnytimeConfig(nprocs=3, **cfg))

    def test_summary_fields(self):
        res = self._result()
        s = res.summary()
        assert s["num_vertices"] == len(res.closeness)
        assert s["rc_steps"] == res.rc_steps
        assert s["modeled_seconds"] == res.modeled_seconds
        assert s["converged"] is True
        assert s["wire_format"] == "delta"
        assert s["wire_words"] > 0
        assert s["boundary_words"] > 0
        assert s["wire_words"] >= s["boundary_words"]
        assert (
            s["closeness_min"]
            <= s["closeness_mean"]
            <= s["closeness_max"]
        )

    def test_to_json_round_trips(self):
        res = self._result()
        assert json.loads(res.to_json()) == json.loads(
            json.dumps(res.summary())
        )

    def test_dense_mode_reports_no_sparse_rows(self):
        res = self._result(wire_format="dense")
        s = res.summary()
        assert s["wire_format"] == "dense"
        assert s["boundary_rows_sparse"] == 0
        assert s["boundary_rows_dense"] > 0

    def test_invalid_wire_format_rejected(self):
        with pytest.raises(ConfigurationError):
            AnytimeConfig(wire_format="zip")
