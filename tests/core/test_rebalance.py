"""Load rebalancing by targeted migration (paper §VI future work)."""

import pytest

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import community_workload, incremental_stream
from repro.centrality import exact_closeness
from repro.core.strategies import (
    NeighborMajorityPS,
    RebalancedStrategy,
    VertexAdditionStrategy,
    apply_migration,
    plan_rebalance,
)
from repro.graph import barabasi_albert
from repro.runtime.metrics import snapshot_load

from ..conftest import run_and_verify


def skewed_engine(n=100, nprocs=4, seed=1):
    """An engine whose rank 0 is overloaded by a skewed batch."""
    wl = community_workload(n, n // 4, seed=seed, inject_step=0,
                            n_communities=1)
    engine = AnytimeAnywhereCloseness(
        wl.base, AnytimeConfig(nprocs=nprocs, collect_snapshots=False)
    )
    engine.setup()

    class PinToZero(NeighborMajorityPS):
        def assign(self, batch, cluster):
            return {v: 0 for v in batch.new_vertex_ids()}

    engine.run(
        changes=wl.stream, strategy=VertexAdditionStrategy(PinToZero())
    )
    return wl, engine


class TestPlan:
    def test_no_moves_when_balanced(self):
        g = barabasi_albert(80, 2, seed=0)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
        engine.setup()
        assert plan_rebalance(engine.cluster, imbalance_threshold=0.3) == {}

    def test_moves_reduce_imbalance(self):
        _wl, engine = skewed_engine()
        before = snapshot_load(engine.cluster).vertex_imbalance
        moves = plan_rebalance(engine.cluster, imbalance_threshold=0.1)
        assert moves
        apply_migration(engine.cluster, moves)
        after = snapshot_load(engine.cluster).vertex_imbalance
        assert after < before

    def test_moves_come_from_overloaded_worker(self):
        _wl, engine = skewed_engine()
        moves = plan_rebalance(engine.cluster, imbalance_threshold=0.1)
        old = engine.cluster.partition.assignment
        # plan is computed against a snapshot, so every moved vertex must
        # start on the (initially) most loaded rank 0 or become balanced
        assert all(old[v] != dst for v, dst in moves.items())

    def test_max_moves_cap(self):
        _wl, engine = skewed_engine()
        moves = plan_rebalance(
            engine.cluster, imbalance_threshold=0.0, max_moves=3
        )
        assert len(moves) <= 3


class TestApply:
    def test_exact_after_migration(self):
        wl, engine = skewed_engine()
        moves = plan_rebalance(engine.cluster, imbalance_threshold=0.1)
        apply_migration(engine.cluster, moves)
        result = engine.run()
        exact = exact_closeness(wl.final)
        for v, c in exact.items():
            assert result.closeness[v] == pytest.approx(c, abs=1e-9)

    def test_empty_migration_is_noop(self):
        g = barabasi_albert(40, 2, seed=2)
        engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=4))
        engine.setup()
        before = engine.modeled_seconds
        apply_migration(engine.cluster, {})
        assert engine.modeled_seconds == before

    def test_migration_charges_comm(self):
        _wl, engine = skewed_engine()
        tracer = engine.cluster.tracer
        words_before = tracer.total_words
        moves = plan_rebalance(engine.cluster, imbalance_threshold=0.1)
        apply_migration(engine.cluster, moves)
        assert tracer.total_words > words_before


class TestRebalancedStrategy:
    def test_exact_and_balanced_under_skewed_stream(self):
        wl = incremental_stream(120, 10, 4, seed=3)
        strategy = RebalancedStrategy(
            VertexAdditionStrategy(NeighborMajorityPS()), threshold=0.15
        )
        closeness = run_and_verify(
            wl.base,
            changes=wl.stream,
            strategy=strategy,
            final=wl.final,
            nprocs=4,
        )
        assert closeness  # converged exactly (checked inside)
        assert strategy.total_moves >= 0

    def test_rebalancing_controls_imbalance(self):
        wl = incremental_stream(120, 12, 4, seed=4)

        def final_imbalance(strategy):
            engine = AnytimeAnywhereCloseness(
                wl.base, AnytimeConfig(nprocs=4, collect_snapshots=False)
            )
            engine.setup()
            result = engine.run(changes=wl.stream, strategy=strategy)
            return result.load.vertex_imbalance

        plain = VertexAdditionStrategy(NeighborMajorityPS())
        balanced = RebalancedStrategy(
            VertexAdditionStrategy(NeighborMajorityPS()), threshold=0.10
        )
        assert final_imbalance(balanced) <= final_imbalance(plain) + 1e-9
        assert final_imbalance(balanced) <= 0.25

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            RebalancedStrategy(
                VertexAdditionStrategy(NeighborMajorityPS()), threshold=-1.0
            )

    def test_name_reflects_inner(self):
        s = RebalancedStrategy(VertexAdditionStrategy(NeighborMajorityPS()))
        assert "rebalanced" in s.name and "neighbormajority" in s.name
