"""Performance models: LogP network, compute cost model, comm schedules."""

from .cost import DEFAULT_COST, CostModel
from .logp import DEFAULT_LOGP, LogPParams
from .schedules import (
    SCHEDULES,
    CommSchedule,
    FloodAllToAll,
    PairwiseRounds,
    SequentialAllToAll,
    tree_broadcast_time,
)

__all__ = [
    "LogPParams",
    "DEFAULT_LOGP",
    "CostModel",
    "DEFAULT_COST",
    "CommSchedule",
    "SequentialAllToAll",
    "PairwiseRounds",
    "FloodAllToAll",
    "tree_broadcast_time",
    "SCHEDULES",
]
