"""Compute cost model.

Workers meter their *actual operation counts* (Dijkstra heap operations,
min-plus flops, relaxations, partitioner work) and this model converts the
counts into modeled seconds.  Calibrating constants only rescales the time
axis; the figure *shapes* (orderings, crossovers) come from the counts
themselves, which is what makes the reproduction faithful without the
paper's hardware.

The paper's multithreaded IA Dijkstra (OpenMP, "takes Ο(.../T) where T is
the number of threads") is modeled by the ``threads`` divisor, exactly as
in the paper's analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = ["CostModel", "DEFAULT_COST"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation modeled costs (seconds).

    Attributes
    ----------
    flop:
        One scalar add+compare in a vectorized relaxation / min-plus kernel.
    heap_op:
        One priority-queue operation inside Dijkstra.
    edge_scan:
        Scanning one adjacency entry (Dijkstra edge relaxations, partitioner
        sweeps).
    per_vertex:
        Bookkeeping cost charged per vertex for O(n)-style passes
        (round-robin assignment, DV resize bookkeeping).
    threads:
        Modeled intra-processor thread count for the IA Dijkstra
        (the paper's ``T``).
    """

    flop: float = 2e-9
    heap_op: float = 1.5e-7
    edge_scan: float = 2.5e-8
    per_vertex: float = 1e-8
    threads: int = 8

    def __post_init__(self) -> None:
        for name in ("flop", "heap_op", "edge_scan", "per_vertex"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.threads < 1:
            raise ConfigurationError("threads must be >= 1")

    def with_threads(self, threads: int) -> "CostModel":
        return replace(self, threads=threads)

    # ------------------------------------------------------------------
    # phase cost helpers (all take *counts* measured by the caller)
    # ------------------------------------------------------------------
    def dijkstra_time(self, n_sources: int, n_vertices: int, n_edges: int) -> float:
        """Multi-source Dijkstra: ``n_sources * (m·scan + n·log n·heap) / T``.

        ``n_edges`` is the number of directed adjacency entries scanned per
        source (2m for an undirected graph).
        """
        if n_sources <= 0 or n_vertices <= 0:
            return 0.0
        logn = math.log2(max(n_vertices, 2))
        per_source = (
            n_edges * self.edge_scan + n_vertices * logn * self.heap_op
        )
        return n_sources * per_source / self.threads

    def minplus_time(self, n_rows: int, n_mid: int, n_cols: int) -> float:
        """Dense min-plus product block ``(rows×mid)·(mid×cols)``."""
        return 2.0 * n_rows * n_mid * n_cols * self.flop

    def relax_time(self, n_entries: int) -> float:
        """Vectorized relaxation over ``n_entries`` DV entries."""
        return 2.0 * n_entries * self.flop

    def encode_time(self, n_entries: int) -> float:
        """Delta-encoding a boundary row: one compare per DV entry.

        Charged by the delta wire format when a row is diffed against its
        channel baseline before sending; the word savings on the wire are
        priced separately by the LogP model.
        """
        return n_entries * self.flop

    def scan_time(self, n_entries: int) -> float:
        """Linear scan over adjacency entries (partitioners, bookkeeping)."""
        return n_entries * self.edge_scan

    def vertex_time(self, n_vertices: int) -> float:
        """O(n) vertex bookkeeping (round-robin deals, DV resizes)."""
        return n_vertices * self.per_vertex

    def partition_time(self, n_vertices: int, n_edges: int, nparts: int) -> float:
        """Multilevel partitioner: ``c·(m + n log n)`` plus per-part sweep.

        This matches the paper's treatment — it never opens up METIS's
        constant, only its quasilinear shape.
        """
        if n_vertices <= 0:
            return 0.0
        logn = math.log2(max(n_vertices, 2))
        return (
            n_edges * self.edge_scan * 4.0
            + n_vertices * logn * self.edge_scan
            + nparts * self.per_vertex
        )

    def resize_time(self, n_rows: int, added_cols: int) -> float:
        """Amortized DV growth: copying ``rows × added`` values (the paper's
        "size of the vector is doubled every time" amortization)."""
        return n_rows * added_cols * self.flop


#: Defaults roughly matching a ~GHz-era core so paper-scale runs land in
#: the paper's "minutes" regime.
DEFAULT_COST = CostModel()
