"""LogP / LogGP network cost model.

The paper analyzes every phase of the algorithm in the LogP model
(Culler et al. 1993): ``L`` latency, ``o`` per-message CPU overhead,
``g`` inter-message gap, ``P`` processors.  We add the LogGP per-byte gap
``G`` so large boundary-DV messages are charged bandwidth, and a maximum
message size ``S`` (the paper's "maximum size of a single message ...
chosen such that the network remains lightly loaded"), above which a
message is split into chunks.

Default parameters approximate the paper's testbed: 1 Gb/s Ethernet
(G = 8 ns/byte), tens-of-microsecond latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["LogPParams", "DEFAULT_LOGP"]


@dataclass(frozen=True)
class LogPParams:
    """LogGP parameters (seconds / bytes).

    Attributes
    ----------
    latency: ``L`` — wire latency per message (s).
    overhead: ``o`` — CPU send/receive overhead per message (s).
    gap: ``g`` — minimum gap between consecutive message injections (s).
    byte_gap: ``G`` — time per payload byte (s/byte); 8e-9 ≈ 1 Gb/s.
    max_message_bytes: ``S`` — messages larger than this are chunked.
    word_bytes: size of one distance value on the wire.
    """

    latency: float = 50e-6
    overhead: float = 5e-6
    gap: float = 10e-6
    byte_gap: float = 8e-9
    max_message_bytes: int = 1 << 20
    word_bytes: int = 8

    def __post_init__(self) -> None:
        for name in ("latency", "overhead", "gap", "byte_gap"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.max_message_bytes < self.word_bytes:
            raise ConfigurationError(
                "max_message_bytes must hold at least one word"
            )
        if self.word_bytes <= 0:
            raise ConfigurationError("word_bytes must be positive")

    # ------------------------------------------------------------------
    def chunks(self, nbytes: int) -> int:
        """Number of wire messages needed for an ``nbytes`` payload."""
        if nbytes <= 0:
            return 1  # empty messages still cost a header exchange
        return math.ceil(nbytes / self.max_message_bytes)

    def message_time(self, nbytes: int) -> float:
        """End-to-end time for one point-to-point message of ``nbytes``.

        ``2o + L`` per chunk (send + receive overhead and latency), ``g``
        between chunks, ``G`` per payload byte.
        """
        nbytes = max(nbytes, 0)
        k = self.chunks(nbytes)
        return (
            k * (2.0 * self.overhead + self.latency)
            + (k - 1) * self.gap
            + nbytes * self.byte_gap
        )

    def words_time(self, nwords: int) -> float:
        """Message time for a payload of ``nwords`` distance values.

        ``nwords`` is whatever the sender actually put on the wire —
        under the delta wire format a boundary row costs its encoded
        (sparse) word count here, not its dense size.
        """
        return self.message_time(nwords * self.word_bytes)


#: Default parameters (≈ 1 Gb/s Ethernet cluster, the paper's testbed).
DEFAULT_LOGP = LogPParams()
