"""Communication schedules.

The paper's RC phase uses a *personalized all-to-all* schedule that "ensures
only one message traverses the network at any given time in order to prevent
network flooding and obtain predictable performance ... takes Ο(P²) steps".
We implement that schedule plus two alternatives for ablation:

* :class:`SequentialAllToAll` — the paper's one-message-at-a-time schedule;
  exchange time is the *sum* of all message times.
* :class:`PairwiseRounds` — P-1 rounds of disjoint pairwise exchanges
  (hypercube-style ``dst = rank XOR round`` when P is a power of two,
  otherwise the circulant ``dst = (rank + round) mod P``); per-round time is
  the *max* message time in the round.
* :class:`FloodAllToAll` — every message injected at once; the shared link
  serializes payload bytes but headers overlap, modeling the flooding the
  paper's schedule avoids.

Broadcasts use a binomial tree (paper Fig. 3 line 22: "SEND row to all
other processors // using tree broadcast").
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Sequence, Tuple

from .logp import LogPParams

__all__ = [
    "Message3",
    "CommSchedule",
    "SequentialAllToAll",
    "PairwiseRounds",
    "FloodAllToAll",
    "tree_broadcast_time",
    "SCHEDULES",
]

#: ``(src, dst, nbytes)``
Message3 = Tuple[int, int, int]


class CommSchedule(abc.ABC):
    """Strategy object that prices a batch of point-to-point messages."""

    name: str = "abstract"

    @abc.abstractmethod
    def exchange_time(self, messages: Sequence[Message3], params: LogPParams) -> float:
        """Modeled wall time to deliver all ``messages``."""


class SequentialAllToAll(CommSchedule):
    """One message on the wire at a time (the paper's schedule)."""

    name = "sequential"

    def exchange_time(self, messages: Sequence[Message3], params: LogPParams) -> float:
        return float(
            sum(params.message_time(b) for s, d, b in messages if s != d)
        )


class PairwiseRounds(CommSchedule):
    """Disjoint pairwise-exchange rounds; rounds are serialized, messages
    within a round run concurrently (per-round time = slowest message)."""

    name = "pairwise"

    def exchange_time(self, messages: Sequence[Message3], params: LogPParams) -> float:
        if not messages:
            return 0.0
        ranks = {s for s, _d, _b in messages} | {d for _s, d, _b in messages}
        nprocs = max(ranks) + 1
        # bucket messages by the round in which the (src, dst) pair talks
        power_of_two = nprocs & (nprocs - 1) == 0 and nprocs > 0
        per_round: Dict[int, float] = {}
        leftover = 0.0
        for s, d, b in messages:
            t = params.message_time(b)
            if s == d:
                continue  # self-messages are free (local copy)
            if power_of_two:
                rnd = s ^ d  # 1..P-1
            else:
                rnd = (d - s) % nprocs
            per_round[rnd] = max(per_round.get(rnd, 0.0), t)
        return float(sum(per_round.values()) + leftover)


class FloodAllToAll(CommSchedule):
    """All messages injected simultaneously into one shared link.

    Headers (latency/overhead) overlap; payload bytes serialize on the
    shared medium.  This is the congestion regime the paper's schedule is
    designed to avoid — with bursty large exchanges it can beat the
    sequential schedule on paper but suffers the modeled contention
    penalty ``contention_factor`` per byte.
    """

    name = "flood"

    def __init__(self, contention_factor: float = 2.0) -> None:
        self.contention_factor = contention_factor

    def exchange_time(self, messages: Sequence[Message3], params: LogPParams) -> float:
        wire = [(s, d, b) for s, d, b in messages if s != d]
        if not wire:
            return 0.0
        header = max(
            params.chunks(b) * (2 * params.overhead + params.latency)
            for _s, _d, b in wire
        )
        payload = sum(max(b, 0) for _s, _d, b in wire) * params.byte_gap
        return float(header + self.contention_factor * payload)


def tree_broadcast_time(nbytes: int, nprocs: int, params: LogPParams) -> float:
    """Binomial-tree broadcast of one payload to ``nprocs`` processors."""
    if nprocs <= 1:
        return 0.0
    depth = math.ceil(math.log2(nprocs))
    return depth * params.message_time(nbytes)


#: Registry for CLI/bench lookup.
SCHEDULES: Dict[str, CommSchedule] = {
    "sequential": SequentialAllToAll(),
    "pairwise": PairwiseRounds(),
    "flood": FloodAllToAll(),
}
