"""Generic parameter-grid sweeps over scenario runners.

Utility used by ablation benches and available to downstream users:
evaluate a function over the cartesian product of a parameter grid and
collect one result row per point, with the grid values merged in.

Example::

    rows = grid_sweep(
        lambda nprocs, seed: {"minutes": run(nprocs, seed)},
        {"nprocs": [4, 8, 16], "seed": [0, 1]},
    )
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Mapping, Sequence

__all__ = ["grid_sweep", "grid_points"]


def grid_points(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """The cartesian product of a parameter grid as a list of dicts.

    Key order follows the grid's insertion order; the last key varies
    fastest.
    """
    if not grid:
        return [{}]
    keys = list(grid)
    for k in keys:
        if not isinstance(grid[k], (list, tuple)):
            raise TypeError(f"grid values must be sequences; {k!r} is not")
        if len(grid[k]) == 0:
            raise ValueError(f"grid axis {k!r} is empty")
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[k] for k in keys))
    ]


def grid_sweep(
    fn: Callable[..., Mapping[str, Any]],
    grid: Mapping[str, Sequence[Any]],
    *,
    on_error: str = "raise",
) -> List[Dict[str, Any]]:
    """Call ``fn(**point)`` for every grid point; return merged rows.

    Each row contains the grid point's parameters plus whatever mapping
    ``fn`` returned (function keys win on collision so a runner can
    override a label).  ``on_error="skip"`` drops failing points instead
    of propagating; ``"record"`` keeps the point with an ``"error"`` key.
    """
    if on_error not in ("raise", "skip", "record"):
        raise ValueError(f"unknown on_error mode {on_error!r}")
    rows: List[Dict[str, Any]] = []
    for point in grid_points(grid):
        try:
            result = fn(**point)
        except Exception as exc:  # noqa: BLE001 - policy-controlled
            if on_error == "raise":
                raise
            if on_error == "record":
                rows.append({**point, "error": repr(exc)})
            continue
        row = dict(point)
        row.update(result)
        rows.append(row)
    return rows
