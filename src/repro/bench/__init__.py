"""Benchmark harness: workloads, figure scenarios, reporting."""

from .reporting import format_table, pivot, to_markdown
from .sweep import grid_points, grid_sweep
from .scenarios import (
    ScenarioScale,
    StrategyOutcome,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    run_workload,
    scaling,
    strategy_sweep,
)
from .workloads import (
    Workload,
    community_workload,
    incremental_stream,
    lfr_workload,
    louvain_carved_workload,
    scale_free_workload,
    split_sizes,
)

__all__ = [
    "ScenarioScale",
    "StrategyOutcome",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "run_workload",
    "scaling",
    "strategy_sweep",
    "Workload",
    "scale_free_workload",
    "community_workload",
    "louvain_carved_workload",
    "lfr_workload",
    "incremental_stream",
    "split_sizes",
    "format_table",
    "to_markdown",
    "pivot",
    "grid_sweep",
    "grid_points",
]
