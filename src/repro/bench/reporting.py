"""Result-table formatting for the figure benches and the CLI."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import RunResult

__all__ = ["format_table", "to_markdown", "pivot", "summary_rows"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None
) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = [
        "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def to_markdown(
    rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None
) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    out = ["| " + " | ".join(cols) + " |", "|" + "---|" * len(cols)]
    for r in rows:
        out.append("| " + " | ".join(_fmt(r.get(c, "")) for c in cols) + " |")
    return "\n".join(out)


def summary_rows(
    results: Sequence["RunResult"],
    labels: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """One table row per run, straight from :meth:`RunResult.summary`.

    The canonical way to tabulate runs — benches and the CLI share the
    same digest instead of each assembling its own dict shape.
    """
    if labels is not None and len(labels) != len(results):
        raise ValueError("labels must match results one-to-one")
    rows: List[Dict[str, Any]] = []
    for i, res in enumerate(results):
        row: Dict[str, Any] = {}
        if labels is not None:
            row["run"] = labels[i]
        row.update(res.summary())
        rows.append(row)
    return rows


def pivot(
    rows: Sequence[Dict[str, Any]],
    index: str,
    columns: str,
    values: str,
) -> List[Dict[str, Any]]:
    """Long-to-wide reshape: one output row per ``index`` value, one column
    per distinct ``columns`` value, cells from ``values``.

    This turns per-(size, strategy) rows into the per-size series the
    paper's figures plot.
    """
    order: List[Any] = []
    table: Dict[Any, Dict[str, Any]] = {}
    col_names: List[str] = []
    for r in rows:
        key = r[index]
        if key not in table:
            table[key] = {index: key}
            order.append(key)
        cname = str(r[columns])
        if cname not in col_names:
            col_names.append(cname)
        table[key][cname] = r[values]
    return [table[k] for k in order]
