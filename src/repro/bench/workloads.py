"""Experiment workload builders.

The paper's evaluation (§V) uses:

* a scale-free base graph of 50,000 vertices (Pajek's generator),
* added-vertex batches with community structure, "extracted from a larger
  graph using Pajek's Louvain community extraction method".

We provide three faithful constructions at configurable scale:

* :func:`scale_free_workload` — grow a single Barabási–Albert graph and
  carve the last ``n_new`` vertices into the addition batch (pure
  preferential-attachment growth).
* :func:`community_workload` — the new vertices form planted-partition
  communities attached to the base (controlled community structure, the
  deterministic default for the figure benches).
* :func:`louvain_carved_workload` — the paper's own methodology: generate
  a larger clustered graph, run *our* Louvain, and carve whole detected
  communities out as the addition batch.

Plus :func:`incremental_stream` for the Fig. 8 continuous-evolution
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..graph.changes import ChangeBatch, ChangeStream, batch_from_subgraph
from ..graph.communities import louvain_communities
from ..graph.generators import barabasi_albert, holme_kim, planted_partition
from ..graph.lfr import lfr_benchmark
from ..graph.graph import Graph
from ..graph.views import induced_subgraph
from ..types import VertexId, WeightedEdge

__all__ = [
    "Workload",
    "scale_free_workload",
    "community_workload",
    "louvain_carved_workload",
    "lfr_workload",
    "incremental_stream",
    "split_sizes",
]


@dataclass
class Workload:
    """A base graph plus a stream of change batches and the final graph."""

    base: Graph
    stream: ChangeStream
    final: Graph
    #: description of the construction, for reports
    kind: str = ""

    @property
    def total_added(self) -> int:
        return sum(
            len(b.vertex_additions) for _s, b in self.stream
        )

    def single_batch(self) -> ChangeBatch:
        """The only batch of a single-step workload."""
        steps = self.stream.steps()
        if len(steps) != 1:
            raise ConfigurationError(
                f"workload has {len(steps)} batches, expected exactly 1"
            )
        batch = self.stream.at_step(steps[0])
        assert batch is not None
        return batch


def split_sizes(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` near-equal positive chunks."""
    if parts < 1:
        raise ConfigurationError("parts must be >= 1")
    base, extra = divmod(total, parts)
    sizes = [base + (1 if i < extra else 0) for i in range(parts)]
    return [s for s in sizes if s > 0]


def _reschedule(batch_or_stream, step: int) -> ChangeStream:
    stream = ChangeStream()
    stream.schedule(step, batch_or_stream)
    return stream


def scale_free_workload(
    n_base: int,
    n_new: int,
    *,
    m: int = 3,
    seed: int = 0,
    inject_step: int = 0,
) -> Workload:
    """Grow a BA graph; the last ``n_new`` vertices become the batch.

    BA attachment only points to earlier vertices, so carving a suffix
    yields a valid batch: every new edge targets the base or the batch.
    """
    full = barabasi_albert(n_base + n_new, m, seed=seed)
    base = induced_subgraph(full, range(n_base))
    newg = induced_subgraph(full, range(n_base, n_base + n_new))
    attach: List[WeightedEdge] = []
    for u in range(n_base, n_base + n_new):
        for v, w in full.adjacency_of(u).items():
            if v < n_base:
                attach.append((u, v, w))
    batch = batch_from_subgraph(newg, attach)
    final = base.copy()
    batch.apply_to(final)
    return Workload(
        base=base,
        stream=_reschedule(batch, inject_step),
        final=final,
        kind=f"scale_free(n={n_base}+{n_new}, m={m})",
    )


def _attach_edges(
    new_ids: Sequence[VertexId],
    base: Graph,
    per_vertex: int,
    rng: np.random.Generator,
) -> List[WeightedEdge]:
    """Preferential attachments from each new vertex into the base graph."""
    base_ids = base.vertex_list()
    degrees = np.array([base.degree(v) + 1 for v in base_ids], dtype=np.float64)
    probs = degrees / degrees.sum()
    out: List[WeightedEdge] = []
    for u in new_ids:
        k = min(per_vertex, len(base_ids))
        targets = rng.choice(len(base_ids), size=k, replace=False, p=probs)
        for t in targets:
            out.append((u, base_ids[int(t)], 1.0))
    return out


def community_workload(
    n_base: int,
    n_new: int,
    *,
    n_communities: int = 4,
    m: int = 3,
    intra_degree: float = 4.0,
    p_out: float = 0.002,
    attach_per_vertex: int = 1,
    seed: int = 0,
    inject_step: int = 0,
) -> Workload:
    """BA base + planted-partition batch with ``n_communities`` communities.

    ``intra_degree`` sets the expected within-community degree (converted
    to ``p_in`` per community size), giving CutEdge-PS real structure to
    exploit — the paper's "vertices with community structure" scenario.
    """
    rng = np.random.default_rng(seed)
    base = barabasi_albert(n_base, m, seed=seed)
    sizes = split_sizes(n_new, n_communities)
    p_in = min(1.0, intra_degree / max(max(sizes) - 1, 1))
    newg, _comms = planted_partition(
        sizes, p_in, p_out, seed=seed + 1, offset=n_base
    )
    new_ids = newg.vertex_list()
    attach = _attach_edges(new_ids, base, attach_per_vertex, rng)
    batch = batch_from_subgraph(newg, attach)
    final = base.copy()
    batch.apply_to(final)
    return Workload(
        base=base,
        stream=_reschedule(batch, inject_step),
        final=final,
        kind=(
            f"community(n={n_base}+{n_new}, c={n_communities},"
            f" p_in={p_in:.3f})"
        ),
    )


def louvain_carved_workload(
    n_base_target: int,
    n_new_target: int,
    *,
    m: int = 3,
    p_triad: float = 0.6,
    seed: int = 0,
    inject_step: int = 0,
) -> Workload:
    """The paper's construction: carve Louvain communities out of a larger
    clustered scale-free graph as the addition batch.

    The realized base/new sizes approximate the targets (whole communities
    are moved, never split).
    """
    n_total = n_base_target + n_new_target
    full = holme_kim(n_total, m, p_triad, seed=seed)
    comms = louvain_communities(full, seed=seed)
    # carve smallest communities first until we reach the target, so the
    # base keeps its hubs and stays connected
    comms_sorted = sorted(comms, key=len)
    carved: List[VertexId] = []
    for c in comms_sorted:
        if len(carved) >= n_new_target or len(carved) + len(c) > 2 * n_new_target:
            break
        carved.extend(c)
    if not carved:
        carved = list(comms_sorted[0])
    carved_set = set(carved)
    base_ids = [v for v in full.vertices() if v not in carved_set]
    base = induced_subgraph(full, base_ids)
    newg = induced_subgraph(full, carved)
    attach = [
        (u, v, w)
        for u in carved
        for v, w in full.adjacency_of(u).items()
        if v not in carved_set
    ]
    batch = batch_from_subgraph(newg, attach)
    final = base.copy()
    batch.apply_to(final)
    return Workload(
        base=base,
        stream=_reschedule(batch, inject_step),
        final=final,
        kind=f"louvain_carved(base={len(base_ids)}, new={len(carved)})",
    )


def lfr_workload(
    n_base_target: int,
    n_new_target: int,
    *,
    mu: float = 0.15,
    avg_degree: float = 8.0,
    seed: int = 0,
    inject_step: int = 0,
) -> Workload:
    """Highest-realism workload: carve LFR communities as the batch.

    An LFR benchmark graph (power-law degrees *and* community sizes,
    controlled mixing ``mu``) is generated at the combined size; whole
    planted communities totalling ≈ ``n_new_target`` vertices become the
    addition batch, arriving with their internal structure and their
    inter-community links back to the base — the paper's §V.B methodology
    with the field-standard generator.
    """
    n_total = n_base_target + n_new_target
    full, comms = lfr_benchmark(
        n_total, mu=mu, avg_degree=avg_degree, seed=seed
    )
    comms_sorted = sorted(comms, key=len)
    carved: List[VertexId] = []
    for c in comms_sorted:
        if len(carved) >= n_new_target:
            break
        if len(carved) + len(c) > 2 * n_new_target and carved:
            break
        carved.extend(c)
    carved_set = set(carved)
    base_ids = [v for v in full.vertices() if v not in carved_set]
    base = induced_subgraph(full, base_ids)
    newg = induced_subgraph(full, carved)
    attach = [
        (u, v, w)
        for u in carved
        for v, w in full.adjacency_of(u).items()
        if v not in carved_set
    ]
    batch = batch_from_subgraph(newg, attach)
    final = base.copy()
    batch.apply_to(final)
    return Workload(
        base=base,
        stream=_reschedule(batch, inject_step),
        final=final,
        kind=f"lfr(base={len(base_ids)}, new={len(carved)}, mu={mu})",
    )


def incremental_stream(
    n_base: int,
    per_step: int,
    steps: int,
    *,
    n_communities_per_step: int = 1,
    m: int = 3,
    intra_degree: float = 4.0,
    attach_per_vertex: int = 1,
    seed: int = 0,
) -> Workload:
    """Continuous evolution (Fig. 8): one community-structured batch per RC
    step for ``steps`` steps."""
    rng = np.random.default_rng(seed)
    base = barabasi_albert(n_base, m, seed=seed)
    final = base.copy()
    stream = ChangeStream()
    next_id = n_base
    for s in range(steps):
        sizes = split_sizes(per_step, n_communities_per_step)
        p_in = min(1.0, intra_degree / max(max(sizes) - 1, 1))
        newg, _ = planted_partition(
            sizes, p_in, 0.002, seed=seed + 17 * s + 1, offset=next_id
        )
        new_ids = newg.vertex_list()
        next_id += len(new_ids)
        # attachments may target anything already present (base + earlier
        # batches), mirroring real network growth
        attach = _attach_edges(new_ids, final, attach_per_vertex, rng)
        batch = batch_from_subgraph(newg, attach)
        stream.schedule(s, batch)
        batch.apply_to(final)
    return Workload(
        base=base,
        stream=stream,
        final=final,
        kind=f"incremental(n={n_base}, {per_step}x{steps})",
    )
