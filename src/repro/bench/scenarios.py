"""Figure-by-figure experiment scenarios (paper §V).

Every figure of the paper's evaluation has a function here that regenerates
its data series.  Scales are configurable through :class:`ScenarioScale`;
the defaults are a laptop-friendly reduction of the paper's 50,000-vertex /
16-processor runs (see EXPERIMENTS.md for the scaling discussion), and
:meth:`ScenarioScale.paper` records the original parameters.

All scenarios report **modeled minutes** — the LogP + cost-model clock that
stands in for the paper's wall-clock minutes — plus structural metrics
(new cut edges, load imbalance) and the actual Python wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..centrality.error import closeness_error
from ..centrality.exact import exact_closeness
from ..core.config import AnytimeConfig
from ..core.engine import AnytimeAnywhereCloseness
from ..partition.metrics import new_cut_edges
from ..types import Edge
from .workloads import Workload, community_workload, incremental_stream

__all__ = [
    "ScenarioScale",
    "StrategyOutcome",
    "run_workload",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "strategy_sweep",
]


@dataclass(frozen=True)
class ScenarioScale:
    """Experiment scale knobs.

    ``batch_sizes`` spans the Fig. 5/6/7 x-axis; ``per_step_sizes`` spans
    Fig. 8's (the paper adds 51/187/383/561 vertices per step over 10
    steps).  ``late_step`` is the paper's "RC8" late-injection point.
    """

    n_base: int = 400
    nprocs: int = 8
    m: int = 3
    seed: int = 7
    batch_sizes: Tuple[int, ...] = (8, 20, 40, 80, 160, 240)
    fig4_batch: int = 40
    inject_steps: Tuple[int, ...] = (0, 4, 8)
    late_step: int = 8
    per_step_sizes: Tuple[int, ...] = (3, 8, 16, 24)
    incr_steps: int = 10
    n_communities: int = 4
    attach_per_vertex: int = 1

    @classmethod
    def paper(cls) -> "ScenarioScale":
        """The original paper's scale (hours of simulation — documented,
        not the default)."""
        return cls(
            n_base=50_000,
            nprocs=16,
            batch_sizes=(500, 1000, 2000, 3000, 4500, 6000),
            fig4_batch=512,
            per_step_sizes=(51, 187, 383, 561),
        )

    @classmethod
    def small(cls) -> "ScenarioScale":
        """Tiny scale for tests / smoke runs."""
        return cls(
            n_base=150,
            nprocs=4,
            batch_sizes=(6, 15, 45),
            fig4_batch=15,
            inject_steps=(0, 2, 4),
            late_step=4,
            per_step_sizes=(2, 6),
            incr_steps=4,
            n_communities=2,
        )


@dataclass
class StrategyOutcome:
    """One strategy's outcome on one workload."""

    strategy: str
    modeled_minutes: float
    rc_steps: int
    wall_seconds: float
    new_cut_edges: int
    vertex_imbalance: float
    cut_imbalance: float
    max_error: float = float("nan")
    restarts: int = 0

    def as_row(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "modeled_minutes": self.modeled_minutes,
            "rc_steps": self.rc_steps,
            "new_cut_edges": self.new_cut_edges,
            "vertex_imbalance": self.vertex_imbalance,
            "cut_imbalance": self.cut_imbalance,
            "wall_seconds": self.wall_seconds,
        }


def run_workload(
    workload: Workload,
    strategy: str,
    scale: ScenarioScale,
    *,
    verify: bool = False,
    config: Optional[AnytimeConfig] = None,
) -> StrategyOutcome:
    """Run one (workload, strategy) pair end to end.

    ``strategy="baseline"`` runs the paper's restart-from-scratch
    comparison; anything else is resolved by the engine.
    """
    cfg = config or AnytimeConfig(
        nprocs=scale.nprocs, seed=scale.seed, collect_snapshots=False
    )
    engine = AnytimeAnywhereCloseness(workload.base, cfg)
    old_edges: set[Edge] = {
        (u, v) for u, v, _w in workload.base.edges()
    }
    t0 = time.perf_counter()
    if strategy == "baseline":
        result = engine.run_baseline_restart(workload.stream)
    else:
        engine.setup()
        result = engine.run(changes=workload.stream, strategy=strategy)
    wall = time.perf_counter() - t0
    cluster = engine.cluster
    assert cluster is not None and cluster.partition is not None
    nce = new_cut_edges(cluster.graph, cluster.partition, old_edges)
    load = result.load
    max_err = float("nan")
    if verify:
        exact = exact_closeness(workload.final)
        err = closeness_error(result.closeness, exact)
        max_err = err["max"]
    return StrategyOutcome(
        strategy=strategy,
        modeled_minutes=result.modeled_minutes,
        rc_steps=result.rc_steps,
        wall_seconds=wall,
        new_cut_edges=nce,
        vertex_imbalance=load.vertex_imbalance if load else 0.0,
        cut_imbalance=load.cut_imbalance if load else 0.0,
        max_error=max_err,
        restarts=result.restarts,
    )


# ----------------------------------------------------------------------
# Figure 4 — anytime anywhere vs. baseline restart across injection steps
# ----------------------------------------------------------------------
def figure4(
    scale: Optional[ScenarioScale] = None, *, verify: bool = False
) -> List[Dict[str, object]]:
    """Fig. 4: 512-vertex batch injected at RC0/RC4/RC8 — anytime-anywhere
    (RoundRobin-PS) vs. Baseline Restart."""
    scale = scale or ScenarioScale()
    rows: List[Dict[str, object]] = []
    for inject in scale.inject_steps:
        workload = community_workload(
            scale.n_base,
            scale.fig4_batch,
            n_communities=scale.n_communities,
            m=scale.m,
            attach_per_vertex=scale.attach_per_vertex,
            seed=scale.seed,
            inject_step=inject,
        )
        for strat, label in (
            ("roundrobin", "anytime_roundrobin"),
            ("baseline", "baseline_restart"),
        ):
            out = run_workload(workload, strat, scale, verify=verify)
            row = out.as_row()
            row["strategy"] = label
            row["inject_step"] = f"RC{inject}"
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figures 5/6/7 — strategy comparison across batch sizes
# ----------------------------------------------------------------------
def strategy_sweep(
    scale: Optional[ScenarioScale] = None,
    *,
    inject_step: int = 0,
    strategies: Sequence[str] = ("repartition", "cutedge", "roundrobin"),
    verify: bool = False,
) -> List[Dict[str, object]]:
    """Vertex additions of growing size at one RC step, per strategy."""
    scale = scale or ScenarioScale()
    rows: List[Dict[str, object]] = []
    for size in scale.batch_sizes:
        workload = community_workload(
            scale.n_base,
            size,
            n_communities=scale.n_communities,
            m=scale.m,
            attach_per_vertex=scale.attach_per_vertex,
            seed=scale.seed,
            inject_step=inject_step,
        )
        for strat in strategies:
            out = run_workload(workload, strat, scale, verify=verify)
            row = out.as_row()
            row["batch_size"] = size
            rows.append(row)
    return rows


def figure5(
    scale: Optional[ScenarioScale] = None, *, verify: bool = False
) -> List[Dict[str, object]]:
    """Fig. 5: strategy comparison for additions at RC0."""
    return strategy_sweep(scale, inject_step=0, verify=verify)


def figure6(
    scale: Optional[ScenarioScale] = None, *, verify: bool = False
) -> List[Dict[str, object]]:
    """Fig. 6: strategy comparison for additions at RC8 (late stage)."""
    scale = scale or ScenarioScale()
    return strategy_sweep(scale, inject_step=scale.late_step, verify=verify)


def figure7(
    scale: Optional[ScenarioScale] = None,
    *,
    rows: Optional[List[Dict[str, object]]] = None,
) -> List[Dict[str, object]]:
    """Fig. 7: number of *new* cut edges created by each strategy.

    Derives from a Fig. 5-style sweep (pass ``rows`` to reuse one already
    run) — the paper computes this metric on the same experiments.
    """
    if rows is None:
        rows = figure5(scale)
    return [
        {
            "batch_size": r["batch_size"],
            "strategy": r["strategy"],
            "new_cut_edges": r["new_cut_edges"],
        }
        for r in rows
    ]


# ----------------------------------------------------------------------
# Strong scaling (extension — the paper fixes P = 16)
# ----------------------------------------------------------------------
def scaling(
    scale: Optional[ScenarioScale] = None,
    *,
    proc_counts: Sequence[int] = (1, 2, 4, 8, 16),
    verify: bool = False,
) -> List[Dict[str, object]]:
    """Modeled time of the static pipeline vs. processor count.

    The paper evaluates at a fixed P = 16; this extension sweeps P to show
    the framework's scaling profile: compute shrinks ~1/P while the
    personalized all-to-all grows ~P², so modeled speedup saturates —
    exactly the tradeoff §IV's LogP analysis predicts.
    """
    scale = scale or ScenarioScale()
    from ..graph.generators import barabasi_albert

    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    rows: List[Dict[str, object]] = []
    base_time: Optional[float] = None
    for p in proc_counts:
        engine = AnytimeAnywhereCloseness(
            graph,
            AnytimeConfig(nprocs=p, seed=scale.seed, collect_snapshots=False),
        )
        engine.setup()
        result = engine.run()
        if verify:
            exact = exact_closeness(graph)
            err = closeness_error(result.closeness, exact)
            assert err["max"] < 1e-9
        tracer = engine.cluster.tracer  # type: ignore[union-attr]
        comm = sum(r.modeled_comm for r in tracer.records)
        total = tracer.modeled_seconds
        if base_time is None:
            base_time = total
        rows.append(
            {
                "nprocs": p,
                "modeled_seconds": total,
                "comm_seconds": comm,
                "comm_fraction": comm / total if total else 0.0,
                "speedup": base_time / total if total else 0.0,
                "rc_steps": result.rc_steps,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 8 — incremental additions over 10 RC steps
# ----------------------------------------------------------------------
def figure8(
    scale: Optional[ScenarioScale] = None,
    *,
    strategies: Sequence[str] = (
        "baseline",
        "repartition",
        "roundrobin",
        "cutedge",
    ),
    verify: bool = False,
) -> List[Dict[str, object]]:
    """Fig. 8: per-step batches over ``incr_steps`` RC steps, four methods."""
    scale = scale or ScenarioScale()
    rows: List[Dict[str, object]] = []
    for per_step in scale.per_step_sizes:
        workload = incremental_stream(
            scale.n_base,
            per_step,
            scale.incr_steps,
            m=scale.m,
            attach_per_vertex=scale.attach_per_vertex,
            seed=scale.seed,
        )
        for strat in strategies:
            out = run_workload(workload, strat, scale, verify=verify)
            row = out.as_row()
            row["per_step"] = per_step
            row["cumulative"] = workload.total_added
            rows.append(row)
    return rows
