"""Checkpoint / restore for long-running analyses.

An anytime computation is exactly the kind of thing one wants to persist:
all accumulated refinement lives in the workers' DV matrices, and those
are plain arrays.  A checkpoint captures

* the global graph, the partition, and the column index,
* every worker's DV matrix and local APSP,
* the modeled/wall clocks and the next RC step,

in a single compressed ``.npz``.  Restore rebuilds the cluster around the
saved partition, re-wires subscriptions, and conservatively queues a full
boundary refresh (any in-flight rows at save time are thereby recovered;
re-sending converged rows is harmless, only mildly over-charging the
modeled clock).  Resuming a converged checkpoint therefore converges
immediately; resuming a mid-computation checkpoint continues refining.

The engine's *configuration* (cost model, partitioner, schedule) is code,
not data — pass the same :class:`AnytimeConfig` to :func:`load_checkpoint`
that produced the checkpoint, or accept the defaults.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import ConfigurationError
from ..graph.graph import Graph
from ..graph.views import extract_local_subgraph
from ..partition.base import Partition
from ..runtime.cluster import Cluster
from .config import AnytimeConfig
from .engine import AnytimeAnywhereCloseness

__all__ = ["save_checkpoint", "load_checkpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1

_PathLike = Union[str, Path]


def save_checkpoint(engine: AnytimeAnywhereCloseness, path: _PathLike) -> None:
    """Persist a set-up engine's full computation state to ``path``."""
    cluster = engine.cluster
    if cluster is None or cluster.partition is None:
        raise ConfigurationError("engine must be set up before checkpointing")
    graph = cluster.graph
    edges = graph.edge_list()
    arrays = {
        "edges_u": np.array([u for u, _v, _w in edges], dtype=np.int64),
        "edges_v": np.array([v for _u, v, _w in edges], dtype=np.int64),
        "edges_w": np.array([w for _u, _v, w in edges], dtype=np.float64),
        "vertices": np.array(graph.vertex_list(), dtype=np.int64),
        "index_ids": np.array(cluster.index.ids, dtype=np.int64),
        "part_vertices": np.array(
            sorted(cluster.partition.assignment), dtype=np.int64
        ),
        "part_ranks": np.array(
            [
                cluster.partition.assignment[v]
                for v in sorted(cluster.partition.assignment)
            ],
            dtype=np.int64,
        ),
    }
    for w in cluster.workers:
        arrays[f"dv_{w.rank}"] = w.dv
        arrays[f"apsp_{w.rank}"] = w.local_apsp
    meta = {
        "version": CHECKPOINT_VERSION,
        "nprocs": cluster.nprocs,
        "next_step": engine._next_step,
        "modeled_seconds": cluster.tracer.modeled_seconds,
        "wall_seconds": cluster.tracer.wall_seconds,
        "wf_improved": engine.config.wf_improved,
        "worker_speeds": [w.speed for w in cluster.workers],
    }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_checkpoint(
    path: _PathLike, config: Optional[AnytimeConfig] = None
) -> AnytimeAnywhereCloseness:
    """Rebuild an engine from a checkpoint; ready for :meth:`run`.

    ``config`` supplies the non-data configuration (cost model,
    partitioners, schedule); its ``nprocs`` must match the checkpoint.
    """
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
        if meta.get("version") != CHECKPOINT_VERSION:
            raise ConfigurationError(
                f"unsupported checkpoint version {meta.get('version')}"
            )
        nprocs = int(meta["nprocs"])
        speeds = meta.get("worker_speeds")
        if speeds is not None and all(sp == 1.0 for sp in speeds):
            speeds = None  # homogeneous: no need to carry the list
        if config is None:
            config = AnytimeConfig(
                nprocs=nprocs,
                wf_improved=bool(meta["wf_improved"]),
                worker_speeds=speeds,
            )
        if config.nprocs != nprocs:
            raise ConfigurationError(
                f"config.nprocs={config.nprocs} does not match the"
                f" checkpoint's {nprocs}"
            )
        graph = Graph()
        for v in data["vertices"]:
            graph.add_vertex(int(v))
        for u, v, w in zip(data["edges_u"], data["edges_v"], data["edges_w"]):
            graph.add_edge(int(u), int(v), float(w))
        assignment = {
            int(v): int(r)
            for v, r in zip(data["part_vertices"], data["part_ranks"])
        }
        index_ids = [int(v) for v in data["index_ids"]]
        dvs = {r: data[f"dv_{r}"] for r in range(nprocs)}
        apsps = {r: data[f"apsp_{r}"] for r in range(nprocs)}

    engine = AnytimeAnywhereCloseness(graph, config)
    cluster = Cluster(
        graph.copy(),
        nprocs,
        cost=config.cost,
        logp=config.logp,
        schedule=config.schedule,
        worker_speeds=config.worker_speeds,
    )
    # the engine's graph copy is authoritative; keep cluster.graph == it
    engine.cluster = cluster
    cluster.graph = engine.graph
    # rebuild the column index in the saved order
    cluster.index.ids = []
    cluster.index.col = {}
    cluster.index.add_many(index_ids)
    part = Partition(nprocs, assignment)
    part.validate_against(engine.graph)
    cluster.partition = part
    blocks = part.blocks()
    for r in range(nprocs):
        sub = extract_local_subgraph(engine.graph, blocks[r], assignment, r)
        w = cluster.workers[r]
        w.load_subgraph(sub)
        dv = dvs[r]
        if dv.shape != w.dv.shape:
            raise ConfigurationError(
                f"checkpoint DV shape {dv.shape} does not match rebuilt"
                f" worker {r} shape {w.dv.shape}"
            )
        w.dv = dv.copy()
        w.local_apsp = apsps[r].copy()
        w.take_compute_seconds()
    cluster._wire_subscriptions()
    # conservative refresh: recover any in-flight state at save time
    for w in cluster.workers:
        w.queue_all_boundary_rows()
        w.request_full_repropagate()
    cluster.tracer.modeled_seconds = float(meta["modeled_seconds"])
    cluster.tracer.wall_seconds = float(meta["wall_seconds"])
    engine._next_step = int(meta["next_step"])
    return engine
