"""Checkpoint / restore for long-running analyses.

An anytime computation is exactly the kind of thing one wants to persist:
all accumulated refinement lives in the workers' DV matrices, and those
are plain arrays.  A checkpoint captures

* the global graph, the partition, and the column index,
* every worker's DV matrix and local APSP,
* the modeled/wall clocks and the next RC step,

in a single compressed ``.npz``.  Restore rebuilds the cluster around the
saved partition, re-wires subscriptions, and conservatively queues a full
boundary refresh (any in-flight rows at save time are thereby recovered;
re-sending converged rows is harmless, only mildly over-charging the
modeled clock).  Resuming a converged checkpoint therefore converges
immediately; resuming a mid-computation checkpoint continues refining.

The engine's *configuration* (cost model, partitioner, schedule) is code,
not data — pass the same :class:`AnytimeConfig` to :func:`load_checkpoint`
that produced the checkpoint, or accept the defaults.

The same machinery backs the fault-tolerance supervisor's **in-memory**
periodic checkpoints (:class:`ClusterStateSnapshot` /
:func:`snapshot_cluster_state`): instead of serializing to disk, each
worker's derived state is copied — modeled as a ship to a buddy rank —
so a crashed rank can restore its DV rows without rerunning the IA-phase
Dijkstra (see :mod:`repro.runtime.supervisor`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..graph.graph import Graph
from ..graph.views import extract_local_subgraph
from ..partition.base import Partition
from ..runtime.cluster import Cluster
from ..runtime.message import dense_row_words
from ..types import FloatArray, Rank, VertexId

if TYPE_CHECKING:  # pragma: no cover
    from .config import AnytimeConfig
    from .engine import AnytimeAnywhereCloseness

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_VERSION",
    "ClusterStateSnapshot",
    "snapshot_cluster_state",
]

CHECKPOINT_VERSION = 1

_PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# in-memory snapshots (fault-tolerance supervisor)
# ----------------------------------------------------------------------
@dataclass
class ClusterStateSnapshot:
    """An in-memory copy of every worker's derived state at one RC step.

    Unlike the on-disk checkpoint this does not persist the graph — the
    graph is durable input; only the *derived* arrays a crash destroys are
    captured.  ``owned`` / ``local_edges`` record the structural context
    so a restore can detect whether the saved local APSP is still exact.
    """

    step: int
    n_cols: int
    index_ids: Tuple[VertexId, ...]
    owned: Dict[Rank, Tuple[VertexId, ...]]
    dv: Dict[Rank, FloatArray]
    apsp: Dict[Rank, FloatArray]
    local_edges: Dict[Rank, int]

    def words(self, rank: Rank) -> int:
        """Wire words to ship one rank's saved state (DV rows + APSP).

        DV rows are always shipped dense (same pricing as a dense
        boundary row): snapshots are full-state transfers, never deltas.
        """
        dv = self.dv.get(rank)
        apsp = self.apsp.get(rank)
        n_rows = 0 if dv is None else dv.shape[0]
        n_cols = 0 if dv is None else dv.shape[1]
        return n_rows * dense_row_words(n_cols) + (
            0 if apsp is None else apsp.size
        )

    def compatible_with(self, cluster: Cluster) -> bool:
        """Whether restored rows would align with the cluster's columns.

        Columns only ever *append* under additions; deletions (which
        compact columns and invalidate upper bounds) must drop the
        snapshot instead — the supervisor handles that.
        """
        if self.n_cols > cluster.n_columns:
            return False
        return tuple(cluster.index.ids[: self.n_cols]) == self.index_ids


def snapshot_cluster_state(cluster: Cluster, step: int) -> ClusterStateSnapshot:
    """Copy every worker's derived state (DV, local APSP) at ``step``.

    Pure observation — the *communication* cost of shipping the copies to
    buddy ranks is charged by the caller (the supervisor), keeping the
    policy's LogP accounting in one place.
    """
    return ClusterStateSnapshot(
        step=step,
        n_cols=cluster.n_columns,
        index_ids=tuple(cluster.index.ids),
        owned={w.rank: tuple(w.owned) for w in cluster.workers},
        dv={w.rank: w.dv.copy() for w in cluster.workers},
        apsp={w.rank: w.local_apsp.copy() for w in cluster.workers},
        local_edges={
            w.rank: w.local_graph.num_edges for w in cluster.workers
        },
    )


# ----------------------------------------------------------------------
# on-disk checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(
    engine: "AnytimeAnywhereCloseness", path: _PathLike
) -> None:
    """Persist a set-up engine's full computation state to ``path``."""
    cluster = engine.cluster
    if cluster is None or cluster.partition is None:
        raise ConfigurationError("engine must be set up before checkpointing")
    graph = cluster.graph
    edges = graph.edge_list()
    arrays = {
        "edges_u": np.array([u for u, _v, _w in edges], dtype=np.int64),
        "edges_v": np.array([v for _u, v, _w in edges], dtype=np.int64),
        "edges_w": np.array([w for _u, _v, w in edges], dtype=np.float64),
        "vertices": np.array(graph.vertex_list(), dtype=np.int64),
        "index_ids": np.array(cluster.index.ids, dtype=np.int64),
        "part_vertices": np.array(
            sorted(cluster.partition.assignment), dtype=np.int64
        ),
        "part_ranks": np.array(
            [
                cluster.partition.assignment[v]
                for v in sorted(cluster.partition.assignment)
            ],
            dtype=np.int64,
        ),
    }
    for w in cluster.workers:
        arrays[f"dv_{w.rank}"] = w.dv
        arrays[f"apsp_{w.rank}"] = w.local_apsp
    meta = {
        "version": CHECKPOINT_VERSION,
        "nprocs": cluster.nprocs,
        "next_step": engine._next_step,
        "modeled_seconds": cluster.tracer.modeled_seconds,
        "wall_seconds": cluster.tracer.wall_seconds,
        "wf_improved": engine.config.wf_improved,
        "worker_speeds": [w.speed for w in cluster.workers],
    }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    # crash-safe write: stage into a sibling temp file, force it to disk,
    # then atomically rename over the destination.  A crash mid-write
    # leaves either the previous complete checkpoint or a stray .tmp —
    # never a truncated file at the final path.
    tmp = str(path) + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


_REQUIRED_ARRAYS = (
    "edges_u",
    "edges_v",
    "edges_w",
    "vertices",
    "index_ids",
    "part_vertices",
    "part_ranks",
)


def _read_checkpoint(
    path: _PathLike,
) -> Tuple[Dict[str, Any], Dict[str, FloatArray]]:
    """Load and structurally validate a checkpoint file.

    Raises :class:`ConfigurationError` with a clear message for anything
    short of a well-formed, current-version checkpoint — a corrupted or
    truncated file, a foreign ``.npz``, or a version mismatch — instead of
    failing deep inside array reshaping.
    """
    try:
        with np.load(path) as data:
            keys = set(data.files)
            if "meta_json" not in keys:
                raise ConfigurationError(
                    f"{path}: not a repro checkpoint (no meta_json entry)"
                )
            try:
                meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise ConfigurationError(
                    f"{path}: corrupted checkpoint metadata ({exc})"
                ) from exc
            version = meta.get("version") if isinstance(meta, dict) else None
            if version != CHECKPOINT_VERSION:
                raise ConfigurationError(
                    f"{path}: unsupported checkpoint version {version!r}"
                    f" (this build reads version {CHECKPOINT_VERSION})"
                )
            missing = [k for k in _REQUIRED_ARRAYS if k not in keys]
            try:
                nprocs = int(meta["nprocs"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"{path}: checkpoint metadata lacks a valid nprocs"
                ) from exc
            if nprocs < 1:
                raise ConfigurationError(
                    f"{path}: checkpoint nprocs must be >= 1, got {nprocs}"
                )
            missing += [
                k
                for r in range(nprocs)
                for k in (f"dv_{r}", f"apsp_{r}")
                if k not in keys
            ]
            if missing:
                raise ConfigurationError(
                    f"{path}: checkpoint is missing arrays {missing[:6]}"
                )
            arrays = {
                k: data[k] for k in sorted(keys) if k != "meta_json"
            }
    except ConfigurationError:
        raise
    except Exception as exc:  # zipfile/pickle/OS-level corruption
        raise ConfigurationError(
            f"{path}: cannot read checkpoint ({exc})"
        ) from exc
    return meta, arrays


def load_checkpoint(
    path: _PathLike, config: Optional["AnytimeConfig"] = None
) -> "AnytimeAnywhereCloseness":
    """Rebuild an engine from a checkpoint; ready for :meth:`run`.

    ``config`` supplies the non-data configuration (cost model,
    partitioners, schedule); its ``nprocs`` must match the checkpoint.
    Raises :class:`ConfigurationError` for corrupted files, version
    mismatches, and checkpoints inconsistent with themselves or with the
    supplied configuration.
    """
    # imported here: checkpoint <-> engine would otherwise be a cycle
    from .config import AnytimeConfig
    from .engine import AnytimeAnywhereCloseness

    meta, data = _read_checkpoint(path)
    nprocs = int(meta["nprocs"])
    speeds = meta.get("worker_speeds")
    if speeds is not None and all(sp == 1.0 for sp in speeds):
        speeds = None  # homogeneous: no need to carry the list
    if config is None:
        config = AnytimeConfig(
            nprocs=nprocs,
            wf_improved=bool(meta.get("wf_improved", False)),
            worker_speeds=speeds,
        )
    if config.nprocs != nprocs:
        raise ConfigurationError(
            f"config.nprocs={config.nprocs} does not match the"
            f" checkpoint's {nprocs}"
        )
    graph = Graph()
    for v in data["vertices"]:
        graph.add_vertex(int(v))
    for u, v, w in zip(data["edges_u"], data["edges_v"], data["edges_w"]):
        graph.add_edge(int(u), int(v), float(w))
    assignment = {
        int(v): int(r)
        for v, r in zip(data["part_vertices"], data["part_ranks"])
    }
    index_ids = [int(v) for v in data["index_ids"]]
    if set(index_ids) != set(graph.vertices()) or len(index_ids) != len(
        set(index_ids)
    ):
        raise ConfigurationError(
            f"{path}: checkpoint column index does not match its own"
            " vertex set (corrupted or hand-edited checkpoint)"
        )
    dvs = {r: data[f"dv_{r}"] for r in range(nprocs)}
    apsps = {r: data[f"apsp_{r}"] for r in range(nprocs)}

    engine = AnytimeAnywhereCloseness(graph, config)
    cluster = Cluster(
        graph.copy(),
        nprocs,
        cost=config.cost,
        logp=config.logp,
        schedule=config.schedule,
        worker_speeds=config.worker_speeds,
        wire_format=config.wire_format,
        backend=config.backend,
        kernel_tier=config.kernel_tier,
    )
    # the engine's graph copy is authoritative; keep cluster.graph == it
    engine.cluster = cluster
    cluster.graph = engine.graph
    # rebuild the column index in the saved order
    cluster.index.ids = []
    cluster.index.col = {}
    cluster.index.add_many(index_ids)
    part = Partition(nprocs, assignment)
    part.validate_against(engine.graph)
    cluster.partition = part
    blocks = part.blocks()
    for r in range(nprocs):
        sub = extract_local_subgraph(engine.graph, blocks[r], assignment, r)
        w = cluster.workers[r]
        w.load_subgraph(sub)
        dv = dvs[r]
        if dv.shape != w.dv.shape:
            raise ConfigurationError(
                f"checkpoint DV shape {dv.shape} does not match rebuilt"
                f" worker {r} shape {w.dv.shape}"
            )
        apsp = apsps[r]
        n = len(blocks[r])
        if apsp.size and apsp.shape != (n, n):
            raise ConfigurationError(
                f"checkpoint local APSP shape {apsp.shape} does not match"
                f" worker {r}'s {n} owned vertices"
            )
        w.dv = dv.copy()
        w.local_apsp = apsp.copy()
        w.take_compute_seconds()
    cluster._wire_subscriptions()
    # conservative refresh: recover any in-flight state at save time.
    # Delta baselines are deliberately NOT checkpointed: fresh workers
    # start with empty per-channel state and queue_all_boundary_rows()
    # resets it besides, so the first post-restore exchange degrades to
    # dense sends and re-establishes the baselines.
    for w in cluster.workers:
        w.queue_all_boundary_rows()
        w.request_full_repropagate()
    try:
        cluster.tracer.modeled_seconds = float(meta["modeled_seconds"])
        cluster.tracer.wall_seconds = float(meta["wall_seconds"])
        engine._next_step = int(meta["next_step"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"{path}: checkpoint metadata lacks valid clocks/step"
        ) from exc
    return engine
