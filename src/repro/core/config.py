"""Engine configuration."""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..errors import ConfigurationError
from ..model.cost import DEFAULT_COST, CostModel
from ..model.logp import DEFAULT_LOGP, LogPParams
from ..model.schedules import CommSchedule, SequentialAllToAll
from ..partition.base import Partitioner
from ..partition.multilevel import MultilevelPartitioner

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.chaos import FaultPlan
    from ..runtime.health import HealthPolicy

__all__ = ["AnytimeConfig", "ResilienceConfig"]

#: valid crash-recovery policy names; literal duplicate of
#: runtime.chaos.RECOVERY_POLICIES — config must stay importable
#: without pulling in the runtime package
_RECOVERY_POLICIES = ("warm", "checkpoint", "redistribute", "escalate")


@dataclass
class ResilienceConfig:
    """The fault-tolerance knobs, grouped.

    Attributes
    ----------
    recovery:
        Crash-recovery policy for fault-injected runs (``"warm"`` |
        ``"checkpoint"`` | ``"redistribute"`` | ``"escalate"``); see
        :mod:`repro.runtime.supervisor`.  ``"escalate"`` climbs the
        per-rank ladder warm -> checkpoint -> redistribute and degrades
        gracefully when health budgets run out.
    checkpoint_interval:
        RC steps between the supervisor's in-memory checkpoints (used
        by the ``"checkpoint"`` and ``"escalate"`` policies).
    fault_plan:
        Optional :class:`~repro.runtime.chaos.FaultPlan` applied to
        every :meth:`~repro.core.engine.AnytimeAnywhereCloseness.run`
        call that does not pass its own — deterministic fault injection
        becomes part of the configuration instead of a per-call kwarg.
    """

    recovery: str = "warm"
    checkpoint_interval: int = 8
    fault_plan: Optional["FaultPlan"] = None

    def __post_init__(self) -> None:
        if self.recovery not in _RECOVERY_POLICIES:
            raise ConfigurationError(
                f"unknown recovery policy {self.recovery!r}"
            )
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")


@dataclass
class AnytimeConfig:
    """Configuration for :class:`~repro.core.engine.AnytimeAnywhereCloseness`.

    Attributes
    ----------
    nprocs:
        Number of simulated processors (the paper uses 16).
    partitioner:
        Cut-minimizing partitioner for the DD phase (and Repartition-S);
        defaults to the multilevel METIS-style partitioner.
    cutedge_partitioner:
        Serial partitioner CutEdge-PS applies to the new-vertex graph;
        defaults to a fresh multilevel partitioner (the paper uses serial
        METIS here).
    cost / logp / schedule:
        Performance models (see :mod:`repro.model`).
    max_rc_steps:
        Safety bound on recombination steps before
        :class:`~repro.errors.ConvergenceError` is raised.
    repartition_threshold:
        Fraction of |V| above which the adaptive strategy switches from
        anywhere vertex addition to Repartition-S.
    wf_improved:
        Use Wasserman–Faust-scaled closeness in snapshots/results.
    collect_snapshots:
        Record an anytime snapshot after every RC step.
    seed:
        Seed for partitioner randomness when defaults are constructed.
    strategy_policy:
        Name of the registered strategy policy ``strategy="auto"``
        resolves (see
        :func:`repro.core.strategies.registry.register_policy`);
        defaults to the signal-driven policy.
    resilience:
        Typed group of the fault-tolerance knobs
        (:class:`ResilienceConfig`: ``recovery``,
        ``checkpoint_interval``, ``fault_plan``).  Always populated
        after construction; defaults are built when omitted.
    recovery:
        Deprecated — pass ``resilience=ResilienceConfig(recovery=...)``.
        Kept one release as a shim: a non-``None`` value emits a
        :class:`DeprecationWarning` and is folded into ``resilience``.
        After construction the attribute mirrors
        ``resilience.recovery`` for readers.
    checkpoint_interval:
        Deprecated — pass
        ``resilience=ResilienceConfig(checkpoint_interval=...)``.  Same
        shim + mirror behavior as ``recovery``.
    health:
        Optional :class:`~repro.runtime.health.HealthPolicy` enabling the
        self-healing runtime for fault-injected runs: per-rank liveness
        tracking, deadline-driven straggler speculation, modeled retry
        backoff and graceful degradation.  ``None`` (the default) keeps
        the pre-health behavior, except that ``recovery="escalate"``
        builds a default policy internally.
    wire_format:
        Boundary-row encoding: ``"delta"`` (default) ships only the
        columns that improved since the last send on each channel, with
        an automatic dense fallback; ``"dense"`` ships full rows and is
        kept as the reference oracle.  Both converge to bitwise-identical
        closeness values; only the modeled wire traffic differs.
    backend:
        Where the per-rank compute kernels execute: ``"serial"`` (in the
        coordinating process, the default) or ``"process"`` (a
        persistent process pool with the DV / local-APSP matrices in
        shared memory).  Both are bitwise-identical in results, traces
        and modeled clocks; only wall-clock time differs.  The default
        honors the ``REPRO_BACKEND`` environment variable so whole test
        suites can be re-run under another backend without code changes.
    kernel_tier:
        Which kernel implementation executes the per-rank compute (see
        :mod:`repro.runtime.kernels`): ``"numpy"`` (the default — the
        original statements, kept as the bitwise oracle), ``"scipy"``
        (same arithmetic, source-chunked IA so one rank's Dijkstra fans
        out across the process pool) or ``"numba"`` (optional
        ``@njit``-compiled kernels, ``pip install repro[numba]``,
        auto-falling back to ``scipy`` behavior when numba is absent).
        ``numpy`` and ``scipy`` are bitwise-identical in closeness,
        traces and modeled clocks; ``numba`` is exact on relaxation and
        min-plus and bounded on Dijkstra (see
        ``repro.runtime.kernels.NUMBA_CLOSENESS_RTOL``).  Honors the
        ``REPRO_KERNEL_TIER`` environment variable, like ``backend``.
    observers:
        Observability specs handed to :func:`repro.obs.build_hub` —
        exporter strings (``"jsonl:PATH"``, ``"perfetto:PATH"``,
        ``"prom:PATH"``), the keywords ``"metrics"`` (in-memory metrics
        registry only) / ``"convergence"`` (default per-superstep
        quality probe), or ready-made ``Observer`` /
        ``ConvergenceProbe`` instances.  Empty (the default) disables
        all instrumentation at zero cost.  Enabling observers never
        changes results: closeness, modeled clock, wire totals and
        fault accounting stay bitwise identical.
    """

    nprocs: int = 16
    partitioner: Optional[Partitioner] = None
    cutedge_partitioner: Optional[Partitioner] = None
    cost: CostModel = DEFAULT_COST
    logp: LogPParams = DEFAULT_LOGP
    schedule: Optional[CommSchedule] = None
    max_rc_steps: int = 10_000
    repartition_threshold: float = 0.05
    wf_improved: bool = False
    collect_snapshots: bool = True
    seed: int = 0
    #: relative processor speeds for heterogeneous clusters (len == nprocs);
    #: None = homogeneous.  Pair with a MultilevelPartitioner whose
    #: target_weights match for speed-proportional blocks.
    worker_speeds: Optional[List[float]] = None
    strategy_policy: str = "signals"
    resilience: Optional[ResilienceConfig] = None
    recovery: Optional[str] = None
    checkpoint_interval: Optional[int] = None
    health: Optional["HealthPolicy"] = None
    wire_format: str = "delta"
    backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_BACKEND", "serial")
    )
    kernel_tier: str = field(
        default_factory=lambda: os.environ.get("REPRO_KERNEL_TIER", "numpy")
    )
    observers: Sequence[object] = ()

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ConfigurationError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.max_rc_steps < 1:
            raise ConfigurationError("max_rc_steps must be >= 1")
        if not 0.0 <= self.repartition_threshold <= 1.0:
            raise ConfigurationError(
                "repartition_threshold must be a fraction in [0, 1]"
            )
        if not self.strategy_policy:
            raise ConfigurationError("strategy_policy must be a policy name")
        self._fold_resilience()
        if self.health is not None:
            # lazy import: the runtime package is only pulled in when the
            # self-healing features are actually requested
            from ..runtime.health import HealthPolicy

            if not isinstance(self.health, HealthPolicy):
                raise ConfigurationError(
                    "health must be a repro.runtime.health.HealthPolicy,"
                    f" got {type(self.health).__name__}"
                )
        if self.wire_format not in ("dense", "delta"):
            raise ConfigurationError(
                f"wire_format must be 'dense' or 'delta',"
                f" got {self.wire_format!r}"
            )
        # literal duplicate of runtime.backends.available_backends():
        # config must stay importable without pulling in the runtime
        if self.backend not in ("serial", "process"):
            raise ConfigurationError(
                f"backend must be 'serial' or 'process',"
                f" got {self.backend!r}"
            )
        # literal duplicate of runtime.kernels.available_tiers(), for
        # the same importability reason
        if self.kernel_tier not in ("numpy", "scipy", "numba"):
            raise ConfigurationError(
                f"kernel_tier must be 'numpy', 'scipy' or 'numba',"
                f" got {self.kernel_tier!r}"
            )
        for spec in self.observers:
            if not isinstance(spec, str):
                continue  # Observer / ConvergenceProbe instances
            if spec in ("metrics", "convergence"):
                continue
            # literal duplicate of obs.exporters formats: config must
            # stay importable without pulling in repro.obs
            fmt, sep, path = spec.partition(":")
            if not sep or not path or fmt.strip().lower() not in (
                "jsonl", "perfetto", "prom", "prometheus"
            ):
                raise ConfigurationError(
                    f"invalid observer spec {spec!r}; expected"
                    " 'metrics', 'convergence', or FORMAT:PATH with"
                    " FORMAT in ('jsonl', 'perfetto', 'prom')"
                )
        self.observers = tuple(self.observers)
        if self.worker_speeds is not None:
            if len(self.worker_speeds) != self.nprocs:
                raise ConfigurationError(
                    "worker_speeds must have one entry per processor"
                )
            if any(sp <= 0 for sp in self.worker_speeds):
                raise ConfigurationError("worker speeds must be positive")
        if self.partitioner is None:
            self.partitioner = MultilevelPartitioner(seed=self.seed)
        if self.cutedge_partitioner is None:
            self.cutedge_partitioner = MultilevelPartitioner(seed=self.seed + 1)
        if self.schedule is None:
            self.schedule = SequentialAllToAll()

    def _fold_resilience(self) -> None:
        """Fold the deprecated flat kwargs into the ``resilience`` group.

        Legacy ``recovery`` / ``checkpoint_interval`` values warn and
        seed the group; values that merely *match* an explicit group
        pass silently so ``dataclasses.replace`` round-trips (the
        mirror writes both forms back onto the instance).  Conflicting
        values are a configuration error, never a silent pick.
        """
        given = {
            name: value
            for name, value in (
                ("recovery", self.recovery),
                ("checkpoint_interval", self.checkpoint_interval),
            )
            if value is not None
        }
        res = self.resilience
        if res is None:
            if given:
                warnings.warn(
                    f"AnytimeConfig({', '.join(sorted(given))}=...) is"
                    " deprecated; pass"
                    " resilience=ResilienceConfig(...) instead"
                    " (the flat kwargs will be removed next release)",
                    DeprecationWarning,
                    stacklevel=4,
                )
            self.resilience = res = ResilienceConfig(
                recovery=given.get("recovery", "warm"),  # type: ignore[arg-type]
                checkpoint_interval=given.get(  # type: ignore[arg-type]
                    "checkpoint_interval", 8
                ),
            )
        else:
            conflicts = sorted(
                name
                for name, value in given.items()
                if value != getattr(res, name)
            )
            if conflicts:
                raise ConfigurationError(
                    "conflicting resilience settings: deprecated"
                    f" {conflicts} disagree with resilience=..."
                )
        # mirror the resolved group onto the flat fields so readers of
        # the deprecated attributes keep seeing concrete values
        self.recovery = res.recovery
        self.checkpoint_interval = res.checkpoint_interval
