"""Public facade: the anytime-anywhere closeness centrality engine.

Typical use::

    from repro import AnytimeAnywhereCloseness, AnytimeConfig
    from repro.graph import barabasi_albert

    g = barabasi_albert(1000, 3, seed=7)
    engine = AnytimeAnywhereCloseness(g, AnytimeConfig(nprocs=8))
    engine.setup()                       # DD + IA
    result = engine.run()                # RC to convergence
    result.closeness[42]                 # exact closeness of vertex 42

Dynamic analysis schedules change batches at RC steps::

    result = engine.run(changes=stream, strategy="cutedge")

Strategy names: ``"roundrobin"``, ``"cutedge"``, ``"leastloaded"``,
``"neighbormajority"`` (anywhere vertex addition with the corresponding
placement), ``"repartition"`` (Repartition-S), ``"adaptive"``
(threshold-switched), or any :class:`DynamicStrategy` instance.
``run_baseline_restart`` provides the paper's restart-from-scratch
comparison point.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from ..errors import ConfigurationError, WorkerError
from ..graph.changes import ChangeBatch, ChangeStream
from ..graph.graph import Graph
from ..obs import build_hub
from ..obs.observer import ObserverHub
from ..obs.registry import MetricsRegistry, SignalView
from ..runtime.cluster import Cluster
from ..runtime.metrics import LoadSnapshot, snapshot_load
from ..types import FloatArray, VertexId
from .config import AnytimeConfig, ResilienceConfig
from .recombination import run_recombination
from .snapshots import AnytimeSnapshot, take_snapshot
from .strategies import DynamicStrategy, make_strategy

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.chaos import FaultPlan
    from ..runtime.health import HealthMonitor

logger = logging.getLogger("repro.engine")

__all__ = ["AnytimeAnywhereCloseness", "RunResult", "closeness"]


@dataclass
class RunResult:
    """Outcome of a (possibly dynamic) closeness computation."""

    closeness: Dict[VertexId, float]
    rc_steps: int
    modeled_seconds: float
    wall_seconds: float
    snapshots: List[AnytimeSnapshot] = field(default_factory=list)
    load: Optional[LoadSnapshot] = None
    restarts: int = 0
    #: False when the run was interrupted by an anytime budget before
    #: reaching a fixed point (results are still valid upper bounds)
    converged: bool = True
    # --- fault/recovery accounting (fault-injected runs only) ---------
    #: injected fault events: crashes + lost/duplicated messages +
    #: transient send failures + lost acks
    faults_injected: int = 0
    #: packet retransmissions forced by losses/failures/lost acks
    retries: int = 0
    #: crashes answered by the supervisor's recovery policy
    recoveries: int = 0
    #: modeled seconds spent inside recovery (the MTTR analogue)
    recovery_modeled_seconds: float = 0.0
    #: canonical fault event trace (byte-identical for identical plans)
    fault_events: List[str] = field(default_factory=list)
    # --- self-healing accounting (health-instrumented runs only) ------
    #: True when recovery budgets ran out and the run returned a partial
    #: result instead of raising (graceful anytime degradation)
    degraded: bool = False
    #: why the run degraded: ``"crash-budget"`` | ``"dead-fraction"`` |
    #: ``"retry-budget"`` (empty when not degraded)
    degraded_reason: str = ""
    #: quantified quality of a degraded partial result (finite-entry
    #: fraction, alive fraction, undelivered-row gauges); empty unless
    #: ``degraded``
    quality: Dict[str, float] = field(default_factory=dict)
    #: superstep deadlines missed by straggling ranks
    missed_deadlines: int = 0
    #: speculative kernel re-executions that beat the straggler
    speculations: int = 0
    #: modeled seconds of exponential retry backoff charged to the clock
    backoff_modeled_seconds: float = 0.0
    #: recoveries per escalation-ladder rung / recovery-policy label
    recoveries_by_rung: Dict[str, int] = field(default_factory=dict)
    #: mean modeled time-to-recovery per ladder rung (MTTR breakdown)
    mttr_by_rung: Dict[str, float] = field(default_factory=dict)
    # --- wire accounting ----------------------------------------------
    #: total words charged to the modeled wire across the whole run
    wire_words: int = 0
    #: words spent on boundary-DV exchange payloads specifically
    boundary_words: int = 0
    #: boundary rows shipped dense (full row)
    boundary_rows_dense: int = 0
    #: boundary rows shipped as sparse deltas
    boundary_rows_sparse: int = 0
    #: wire format the cluster ran with (``"dense"`` | ``"delta"``)
    wire_format: str = "delta"
    # --- convergence telemetry (probe-instrumented runs only) ---------
    #: last sample of each attached convergence probe, keyed by probe
    #: name — the quantified quality statement for anytime interruptions
    convergence: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # --- cost attribution ---------------------------------------------
    #: folded cost-attribution profile (:class:`repro.obs.profile.Profile`
    #: as a dict): modeled time per phase/rank/kernel-tier, hot paths,
    #: coverage — populated on every run, observers on or off
    profile: Dict[str, Any] = field(default_factory=dict)

    @property
    def modeled_minutes(self) -> float:
        """The paper reports minutes; convenience accessor."""
        return self.modeled_seconds / 60.0

    def summary(self) -> Dict[str, object]:
        """Flat, JSON-ready digest of the run.

        One canonical place for reporting — the CLI and the benchmark
        tables both consume this instead of assembling ad-hoc dicts.
        """
        values = list(self.closeness.values())
        return {
            "num_vertices": len(values),
            "closeness_min": min(values) if values else 0.0,
            "closeness_max": max(values) if values else 0.0,
            "closeness_mean": (sum(values) / len(values)) if values else 0.0,
            "rc_steps": self.rc_steps,
            "modeled_seconds": self.modeled_seconds,
            "wall_seconds": self.wall_seconds,
            "converged": self.converged,
            "restarts": self.restarts,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "recovery_modeled_seconds": self.recovery_modeled_seconds,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "missed_deadlines": self.missed_deadlines,
            "speculations": self.speculations,
            "backoff_modeled_seconds": self.backoff_modeled_seconds,
            "wire_format": self.wire_format,
            "wire_words": self.wire_words,
            "boundary_words": self.boundary_words,
            "boundary_rows_dense": self.boundary_rows_dense,
            "boundary_rows_sparse": self.boundary_rows_sparse,
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """:meth:`summary` serialized as deterministic JSON."""
        return json.dumps(self.summary(), indent=indent, sort_keys=True)


class AnytimeAnywhereCloseness:
    """Anytime-anywhere distributed closeness centrality (the paper)."""

    def __init__(
        self, graph: Graph, config: Optional[AnytimeConfig] = None
    ) -> None:
        self.graph = graph.copy()
        self.config = config or AnytimeConfig()
        #: observability hub built from ``config.observers`` (the shared
        #: disabled NULL_HUB when no observers are configured)
        self.obs: ObserverHub = build_hub(tuple(self.config.observers))
        self.cluster: Optional[Cluster] = None
        self.snapshots: List[AnytimeSnapshot] = []
        #: per-RC-step load snapshots (populated when collecting snapshots)
        self.load_history: List[LoadSnapshot] = []
        self._next_step = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """DD + IA: partition the graph and compute local approximations."""
        cfg = self.config
        if self.cluster is not None:
            # re-setup (baseline restarts): release the old backend
            self.cluster.close()
        self.cluster = Cluster(
            self.graph,
            cfg.nprocs,
            cost=cfg.cost,
            logp=cfg.logp,
            schedule=cfg.schedule,
            worker_speeds=cfg.worker_speeds,
            wire_format=cfg.wire_format,
            backend=cfg.backend,
            kernel_tier=cfg.kernel_tier,
            obs=self.obs,
        )
        self.cluster.decompose(cfg.partitioner)
        self.cluster.run_initial_approximation()
        logger.debug(
            "setup complete: n=%d, P=%d, modeled=%.4fs",
            self.graph.num_vertices, cfg.nprocs,
            self.cluster.tracer.modeled_seconds,
        )
        self.snapshots = []
        self.load_history = [snapshot_load(self.cluster)]
        self._next_step = 0
        if cfg.collect_snapshots:
            self.snapshots.append(
                take_snapshot(self.cluster, -1, wf_improved=cfg.wf_improved)
            )

    def _require_cluster(self) -> Cluster:
        if self.cluster is None:
            raise ConfigurationError("call setup() before running")
        return self.cluster

    # ------------------------------------------------------------------
    # strategy resolution
    # ------------------------------------------------------------------
    def resolve_strategy(
        self, strategy: Union[str, DynamicStrategy, None]
    ) -> Optional[DynamicStrategy]:
        if strategy is None or isinstance(strategy, DynamicStrategy):
            return strategy
        return make_strategy(strategy, self.config)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def _resolve_resilience(
        self,
        resilience: Optional[ResilienceConfig],
        fault_plan: Optional["FaultPlan"],
        recovery: Optional[str],
        checkpoint_interval: Optional[int],
    ) -> ResilienceConfig:
        """Merge the run-level resilience override with the legacy kwargs.

        The flat ``fault_plan`` / ``recovery`` / ``checkpoint_interval``
        kwargs are deprecated shims: they warn, then override the
        corresponding group fields for this call only.
        """
        legacy = {
            name: value
            for name, value in (
                ("fault_plan", fault_plan),
                ("recovery", recovery),
                ("checkpoint_interval", checkpoint_interval),
            )
            if value is not None
        }
        if legacy:
            warnings.warn(
                f"run({', '.join(sorted(legacy))}=...) is deprecated; pass"
                " resilience=ResilienceConfig(...) instead (the flat"
                " kwargs will be removed next release)",
                DeprecationWarning,
                stacklevel=3,
            )
        base = resilience if resilience is not None else self.config.resilience
        assert base is not None  # config always populates the group
        effective = dataclasses.replace(base, **legacy) if legacy else base
        if effective.fault_plan is None and (
            recovery is not None
            or checkpoint_interval is not None
        ):
            raise ConfigurationError(
                "recovery/checkpoint_interval only apply with a fault_plan"
            )
        return effective

    def run(
        self,
        *,
        changes: Optional[ChangeStream] = None,
        strategy: Union[str, DynamicStrategy, None] = "roundrobin",
        budget_modeled_seconds: Optional[float] = None,
        step_budget: Optional[int] = None,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional["FaultPlan"] = None,
        recovery: Optional[str] = None,
        checkpoint_interval: Optional[int] = None,
    ) -> RunResult:
        """Run the RC phase to convergence, absorbing ``changes``.

        May be called repeatedly: later calls resume at the next RC step
        (``changes`` steps are absolute across calls).

        ``strategy`` is a registered name, a
        :class:`DynamicStrategy` instance, or ``"auto"`` — the
        policy-driven adapter that picks a registered strategy per batch
        from live run signals (``config.strategy_policy`` names the
        policy).

        ``budget_modeled_seconds`` exercises the *anytime* property: the
        loop stops once the modeled clock advances by the budget, and the
        result carries ``converged=False`` with valid upper-bound
        estimates; call :meth:`run` again to continue refining.
        ``step_budget`` is the discrete analogue — run at most that many
        RC steps (the serve loop paces the engine with it).

        ``resilience`` overrides the config's
        :class:`~repro.core.config.ResilienceConfig` group for this call
        — its ``fault_plan`` runs the step under deterministic fault
        injection (see :class:`~repro.runtime.chaos.FaultPlan`): the
        boundary exchange switches to the sequenced ack/retry protocol
        and the supervisor answers scheduled crashes with the group's
        ``recovery`` policy (``"warm"`` | ``"checkpoint"`` |
        ``"redistribute"`` | ``"escalate"``) and
        ``checkpoint_interval``.  The result carries the fault/recovery
        accounting and the canonical event trace.  The flat
        ``fault_plan`` / ``recovery`` / ``checkpoint_interval`` kwargs
        are deprecated shims for the group (one-release migration).

        With ``config.health`` set (or ``recovery="escalate"``, which
        builds a default policy), the self-healing runtime engages:
        superstep deadlines feed the per-rank health state machine,
        straggling kernels are speculatively re-executed (bitwise-
        identical results, shorter modeled barrier), retransmissions pay
        seeded exponential backoff on the modeled clock, and exhausted
        budgets degrade the run gracefully — a partial
        ``RunResult(degraded=True)`` with a quantified quality statement
        instead of an exception.
        """
        cluster = self._require_cluster()
        cfg = self.config
        res = self._resolve_resilience(
            resilience, fault_plan, recovery, checkpoint_interval
        )
        plan = res.fault_plan
        dyn = self.resolve_strategy(strategy) if changes else None
        injector = None
        supervisor = None
        monitor = None
        if plan is not None:
            from ..runtime.chaos import FaultInjector
            from ..runtime.supervisor import Supervisor

            injector = FaultInjector(plan, cfg.nprocs)
            if cfg.health is not None:
                from ..runtime.health import HealthMonitor

                monitor = HealthMonitor(
                    cfg.health, cfg.nprocs, seed=plan.seed
                )
            supervisor = Supervisor(
                cluster,
                injector,
                recovery=res.recovery,
                checkpoint_interval=res.checkpoint_interval,
                monitor=monitor,
            )
            # the supervisor self-creates a monitor for "escalate" runs
            # without an explicit HealthPolicy
            monitor = supervisor.monitor
            cluster.attach_chaos(injector)
            if monitor is not None:
                cluster.attach_health(monitor)

        completed_steps = 0

        def observer(step: int) -> None:
            nonlocal completed_steps
            completed_steps += 1
            if cfg.collect_snapshots:
                self.snapshots.append(
                    take_snapshot(cluster, step, wf_improved=cfg.wf_improved)
                )
                self.load_history.append(snapshot_load(cluster))

        obs_on = self.obs.enabled
        degraded_reason = ""
        if obs_on:
            self.obs.span_begin(
                "run", "run", cluster.tracer.modeled_seconds
            )
        try:
            steps = run_recombination(
                cluster,
                strategy=dyn,
                changes=changes,
                max_steps=cfg.max_rc_steps,
                on_step=observer,
                start_step=self._next_step,
                budget_modeled_seconds=budget_modeled_seconds,
                step_budget=step_budget,
                supervisor=supervisor,
            )
        except WorkerError:
            # exhausted per-packet retry budget (a partitioned network)
            if monitor is None or not monitor.policy.graceful_degradation:
                if obs_on:
                    self.obs.span_end(
                        "run",
                        "run",
                        cluster.tracer.modeled_seconds,
                        attrs={"aborted": True},
                    )
                raise
            steps = completed_steps
            degraded_reason = "retry-budget"
            assert injector is not None
            injector.record_degraded(
                self._next_step + steps, "retry-budget"
            )
        except BaseException:
            if obs_on:
                # balance the run span so exported traces stay valid
                self.obs.span_end(
                    "run",
                    "run",
                    cluster.tracer.modeled_seconds,
                    attrs={"aborted": True},
                )
            raise
        finally:
            if injector is not None:
                cluster.detach_chaos()
            if monitor is not None:
                cluster.detach_health()
        if not degraded_reason and supervisor is not None:
            degraded_reason = supervisor.degraded_reason
        degraded = bool(degraded_reason)
        self._next_step += steps
        pending_changes = bool(changes) and changes.last_step >= self._next_step
        converged = (
            not degraded
            and cluster.converged_vote()
            and not pending_changes
        )
        if obs_on:
            self.obs.span_end(
                "run",
                "run",
                cluster.tracer.modeled_seconds,
                attrs={
                    "rc_steps": steps,
                    "converged": converged,
                    "wire_words": cluster.tracer.total_words,
                },
                wall=cluster.tracer.wall_seconds,
            )
        logger.debug(
            "run finished: steps=%d, modeled=%.4fs, pending_changes=%s"
            " degraded=%s",
            steps, cluster.tracer.modeled_seconds, pending_changes,
            degraded_reason or False,
        )
        return RunResult(
            closeness=self.current_closeness(),
            rc_steps=steps,
            modeled_seconds=cluster.tracer.modeled_seconds,
            wall_seconds=cluster.tracer.wall_seconds,
            snapshots=list(self.snapshots),
            load=snapshot_load(cluster),
            converged=converged,
            faults_injected=(
                injector.stats.faults_injected if injector else 0
            ),
            retries=injector.stats.retries if injector else 0,
            recoveries=supervisor.recoveries if supervisor else 0,
            recovery_modeled_seconds=(
                supervisor.recovery_modeled_seconds if supervisor else 0.0
            ),
            degraded=degraded,
            degraded_reason=degraded_reason,
            quality=(
                self._partial_quality(monitor) if degraded else {}
            ),
            missed_deadlines=monitor.missed_deadlines if monitor else 0,
            speculations=monitor.speculations if monitor else 0,
            backoff_modeled_seconds=(
                monitor.backoff_seconds if monitor else 0.0
            ),
            recoveries_by_rung=(
                dict(supervisor.recoveries_by_rung) if supervisor else {}
            ),
            mttr_by_rung=(
                dict(supervisor.mttr_by_rung) if supervisor else {}
            ),
            fault_events=injector.trace_lines() if injector else [],
            wire_words=cluster.tracer.total_words,
            boundary_words=cluster.boundary_words,
            boundary_rows_dense=cluster.boundary_rows_dense,
            boundary_rows_sparse=cluster.boundary_rows_sparse,
            wire_format=cluster.wire_format,
            convergence={
                name: dict(sample)
                for name, sample in self.obs.last_samples.items()
            },
            profile=self._fold_profile(cluster),
        )

    def run_baseline_restart(
        self, changes: Optional[ChangeStream] = None
    ) -> RunResult:
        """The paper's Baseline Restart: recompute from scratch per batch.

        The analysis proceeds step by step; whenever a batch is scheduled,
        the entire computation restarts on the updated graph (no partial
        results are reused).  Modeled time accumulates across the wasted
        work, which is exactly the cost the anytime property avoids.
        """
        cfg = self.config
        total_modeled = 0.0
        total_wall = 0.0
        total_wire = 0
        restarts = 0
        schedule: List[Tuple[int, ChangeBatch]] = list(changes) if changes else []
        self.setup()
        cluster = self._require_cluster()
        # the original analysis progresses until the first change arrives
        if schedule:
            first_step, _ = schedule[0]
            for s in range(first_step):
                if not cluster.any_pending():
                    break
                cluster.tracer.begin("rc_step", s)
                cluster.exchange_boundary()
                cluster.relax_and_propagate()
                cluster.tracer.end()
        steps = 0
        for i, (_sched_step, batch) in enumerate(schedule):
            # restart: all partial results are thrown away, and — unlike the
            # anywhere strategies — the recomputation must run to completion
            # to yield up-to-date results for this change (the paper's
            # baseline "restarts the computation from scratch for every
            # change"); with frequent updates these full reruns pile up
            total_modeled += cluster.tracer.modeled_seconds
            total_wall += cluster.tracer.wall_seconds
            total_wire += cluster.tracer.total_words
            restarts += 1
            batch.apply_to(self.graph)
            self.setup()
            cluster = self._require_cluster()
            steps = run_recombination(
                cluster, max_steps=cfg.max_rc_steps, start_step=0
            )
        if not schedule:
            steps = run_recombination(
                cluster, max_steps=cfg.max_rc_steps, start_step=0
            )
        self._next_step = steps
        return RunResult(
            closeness=self.current_closeness(),
            rc_steps=steps,
            modeled_seconds=total_modeled + cluster.tracer.modeled_seconds,
            wall_seconds=total_wall + cluster.tracer.wall_seconds,
            snapshots=list(self.snapshots),
            load=snapshot_load(cluster),
            restarts=restarts,
            wire_words=total_wire + cluster.tracer.total_words,
            boundary_words=cluster.boundary_words,
            boundary_rows_dense=cluster.boundary_rows_dense,
            boundary_rows_sparse=cluster.boundary_rows_sparse,
            wire_format=cluster.wire_format,
            profile=self._fold_profile(cluster),
        )

    @staticmethod
    def _fold_profile(cluster: Cluster) -> Dict[str, Any]:
        """Fold the cluster's cost-attribution accumulators (pure read)."""
        from ..obs.profile import fold_cluster

        return fold_cluster(cluster).to_dict()

    # ------------------------------------------------------------------
    # fault tolerance (paper §VI future work)
    # ------------------------------------------------------------------
    def crash_worker(self, rank: int) -> None:
        """Simulate a worker crash with immediate warm recovery.

        The worker loses all derived state (DVs, local APSP, received
        rows); the graph is durable input.  Recovery re-ships the
        sub-graph, reruns the local IA, and re-wires boundary-DV
        subscriptions; a subsequent :meth:`run` re-converges to the exact
        answer.  All recovery costs land on the modeled clock.
        """
        from ..runtime.faults import crash_and_recover

        crash_and_recover(self._require_cluster(), rank)

    # ------------------------------------------------------------------
    # degraded-result quality
    # ------------------------------------------------------------------
    def _partial_quality(
        self, monitor: Optional["HealthMonitor"]
    ) -> Dict[str, float]:
        """Quantify how good a degraded partial result is.

        ``finite_fraction`` — share of DV entries that hold a finite
        (possibly still loose) upper bound; ``alive_fraction`` — share of
        ranks not retired; ``pending_rows`` / ``unacked_rows`` — updates
        that never reached their consumers.  All values are deterministic
        functions of the cluster state, so degraded results pin
        byte-for-byte like converged ones.
        """
        cluster = self._require_cluster()
        total = 0
        finite = 0
        for w in cluster.workers:
            if w.n_local:
                total += w.dv.size
                finite += int(np.isfinite(w.dv).sum())
        return {
            "finite_fraction": (finite / total) if total else 0.0,
            "alive_fraction": (
                monitor.alive_fraction() if monitor is not None else 1.0
            ),
            "pending_rows": float(
                sum(w.pending_row_count() for w in cluster.workers)
            ),
            "unacked_rows": float(
                sum(w.unacked_row_count() for w in cluster.workers)
            ),
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def current_closeness(self) -> Dict[VertexId, float]:
        """Closeness estimates from the current DVs (anytime read)."""
        cluster = self._require_cluster()
        snap = take_snapshot(cluster, -1, wf_improved=self.config.wf_improved)
        return snap.closeness

    def current_measure(self, measure: str = "closeness") -> Dict[VertexId, float]:
        """Any row-derived SNA measure from the current DVs (anytime read).

        ``measure`` is one of ``"closeness"``, ``"harmonic"``,
        ``"eccentricity"``, ``"degree"``.  All but degree are computed from
        the same distance vectors the pipeline refines, so interrupted
        reads are valid anytime estimates.
        """
        from ..centrality.closeness import closeness_from_row
        from ..centrality.measures import (
            degree_centrality,
            eccentricity_from_row,
            harmonic_from_row,
        )

        cluster = self._require_cluster()
        if measure == "degree":
            return degree_centrality(cluster.graph)
        row_fns: Dict[str, Callable[[FloatArray, int], float]] = {
            "closeness": lambda row, c: closeness_from_row(
                row, self_col=c, wf_improved=self.config.wf_improved
            ),
            "harmonic": lambda row, c: harmonic_from_row(row, self_col=c),
            "eccentricity": lambda row, c: eccentricity_from_row(
                row, self_col=c
            ),
        }
        fn = row_fns.get(measure)
        if fn is None:
            raise ConfigurationError(
                f"unknown measure {measure!r}; choose from"
                f" {sorted(row_fns) + ['degree']}"
            )
        out: Dict[VertexId, float] = {}
        for w in cluster.workers:
            for v in w.owned:
                out[v] = fn(w.dv[w.row_of[v]], cluster.index.column(v))
        return out

    def signals(self) -> SignalView:
        """Read-only view of the live run signals (anytime read).

        Collects the well-known series into a private registry — the
        same collection the obs layer exports — so the view works with
        or without observers attached and reading it can never perturb
        the run.  Convergence-probe samples are included when probes are
        attached via ``config.observers``.
        """
        cluster = self._require_cluster()
        reg = MetricsRegistry()
        cluster.collect_signals(reg)
        return SignalView(
            reg,
            {
                name: dict(sample)
                for name, sample in self.obs.last_samples.items()
            },
        )

    def distances(self) -> Tuple[FloatArray, List[VertexId]]:
        """The assembled distance matrix (modeled as a gather to rank 0)."""
        return self._require_cluster().gather_distance_matrix()

    @property
    def modeled_seconds(self) -> float:
        return self._require_cluster().tracer.modeled_seconds

    @property
    def next_step(self) -> int:
        """The absolute RC step the next :meth:`run` call starts at.

        Change streams use absolute steps; the serve loop schedules each
        admitted batch here so it lands on the very next step.
        """
        return self._next_step

    # ------------------------------------------------------------------
    # lifecycle teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the cluster's backend resources and flush exporters.

        Idempotent; also runs via the context-manager protocol, so
        ``with AnytimeAnywhereCloseness(g, cfg) as engine: ...``
        releases process-backend shm segments and finalizes trace files
        even when a run raises mid-phase.
        """
        if self.cluster is not None:
            # final counter refresh so the metric flush includes charges
            # made after the last superstep (vote words, recovery)
            self.cluster.refresh_metrics()
            self.obs.close(self.cluster.tracer.modeled_seconds)
            self.cluster.close()
        else:
            self.obs.close()

    def __enter__(self) -> "AnytimeAnywhereCloseness":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def closeness(
    graph: Graph,
    *,
    nprocs: int = 16,
    changes: Optional[ChangeStream] = None,
    strategy: Union[str, DynamicStrategy, None] = "roundrobin",
    config: Optional[AnytimeConfig] = None,
    budget_modeled_seconds: Optional[float] = None,
    resilience: Optional[ResilienceConfig] = None,
    fault_plan: Optional["FaultPlan"] = None,
    recovery: Optional[str] = None,
    checkpoint_interval: Optional[int] = None,
) -> RunResult:
    """One-shot closeness: a :func:`repro.session` opened for one run.

    The session API is the primary entry point — a
    :class:`~repro.serve.session.Session` bundles the engine lifecycle
    (setup, incremental runs, anytime reads, teardown).  ``closeness``
    is the one-shot convenience built directly on it: open a session,
    run to convergence, close::

        import repro
        result = repro.closeness(g, nprocs=8)
        result.closeness[42]

    is exactly::

        with repro.session(g, repro.AnytimeConfig(nprocs=8)) as s:
            result = s.run()

    Dynamic analysis works the same way as :meth:`.run` (``"auto"``
    selects the strategy per batch from live signals)::

        result = repro.closeness(g, nprocs=8, changes=stream,
                                 strategy="auto")

    Pass ``config`` for full control (it supplies ``nprocs``; passing
    both with conflicting values is an error).  Keep a session open
    instead when you need incremental feeds, anytime reads, or live
    signals.  The flat ``fault_plan`` / ``recovery`` /
    ``checkpoint_interval`` kwargs are deprecated shims for
    ``resilience`` (one-release migration).
    """
    from ..serve.session import session

    if config is None:
        config = AnytimeConfig(nprocs=nprocs)
    elif nprocs != 16 and nprocs != config.nprocs:
        raise ConfigurationError(
            f"conflicting nprocs: argument {nprocs} vs config"
            f" {config.nprocs}"
        )
    # fold the legacy flat kwargs here so the DeprecationWarning points
    # at the caller of closeness(), not at the session facade
    legacy = {
        name: value
        for name, value in (
            ("fault_plan", fault_plan),
            ("recovery", recovery),
            ("checkpoint_interval", checkpoint_interval),
        )
        if value is not None
    }
    if legacy:
        warnings.warn(
            f"closeness({', '.join(sorted(legacy))}=...) is deprecated;"
            " pass resilience=ResilienceConfig(...) instead (the flat"
            " kwargs will be removed next release)",
            DeprecationWarning,
            stacklevel=2,
        )
        base = resilience if resilience is not None else config.resilience
        assert base is not None
        resilience = dataclasses.replace(base, **legacy)
        if resilience.fault_plan is None:
            raise ConfigurationError(
                "recovery/checkpoint_interval only apply with a fault_plan"
            )
    # session context: backend resources (process-pool shm segments) are
    # released and exporters flushed even when the run raises mid-phase
    with session(graph, config) as s:
        return s.run(
            changes=changes,
            strategy=strategy,
            budget_modeled_seconds=budget_modeled_seconds,
            resilience=resilience,
        )
