"""Processor assignment strategies for new vertices (§IV.C.1.a).

* :class:`RoundRobinPS` — deal new vertices to processors cyclically;
  O(k), edge-oblivious.  The rotation offset persists across batches so
  repeated small batches stay globally balanced.
* :class:`CutEdgePS` — treat the batch's new vertices + the edges *among
  them* as an independent graph, partition it with a cut-minimizing serial
  partitioner (the paper uses METIS), then map parts to processors so that
  attachment edges back to the existing graph are co-located where
  possible.
* :class:`LeastLoadedPS` — extension: always place on the currently
  lightest processor (greedy vertex balance, edge-oblivious).
* :class:`NeighborMajorityPS` — extension: place each new vertex with the
  processor owning most of its already-placed neighbors (a streaming
  label-propagation placement in the spirit of Vaquero et al.).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ...graph.changes import ChangeBatch
from ...partition.base import Partitioner
from ...partition.multilevel import MultilevelPartitioner
from ...types import Rank, VertexId
from .base import ProcessorAssignmentStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ...runtime.cluster import Cluster

__all__ = [
    "RoundRobinPS",
    "CutEdgePS",
    "LeastLoadedPS",
    "LDGPS",
    "NeighborMajorityPS",
]


class RoundRobinPS(ProcessorAssignmentStrategy):
    """Cyclic placement — the paper's RoundRobin-PS."""

    name = "roundrobin"

    def __init__(self) -> None:
        self._next = 0

    def assign(self, batch: ChangeBatch, cluster: "Cluster") -> Dict[VertexId, Rank]:
        out: Dict[VertexId, Rank] = {}
        for v in sorted(batch.new_vertex_ids()):
            out[v] = self._next
            self._next = (self._next + 1) % cluster.nprocs
        # O(k) placement cost on the coordinating processor
        cluster.charge_serial_compute(cluster.cost.vertex_time(len(out)))
        return out


class CutEdgePS(ProcessorAssignmentStrategy):
    """Cut-edge-optimizing placement — the paper's CutEdge-PS.

    The new vertices and intra-batch edges form an independent graph that
    a serial cut-minimizing partitioner splits into ``nprocs`` parts
    (existing vertices are never migrated, per the paper).  Parts are then
    mapped to ranks greedily so parts with many attachment edges to a
    rank's existing vertices land on that rank.
    """

    name = "cutedge"

    def __init__(self, partitioner: Optional[Partitioner] = None) -> None:
        self.partitioner = partitioner or MultilevelPartitioner(seed=1)

    def assign(self, batch: ChangeBatch, cluster: "Cluster") -> Dict[VertexId, Rank]:
        new_graph = batch.new_vertex_graph()
        k = new_graph.num_vertices
        if k == 0:
            return {}
        part = self.partitioner.partition(new_graph, cluster.nprocs)
        # serial METIS runs on every processor concurrently in the paper;
        # the modeled cost is therefore one serial partitioning
        cluster.charge_serial_compute(
            cluster.cost.partition_time(
                k, 2 * new_graph.num_edges, cluster.nprocs
            )
        )
        blocks = part.blocks()
        # affinity[p][r]: attachment edges from part p to vertices on rank r
        owner = cluster.partition.assignment if cluster.partition else {}
        part_of = part.assignment
        affinity = np.zeros((cluster.nprocs, cluster.nprocs), dtype=np.int64)
        n_attach = 0
        for va in batch.vertex_additions:
            p = part_of[va.vertex]
            for t, _w in va.edges:
                r = owner.get(t)
                if r is not None:
                    affinity[p, r] += 1
                    n_attach += 1
        cluster.charge_serial_compute(cluster.cost.scan_time(n_attach))
        # greedy one-to-one mapping: biggest parts pick their best rank first
        order = sorted(range(cluster.nprocs), key=lambda p: -len(blocks[p]))
        taken: set[Rank] = set()
        rank_of_part: Dict[int, Rank] = {}
        for p in order:
            free = [r for r in range(cluster.nprocs) if r not in taken]
            best = max(free, key=lambda r: (affinity[p, r], -r))
            rank_of_part[p] = best
            taken.add(best)
        return {
            v: rank_of_part[p]
            for p, block in enumerate(blocks)
            for v in block
        }


class LeastLoadedPS(ProcessorAssignmentStrategy):
    """Place each new vertex on the least-loaded processor.

    Load is normalized by processor speed, so on heterogeneous clusters a
    2x-speed worker is considered half as loaded at equal vertex counts.
    """

    name = "leastloaded"

    def assign(self, batch: ChangeBatch, cluster: "Cluster") -> Dict[VertexId, Rank]:
        speeds = [w.speed for w in cluster.workers]
        loads = [w.n_local / sp for w, sp in zip(cluster.workers, speeds)]
        out: Dict[VertexId, Rank] = {}
        for v in sorted(batch.new_vertex_ids()):
            r = int(np.argmin(loads))
            out[v] = r
            loads[r] += 1.0 / speeds[r]
        cluster.charge_serial_compute(
            cluster.cost.vertex_time(len(out) * cluster.nprocs)
        )
        return out


class LDGPS(ProcessorAssignmentStrategy):
    """Streaming LDG placement (Stanton–Kliot) as an assignment strategy.

    Each new vertex goes to the processor holding the most of its
    already-placed neighbors (existing *or* earlier-in-batch), damped by a
    capacity penalty — a middle ground between RoundRobin-PS (balance
    only) and CutEdge-PS (batch structure only): it sees both the batch
    edges and the attachments to the existing placement.
    """

    name = "ldg"

    def __init__(self, capacity_slack: float = 0.1) -> None:
        self.capacity_slack = capacity_slack

    def assign(self, batch: ChangeBatch, cluster: "Cluster") -> Dict[VertexId, Rank]:
        from ...partition.streaming import ldg_stream_assign

        new_ids = sorted(batch.new_vertex_ids())
        if not new_ids:
            return {}
        # a scratch graph holding existing + new topology for the stream
        scratch = cluster.graph.copy()
        batch_copy = ChangeBatch(
            vertex_additions=list(batch.vertex_additions)
        )
        batch_copy.apply_to(scratch)
        existing = dict(cluster.partition.assignment) if cluster.partition else {}
        ops = sum(scratch.degree(v) for v in new_ids) + len(new_ids)
        cluster.charge_serial_compute(cluster.cost.scan_time(ops))
        full = ldg_stream_assign(
            scratch,
            cluster.nprocs,
            order=new_ids,
            capacity_slack=self.capacity_slack,
            initial_assignment=existing,
        )
        return {v: full[v] for v in new_ids}


class NeighborMajorityPS(ProcessorAssignmentStrategy):
    """Place each new vertex with the majority of its placed neighbors.

    Ties (and neighbor-less vertices) fall back to the lightest processor.
    Processes vertices in decreasing attachment-degree order so well-
    anchored vertices vote first.
    """

    name = "neighbormajority"

    def assign(self, batch: ChangeBatch, cluster: "Cluster") -> Dict[VertexId, Rank]:
        owner: Dict[VertexId, Rank] = dict(
            cluster.partition.assignment if cluster.partition else {}
        )
        loads = [w.n_local for w in cluster.workers]
        # adjacency among batch + attachments
        adj: Dict[VertexId, List[VertexId]] = {
            va.vertex: [] for va in batch.vertex_additions
        }
        ops = 0
        for va in batch.vertex_additions:
            for t, _w in va.edges:
                adj[va.vertex].append(t)
                if t in adj:
                    adj[t].append(va.vertex)
                ops += 1
        out: Dict[VertexId, Rank] = {}
        order = sorted(adj, key=lambda v: (-len(adj[v]), v))
        for v in order:
            votes = np.zeros(cluster.nprocs, dtype=np.int64)
            for t in adj[v]:
                r = owner.get(t)
                if r is None:
                    r = out.get(t)
                if r is not None:
                    votes[r] += 1
                ops += 1
            if votes.any():
                best = int(np.argmax(votes))
            else:
                best = int(np.argmin(loads))
            out[v] = best
            loads[best] += 1
        cluster.charge_serial_compute(cluster.cost.scan_time(ops))
        return out
