"""Anywhere edge addition (Santos et al. 2016 [9]) — shared machinery.

Adding edge ``(a, b, w)``:

1. the owners of ``a`` and ``b`` broadcast their current DV rows
   (binomial tree, Fig. 3 line 22),
2. every processor relaxes all of its rows through the new edge:
   ``d(x,t) <- min(d(x,t), d(x,a)+w+d(b,t), d(x,b)+w+d(a,t))``
   (Fig. 3 lines 26-34),
3. the edge joins the owning sub-graph(s): an intra-partition edge repairs
   the owner's local APSP incrementally; a cut edge registers on both
   sides and opens DV-row subscriptions (Fig. 3 lines 35-42).

The vertex-addition strategy reuses this for every edge of a new vertex.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...graph.changes import ChangeBatch
from ...types import VertexId
from .base import DynamicStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ...runtime.cluster import Cluster

__all__ = ["apply_edge_addition", "EdgeAdditionStrategy"]


def apply_edge_addition(
    cluster: "Cluster", a: VertexId, b: VertexId, w: float, *,
    update_graph: bool = True,
) -> None:
    """Incorporate one new edge into the running computation.

    ``update_graph=False`` lets callers that already applied the batch to
    the global graph (repartition, batch appliers) skip the double insert.
    """
    if update_graph:
        if cluster.graph.has_edge(a, b):
            # parallel edges collapse to the lighter one; a heavier
            # duplicate changes nothing (weight *increases* must go through
            # the deletion path, which re-validates affected distances)
            if w >= cluster.graph.weight(a, b):
                return
        cluster.graph.add_edge(a, b, w)
    rank_a = cluster.owner_of(a)
    rank_b = cluster.owner_of(b)
    row_a = cluster.broadcast_row(a)
    row_b = cluster.broadcast_row(b)
    # Fig. 3 line 26 guard: if the current distance d(a, b) is already no
    # worse than the new edge, no path through it can improve anything
    # *now*; the edge still joins the structure below, so any future
    # improvements route through it during normal RC propagation.
    if row_a[cluster.index.column(b)] > w:
        for worker in cluster.workers:
            worker.relax_with_edge_rows(a, row_a, b, row_b, w)
    # structural bookkeeping (Fig. 3 lines 35-42)
    if rank_a == rank_b:
        cluster.workers[rank_a].add_local_edge(a, b, w)
    else:
        wa, wb = cluster.workers[rank_a], cluster.workers[rank_b]
        wa.add_cut_edge(a, b, w)
        wb.add_cut_edge(b, a, w)
        # each side now needs the other's row stream
        wa.subscribe(a, rank_b)
        wb.subscribe(b, rank_a)


class EdgeAdditionStrategy(DynamicStrategy):
    """Dynamic strategy handling batches of edge additions [9]."""

    name = "edge-addition"

    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        if batch.vertex_additions or batch.vertex_deletions:
            raise ValueError(
                "EdgeAdditionStrategy only handles edge additions; use the"
                " vertex-addition strategies for vertex changes"
            )
        if batch.edge_deletions or batch.edge_reweights:
            raise ValueError(
                "EdgeAdditionStrategy cannot handle deletions/reweights"
            )
        for ea in batch.edge_additions:
            apply_edge_addition(cluster, ea.u, ea.v, ea.weight)
        cluster.sync_compute()
