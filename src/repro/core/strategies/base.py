"""Strategy interfaces for the recombination phase.

Two strategy kinds, matching the paper's decomposition:

* :class:`ProcessorAssignmentStrategy` (``A_pr`` in §IV.C.1.a) — decide
  which processor each *new vertex* goes to.
* :class:`DynamicStrategy` (``A_rs``) — incorporate a change batch into the
  running computation (anywhere vertex addition, repartition, ...).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict

from ...graph.changes import ChangeBatch
from ...types import Rank, VertexId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...runtime.cluster import Cluster

__all__ = ["ProcessorAssignmentStrategy", "DynamicStrategy"]


class ProcessorAssignmentStrategy(abc.ABC):
    """Maps a batch's new vertices to processor ranks."""

    name: str = "abstract"

    @abc.abstractmethod
    def assign(
        self, batch: ChangeBatch, cluster: "Cluster"
    ) -> Dict[VertexId, Rank]:
        """Return an owner rank for every new vertex of ``batch``.

        Implementations must meter their own compute into the cluster's
        workers/tracer so modeled time reflects the strategy's overhead.
        """


class DynamicStrategy(abc.ABC):
    """Incorporates one change batch at a recombination step."""

    name: str = "abstract"

    @abc.abstractmethod
    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        """Apply ``batch`` to the running computation at RC step ``step``.

        On return the cluster's graph, partition and workers must be
        mutually consistent, and every DV entry must be a valid upper
        bound on the new graph's distances.
        """
