"""Anywhere vertex addition (paper Fig. 2 and Fig. 3).

The strategy template of Fig. 2:

1. read the dynamic-changes input (the :class:`ChangeBatch`),
2. perform the processor *placement* strategy,
3. perform the vertex *addition* strategy:

   a. every worker's DV grows a column per new vertex; the owning worker
      adds a row (Fig. 3 lines 10-18),
   b. every new edge runs the anywhere edge-addition relaxation with
      tree-broadcast endpoint rows (Fig. 3 lines 19-44).

The partition's assignment map is extended with the new vertices; existing
vertices are never migrated (the paper defers migration to Repartition-S).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import ChangeStreamError
from ...graph.changes import ChangeBatch
from .base import DynamicStrategy, ProcessorAssignmentStrategy
from .edge_addition import apply_edge_addition

if TYPE_CHECKING:  # pragma: no cover
    from ...runtime.cluster import Cluster

__all__ = ["VertexAdditionStrategy"]


class VertexAdditionStrategy(DynamicStrategy):
    """Anywhere vertex addition driven by a placement strategy."""

    def __init__(self, placement: ProcessorAssignmentStrategy) -> None:
        self.placement = placement
        self.name = f"vertex-addition[{placement.name}]"

    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        batch.validate(cluster.graph)
        if batch.edge_deletions or batch.edge_reweights or batch.vertex_deletions:
            raise ChangeStreamError(
                "VertexAdditionStrategy handles additions only; route"
                " deletions through the deletion strategies"
            )
        # ---- placement (Fig. 2 line 2) --------------------------------
        placement = self.placement.assign(batch, cluster)
        new_ids = batch.new_vertex_ids()
        missing = [v for v in new_ids if v not in placement]
        if missing:
            raise ChangeStreamError(
                f"placement strategy left vertices unassigned: {missing[:5]}"
            )

        # ---- add vertices (Fig. 3 lines 10-18) ------------------------
        for va in batch.vertex_additions:
            cluster.graph.add_vertex(va.vertex)
        cluster.add_vertex_columns(new_ids)
        if cluster.partition is not None and new_ids:
            cluster.partition = cluster.partition.merge_assignments(
                {v: placement[v] for v in new_ids}
            )
        for v in new_ids:
            cluster.workers[placement[v]].add_local_vertex(v)
        cluster.sync_compute()

        # ---- add edges (Fig. 3 lines 19-44) ---------------------------
        for va in batch.vertex_additions:
            for t, w in va.edges:
                apply_edge_addition(cluster, va.vertex, t, w)
        for ea in batch.edge_additions:
            apply_edge_addition(cluster, ea.u, ea.v, ea.weight)
        cluster.sync_compute()
