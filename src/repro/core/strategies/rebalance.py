"""Incremental load rebalancing (paper §VI future work).

"We also plan to ... develop graph rebalancing strategies to deal with
load imbalances caused by these changes."  Unlike Repartition-S (which
re-partitions everything), the rebalancer performs *targeted migrations*:
when the per-worker vertex counts drift past a threshold, boundary
vertices move from the most-loaded to the least-loaded workers, chosen by
a cut-aware gain (prefer vertices with more edges toward the destination
than inside the source — the label-propagation intuition of Vaquero &
Martella / Mizan, grafted onto the anytime framework so migrated vertices
carry their partial DV rows with them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from ...graph.changes import ChangeBatch
from ...partition.base import Partition
from ...partition.metrics import imbalance
from ...types import Rank, VertexId
from .base import DynamicStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ...runtime.cluster import Cluster

__all__ = ["plan_rebalance", "apply_migration", "RebalancedStrategy"]


def plan_rebalance(
    cluster: "Cluster",
    *,
    imbalance_threshold: float = 0.2,
    max_moves: Optional[int] = None,
) -> Dict[VertexId, Rank]:
    """Plan vertex migrations that push vertex-count imbalance under the
    threshold.  Returns ``{vertex: new_rank}`` (possibly empty).

    Greedy: repeatedly move the best-gain vertex from the currently
    most-loaded worker to the least-loaded one.  Gain of moving ``v`` to
    rank ``d`` = (edges from ``v`` into ``d``) − (edges from ``v`` staying
    in its source), so migrations tend to *reduce* the cut while fixing
    balance.
    """
    speeds = [w.speed for w in cluster.workers]
    counts = [w.n_local for w in cluster.workers]
    total = sum(counts)
    if total == 0:
        return {}
    # speed-normalized load: a 2x worker carries 2x the vertices at parity
    loads = [c / sp for c, sp in zip(counts, speeds)]
    owner = dict(cluster.partition.assignment) if cluster.partition else {}
    moves: Dict[VertexId, Rank] = {}
    cap = max_moves if max_moves is not None else total // 4 + 1
    ops = 0
    while len(moves) < cap:
        if imbalance(loads) <= imbalance_threshold:
            break
        src = int(np.argmax(loads))
        dst = int(np.argmin(loads))
        if loads[src] * speeds[src] - loads[dst] * speeds[dst] <= 1:
            break
        best_v, best_gain = None, -np.inf
        for v, r in owner.items():
            if r != src:
                continue
            to_dst = 0
            stay = 0
            for u, _w in cluster.graph.neighbor_items(v):
                ru = owner[u]
                if ru == dst:
                    to_dst += 1
                elif ru == src:
                    stay += 1
                ops += 1
            gain = to_dst - stay
            if gain > best_gain:
                best_gain, best_v = gain, v
        if best_v is None:
            break
        owner[best_v] = dst
        moves[best_v] = dst
        loads[src] -= 1.0 / speeds[src]
        loads[dst] += 1.0 / speeds[dst]
    cluster.charge_serial_compute(cluster.cost.scan_time(ops))
    return moves


def apply_migration(cluster: "Cluster", moves: Dict[VertexId, Rank]) -> None:
    """Execute planned migrations, carrying DV rows to the new owners.

    Only the workers whose owned sets change pay a local-APSP rebuild;
    untouched workers keep their (still exact) local APSP.
    """
    if not moves:
        return
    assert cluster.partition is not None
    new_assignment = dict(cluster.partition.assignment)
    migration_words: Dict[Tuple[Rank, Rank], int] = {}
    n_cols = cluster.n_columns
    touched: set[Rank] = set()
    for v, dst in moves.items():
        src = new_assignment[v]
        new_assignment[v] = dst
        key = (src, dst)
        migration_words[key] = migration_words.get(key, 0) + (n_cols + 1)
        touched.add(src)
        touched.add(dst)
    cluster.charge_comm_words(
        [(s, d, words) for (s, d), words in migration_words.items()]
    )
    rows = cluster.distance_rows()
    # preserve the local APSP of workers whose block did not change
    saved = {
        w.rank: (tuple(w.owned), w.local_apsp)
        for w in cluster.workers
        if w.rank not in touched
    }
    cluster.install_partition(
        Partition(cluster.nprocs, new_assignment), seed_rows=rows
    )
    for w in cluster.workers:
        kept = saved.get(w.rank)
        if kept is not None and kept[0] == tuple(w.owned):
            w.local_apsp = kept[1]
            w.restore_local_baseline()
        else:
            w.recompute_local_apsp()
        w.queue_all_boundary_rows()
    cluster.sync_compute()


class RebalancedStrategy(DynamicStrategy):
    """Wrap any dynamic strategy with post-batch load rebalancing.

    After the inner strategy incorporates a batch, vertex-count imbalance
    is checked; if it exceeds ``threshold``, targeted migrations restore
    balance.  ``last_moves`` exposes the most recent migration count for
    observability and tests.
    """

    def __init__(
        self,
        inner: DynamicStrategy,
        *,
        threshold: float = 0.2,
        max_moves: Optional[int] = None,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.inner = inner
        self.threshold = threshold
        self.max_moves = max_moves
        self.last_moves = 0
        self.total_moves = 0
        self.name = f"rebalanced[{inner.name}]"

    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        self.inner.apply(cluster, batch, step)
        moves = plan_rebalance(
            cluster,
            imbalance_threshold=self.threshold,
            max_moves=self.max_moves,
        )
        apply_migration(cluster, moves)
        self.last_moves = len(moves)
        self.total_moves += len(moves)
