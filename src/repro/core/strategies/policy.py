"""Signal-driven strategy selection (paper Fig. 1 line 16).

The RC template "chooses recombination strategy(ies) based on the
constraints".  :class:`AdaptiveStrategy` hard-codes one constraint
(batch size); this module generalizes the choice into a pluggable
**strategy policy**: a pure function from live run signals — the load
gauges, wire statistics, queue depths and convergence residuals the obs
layer already produces — to the *name* of the dynamic strategy to apply
to the next batch.

Policies read signals through a :class:`~repro.obs.registry.SignalView`
and return names resolved through the ordinary strategy registry, so a
policy can steer anything that is registered — including strategies
added downstream.  :class:`PolicyDrivenStrategy` adapts a policy back
into a :class:`DynamicStrategy` (registered as ``"auto"``), which is
what makes ``strategy="auto"`` work everywhere a strategy name is
accepted.

Determinism: policies see only modeled quantities, collected into a
*private* registry (observers on/off cannot change what a policy sees,
and a policy cannot perturb the exported metrics), so decision
sequences pin byte-for-byte across runs and backends.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from ...graph.changes import ChangeBatch
from ...obs.convergence import ConvergenceProbe
from ...obs.registry import MetricsRegistry, SignalView
from .adaptive import CompositeStrategy
from .base import DynamicStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...runtime.cluster import Cluster
    from ..config import AnytimeConfig

__all__ = [
    "PolicyDecision",
    "StrategyPolicy",
    "FixedPolicy",
    "ThresholdPolicy",
    "SignalDrivenPolicy",
    "PolicyDrivenStrategy",
    "batch_intra_edges",
    "batch_attachment_edges",
]


def batch_intra_edges(batch: ChangeBatch) -> int:
    """Edges of the batch whose endpoints are both new vertices."""
    new_ids = set(batch.new_vertex_ids())
    count = 0
    for va in batch.vertex_additions:
        for t, _w in va.edges:
            if t in new_ids:
                count += 1
    return count


def batch_attachment_edges(batch: ChangeBatch) -> int:
    """Edges anchoring the batch's new vertices to the existing graph."""
    new_ids = set(batch.new_vertex_ids())
    count = 0
    for va in batch.vertex_additions:
        for t, _w in va.edges:
            if t not in new_ids:
                count += 1
    return count


@dataclass(frozen=True)
class PolicyDecision:
    """One policy choice: which strategy a batch was routed through."""

    step: int
    strategy: str
    reason: str

    def line(self) -> str:
        """Canonical one-line form (pinned byte-for-byte in CI)."""
        return f"step={self.step} strategy={self.strategy} reason={self.reason}"


class StrategyPolicy(abc.ABC):
    """Chooses the dynamic strategy for the next change batch."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(
        self, signals: SignalView, batch: ChangeBatch, step: int
    ) -> Tuple[str, str]:
        """Return ``(strategy_name, reason)`` for ``batch`` at ``step``.

        ``strategy_name`` must be resolvable through the strategy
        registry; ``reason`` is a short token recorded in the decision
        trace.  Implementations must be pure readers of ``signals`` —
        they run on the coordinator between supersteps and must not
        touch cluster state or the modeled clock.
        """


class FixedPolicy(StrategyPolicy):
    """Always choose the same strategy (the non-adaptive baseline)."""

    name = "fixed"

    def __init__(self, strategy: str) -> None:
        self.strategy = strategy

    def choose(
        self, signals: SignalView, batch: ChangeBatch, step: int
    ) -> Tuple[str, str]:
        return self.strategy, "fixed"


class ThresholdPolicy(StrategyPolicy):
    """Batch-size threshold choice — :class:`AdaptiveStrategy` as a policy.

    Batches larger than ``threshold * |V|`` repartition; smaller batches
    go through the anywhere vertex-addition path.
    """

    name = "threshold"

    def __init__(
        self, threshold: float = 0.05, *, small: str = "roundrobin"
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be a fraction of |V| in [0, 1]")
        self.threshold = threshold
        self.small = small

    def choose(
        self, signals: SignalView, batch: ChangeBatch, step: int
    ) -> Tuple[str, str]:
        k = len(batch.new_vertex_ids())
        n = max(signals.graph_vertices, 1.0)
        if k > self.threshold * n:
            return "repartition", "large-batch"
        return self.small, "small-batch"


class SignalDrivenPolicy(StrategyPolicy):
    """The default adaptive policy: route by load, structure, and wire.

    Decision ladder (first match wins, so the sequence is deterministic):

    1. **imbalance** — a worker owns disproportionately many vertices
       (``vertex imbalance > imbalance_threshold``) and the batch is
       big enough to be worth a global fix
       (``>= repartition_min_fraction * |V|`` new vertices):
       Repartition-S, migrating DV rows to the fresh partition (xDGP's
       adaptive repartitioning applied to the anytime pipeline).
       Ownership skew is the one condition a reshuffle provably fixes;
       cut imbalance is deliberately ignored here because it tracks
       degree skew (hub owners always carry more cut edges) and
       saturates whenever some worker owns few boundary rows, so it
       fires Repartition-S's O(n) migration on noise.
    2. **boundary-heavy** — the batch's new vertices are densely wired
       to each other (``intra-batch edges >= intra_edge_ratio * k``):
       CutEdge-PS, which partitions exactly that intra-batch structure.
    3. **delta-hit** — the wire is already running efficiently
       (``delta hit rate >= delta_hit_threshold``) and the batch is
       tiny (``<= small_fraction * |V|``): RoundRobin-PS — placement
       finesse cannot beat its O(k) cost while deltas stay cheap.
    4. **fallback** — ``fallback`` (default CutEdge-PS: with no
       decisive signal, locality-aware placement minimises the wire
       traffic every later RC step pays for).
    """

    name = "signals"

    def __init__(
        self,
        *,
        imbalance_threshold: float = 0.5,
        repartition_min_fraction: float = 0.02,
        intra_edge_ratio: float = 1.0,
        delta_hit_threshold: float = 0.5,
        small_fraction: float = 0.02,
        fallback: str = "cutedge",
    ) -> None:
        self.imbalance_threshold = imbalance_threshold
        self.repartition_min_fraction = repartition_min_fraction
        self.intra_edge_ratio = intra_edge_ratio
        self.delta_hit_threshold = delta_hit_threshold
        self.small_fraction = small_fraction
        self.fallback = fallback

    def choose(
        self, signals: SignalView, batch: ChangeBatch, step: int
    ) -> Tuple[str, str]:
        k = len(batch.new_vertex_ids())
        n = max(signals.graph_vertices, 1.0)
        if (
            k
            and signals.vertex_imbalance > self.imbalance_threshold
            and k >= self.repartition_min_fraction * n
        ):
            return "repartition", "imbalance"
        if k >= 2 and batch_intra_edges(batch) >= self.intra_edge_ratio * k:
            return "cutedge", "boundary-heavy"
        if (
            signals.delta_hit_rate >= self.delta_hit_threshold
            and k <= self.small_fraction * n
        ):
            return "roundrobin", "delta-hit"
        return self.fallback, "fallback"


class PolicyDrivenStrategy(DynamicStrategy):
    """Adapter: run a :class:`StrategyPolicy` as a dynamic strategy.

    Before each batch it samples the cluster's signals into a private
    registry (identical collection to the obs layer's, so decisions
    cannot depend on whether observers are attached), asks the policy
    for a strategy name, and delegates to the registered strategy —
    wrapped in a :class:`CompositeStrategy` when necessary so mixed
    add/delete batches stay routable regardless of the choice.

    Chosen strategies are cached per name: placement state (round-robin
    rotation offsets, partitioner streams) persists across batches the
    same way it does for a hand-passed fixed strategy.
    """

    name = "auto"

    def __init__(
        self, policy: StrategyPolicy, config: "AnytimeConfig"
    ) -> None:
        self.policy = policy
        self.config = config
        self._registry = MetricsRegistry()
        self._probe = ConvergenceProbe(wf_improved=config.wf_improved)
        self._cache: Dict[str, DynamicStrategy] = {}
        #: decision trace, one entry per applied batch (pinned in CI)
        self.decisions: List[PolicyDecision] = []

    def signals(self, cluster: "Cluster", step: int = -1) -> SignalView:
        """Collect the current signals (also the ``Session.signals`` read)."""
        cluster.collect_signals(self._registry)
        sample = self._probe.sample(cluster, step)
        return SignalView(self._registry, {self._probe.name: sample})

    def _resolve(self, name: str) -> DynamicStrategy:
        from .registry import make_strategy

        inner = self._cache.get(name)
        if inner is None:
            inner = make_strategy(name, self.config)
            if not isinstance(inner, CompositeStrategy):
                # deletion events must still route to the deletion
                # strategies even when the policy picked an
                # additions-only strategy such as Repartition-S
                inner = CompositeStrategy(inner)
            self._cache[name] = inner
        return inner

    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        view = self.signals(cluster, step)
        name, reason = self.policy.choose(view, batch, step)
        self.decisions.append(
            PolicyDecision(step=step, strategy=name, reason=reason)
        )
        self._resolve(name).apply(cluster, batch, step)
