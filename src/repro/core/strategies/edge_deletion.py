"""Anywhere edge deletion (Santos et al. 2016 [10]-style).

Deleting edge ``(u, v, w)`` can only *increase* distances, which breaks the
monotone-decrease discipline the DVR refinement relies on.  The strategy
therefore runs a two-phase protocol:

1. **Invalidate** — owners broadcast the pre-deletion rows of ``u`` and
   ``v``; every worker resets to +inf each DV entry whose value is
   *witnessed* by a path through the deleted edge
   (``d(x,u) + w + d(v,t) == d(x,t)`` in either orientation).  Entries not
   witnessed keep their values: some shortest path avoids the edge.
   Stored external rows are dropped wholesale — they may embed the edge.
2. **Rebuild** — the owning worker(s) repair local structure (local APSP
   recomputation for an intra-partition deletion; cut-edge deregistration
   otherwise), every owner re-queues its boundary rows, and the normal RC
   iterations re-derive the invalidated entries from scratch.

Edge *reweights* route through here too: a weight decrease is just an edge
addition (relax-only), a weight increase is delete-then-add.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...graph.changes import ChangeBatch
from ...types import VertexId
from .base import DynamicStrategy
from .edge_addition import apply_edge_addition

if TYPE_CHECKING:  # pragma: no cover
    from ...runtime.cluster import Cluster

__all__ = ["apply_edge_deletion", "EdgeDeletionStrategy"]


def apply_edge_deletion(cluster: "Cluster", u: VertexId, v: VertexId) -> None:
    """Remove edge ``(u, v)`` and invalidate dependent distances."""
    w = cluster.graph.weight(u, v)
    rank_u = cluster.owner_of(u)
    rank_v = cluster.owner_of(v)
    row_u = cluster.broadcast_row(u)
    row_v = cluster.broadcast_row(v)

    cluster.graph.remove_edge(u, v)

    # phase 1: invalidate witnessed entries everywhere
    for worker in cluster.workers:
        worker.invalidate_for_deleted_edge(u, row_u, v, row_v, w)
        worker.clear_external_rows()

    # phase 2: structural repair
    dirty_rank = None
    if rank_u == rank_v:
        wk = cluster.workers[rank_u]
        wk.local_graph.remove_edge(u, v)
        dirty_rank = rank_u
    else:
        cluster.workers[rank_u].remove_cut_edge(u, v)
        cluster.workers[rank_v].remove_cut_edge(v, u)
        # the subscription stays open (harmless) — rows keep flowing only
        # while other cut edges to the same vertex exist
    # invalidation may have wiped locally-exact entries; restore them and
    # schedule a full re-propagation + boundary refresh on every worker
    for worker in cluster.workers:
        if worker.rank == dirty_rank:
            worker.recompute_local_apsp()  # local structure changed
        else:
            worker.restore_local_baseline()
        worker.queue_all_boundary_rows()


class EdgeDeletionStrategy(DynamicStrategy):
    """Dynamic strategy for batches of edge deletions and reweights."""

    name = "edge-deletion"

    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        if batch.vertex_additions or batch.vertex_deletions:
            raise ValueError(
                "EdgeDeletionStrategy handles edge deletions/reweights only"
            )
        for ed in batch.edge_deletions:
            apply_edge_deletion(cluster, ed.u, ed.v)
        for er in batch.edge_reweights:
            old = cluster.graph.weight(er.u, er.v)
            if er.weight < old:
                apply_edge_addition(cluster, er.u, er.v, er.weight)
            elif er.weight > old:
                apply_edge_deletion(cluster, er.u, er.v)
                apply_edge_addition(cluster, er.u, er.v, er.weight)
        for ea in batch.edge_additions:
            apply_edge_addition(cluster, ea.u, ea.v, ea.weight)
        cluster.sync_compute()
