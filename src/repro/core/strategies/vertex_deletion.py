"""Anywhere vertex deletion — the paper's stated future work, implemented.

Deleting vertex ``x``:

1. the owner broadcasts ``x``'s current DV row; every worker resets DV
   entries *witnessed through* ``x`` (``d(a,x) + d(x,b) == d(a,b)``),
2. all structure referencing ``x`` is removed: its global-index column is
   compacted out of every DV, its row/local edges leave the owner, cut
   edges to it leave the neighbors, and the global graph drops it,
3. local APSPs are repaired and boundary rows re-queued, after which the
   RC iterations re-derive the invalidated entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

from ...graph.changes import ChangeBatch
from ...types import Rank, VertexId
from .base import DynamicStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ...runtime.cluster import Cluster

__all__ = ["apply_vertex_deletion", "VertexDeletionStrategy"]


def apply_vertex_deletion(cluster: "Cluster", x: VertexId) -> None:
    """Remove vertex ``x`` (and its edges) from the running computation."""
    owner_rank = cluster.owner_of(x)
    owner = cluster.workers[owner_rank]
    row_x = cluster.broadcast_row(x)

    # phase 1: invalidate entries routed through x
    for worker in cluster.workers:
        worker.invalidate_through_vertex(x, row_x)
        worker.clear_external_rows()

    # phase 2: structural removal
    removed_edges = cluster.graph.remove_vertex(x)
    neighbor_ranks: Set[Rank] = set()
    for _x, t, _w in removed_edges:
        neighbor_ranks.add(cluster.owner_of(t))
    owner.remove_local_vertex(x)
    for r in sorted(neighbor_ranks):
        if r != owner_rank:
            cluster.workers[r].drop_external_vertex(x)
    col = cluster.index.remove(x)
    for worker in cluster.workers:
        worker.remove_column(col)
    if cluster.partition is not None:
        del cluster.partition.assignment[x]

    # phase 3: repair and refresh
    for worker in cluster.workers:
        if worker.rank == owner_rank or worker.rank in neighbor_ranks:
            worker.recompute_local_apsp()
        else:
            worker.restore_local_baseline()
        worker.queue_all_boundary_rows()


class VertexDeletionStrategy(DynamicStrategy):
    """Dynamic strategy for batches of vertex deletions."""

    name = "vertex-deletion"

    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        if (
            batch.vertex_additions
            or batch.edge_additions
            or batch.edge_deletions
            or batch.edge_reweights
        ):
            raise ValueError("VertexDeletionStrategy handles deletions only")
        for vd in batch.vertex_deletions:
            apply_vertex_deletion(cluster, vd.vertex)
        cluster.sync_compute()
