"""Constraint-driven strategy selection (paper Fig. 1 line 16).

The paper's RC template "chooses recombination strategy(ies) based on the
constraints".  Two composites implement that choice:

* :class:`AdaptiveStrategy` — the headline insight of the evaluation:
  small batches go through the anywhere vertex-addition strategy, batches
  larger than a threshold fraction of |V| go through Repartition-S.
* :class:`CompositeStrategy` — routes a *mixed* batch to the appropriate
  specialized strategies (additions, edge deletions/reweights, vertex
  deletions) in a safe order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...graph.changes import ChangeBatch
from .base import DynamicStrategy, ProcessorAssignmentStrategy
from .edge_deletion import EdgeDeletionStrategy
from .repartition import RepartitionStrategy
from .vertex_addition import VertexAdditionStrategy
from .vertex_deletion import VertexDeletionStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ...runtime.cluster import Cluster

__all__ = ["AdaptiveStrategy", "CompositeStrategy"]


class AdaptiveStrategy(DynamicStrategy):
    """Switch between anywhere addition and Repartition-S by batch size."""

    name = "adaptive"

    def __init__(
        self,
        placement: ProcessorAssignmentStrategy,
        repartition: Optional[RepartitionStrategy] = None,
        *,
        threshold: float = 0.05,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be a fraction of |V| in [0, 1]")
        self.addition = VertexAdditionStrategy(placement)
        self.repartition = repartition or RepartitionStrategy()
        self.threshold = threshold
        self.last_choice: Optional[str] = None

    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        k = len(batch.vertex_additions)
        n = max(cluster.graph.num_vertices, 1)
        if k > self.threshold * n:
            self.last_choice = self.repartition.name
            self.repartition.apply(cluster, batch, step)
        else:
            self.last_choice = self.addition.name
            self.addition.apply(cluster, batch, step)


class CompositeStrategy(DynamicStrategy):
    """Route mixed change batches to the specialized strategies.

    Application order: additions first (they can only tighten bounds),
    then edge deletions/reweights, then vertex deletions (both of which
    run invalidation passes that see the post-addition state).
    """

    name = "composite"

    def __init__(self, addition: DynamicStrategy) -> None:
        self.addition = addition
        self.edge_deletion = EdgeDeletionStrategy()
        self.vertex_deletion = VertexDeletionStrategy()

    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        if batch.vertex_additions or batch.edge_additions:
            self.addition.apply(
                cluster,
                ChangeBatch(
                    vertex_additions=batch.vertex_additions,
                    edge_additions=batch.edge_additions,
                ),
                step,
            )
        if batch.edge_deletions or batch.edge_reweights:
            self.edge_deletion.apply(
                cluster,
                ChangeBatch(
                    edge_deletions=batch.edge_deletions,
                    edge_reweights=batch.edge_reweights,
                ),
                step,
            )
        if batch.vertex_deletions:
            self.vertex_deletion.apply(
                cluster,
                ChangeBatch(vertex_deletions=batch.vertex_deletions),
                step,
            )
