"""Table-driven registry of named dynamic strategies.

The engine resolves strategy *names* through this table instead of a
hard-coded if/elif chain, so downstream code can plug in new strategies
without editing the engine::

    from repro.core.strategies import STRATEGIES, register

    @register("mystrategy")
    def _make(config: AnytimeConfig) -> DynamicStrategy:
        return MyStrategy(...)

    engine.run(changes=stream, strategy="mystrategy")

A factory receives the engine's :class:`~repro.core.config.AnytimeConfig`
(partitioners, thresholds) and returns a fresh
:class:`~repro.core.strategies.base.DynamicStrategy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from ...errors import ConfigurationError
from .adaptive import AdaptiveStrategy, CompositeStrategy
from .assignment import (
    CutEdgePS,
    LDGPS,
    LeastLoadedPS,
    NeighborMajorityPS,
    RoundRobinPS,
)
from .base import DynamicStrategy
from .policy import (
    PolicyDrivenStrategy,
    SignalDrivenPolicy,
    StrategyPolicy,
    ThresholdPolicy,
)
from .repartition import RepartitionStrategy
from .vertex_addition import VertexAdditionStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import AnytimeConfig

__all__ = [
    "STRATEGIES",
    "StrategyFactory",
    "register",
    "make_strategy",
    "POLICIES",
    "PolicyFactory",
    "register_policy",
    "make_policy",
]

#: A factory building a fresh strategy from the engine configuration.
StrategyFactory = Callable[["AnytimeConfig"], DynamicStrategy]

#: Name -> factory table the engine resolves strategy strings against.
STRATEGIES: Dict[str, StrategyFactory] = {}

#: A factory building a fresh strategy policy from the configuration.
PolicyFactory = Callable[["AnytimeConfig"], StrategyPolicy]

#: Name -> factory table ``strategy="auto"`` resolves policies against.
POLICIES: Dict[str, PolicyFactory] = {}


def register(
    name: str,
    factory: Optional[StrategyFactory] = None,
    *,
    overwrite: bool = False,
) -> Callable[[StrategyFactory], StrategyFactory]:
    """Register ``factory`` under ``name``; usable as a decorator.

    Re-registering an existing name raises
    :class:`~repro.errors.ConfigurationError` unless ``overwrite=True`` —
    silently shadowing a built-in is almost always a bug.
    """

    def _add(fn: StrategyFactory) -> StrategyFactory:
        if not overwrite and name in STRATEGIES:
            raise ConfigurationError(
                f"strategy {name!r} is already registered"
                " (pass overwrite=True to replace it)"
            )
        STRATEGIES[name] = fn
        return fn

    if factory is not None:
        _add(factory)
    return _add


def make_strategy(name: str, config: "AnytimeConfig") -> DynamicStrategy:
    """Build the registered strategy ``name`` for ``config``."""
    factory = STRATEGIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown strategy {name!r}; registered strategies:"
            f" {sorted(STRATEGIES)}"
        )
    return factory(config)


def register_policy(
    name: str,
    factory: Optional[PolicyFactory] = None,
    *,
    overwrite: bool = False,
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Register a strategy-policy factory; usable as a decorator.

    Policies live in their own namespace next to :data:`STRATEGIES`;
    ``strategy="auto"`` resolves ``config.strategy_policy`` against this
    table.  Same duplicate-name discipline as :func:`register`.
    """

    def _add(fn: PolicyFactory) -> PolicyFactory:
        if not overwrite and name in POLICIES:
            raise ConfigurationError(
                f"policy {name!r} is already registered"
                " (pass overwrite=True to replace it)"
            )
        POLICIES[name] = fn
        return fn

    if factory is not None:
        _add(factory)
    return _add


def make_policy(name: str, config: "AnytimeConfig") -> StrategyPolicy:
    """Build the registered strategy policy ``name`` for ``config``."""
    factory = POLICIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown strategy policy {name!r}; registered policies:"
            f" {sorted(POLICIES)}"
        )
    return factory(config)


# ----------------------------------------------------------------------
# built-in strategies (the paper's A_rs variants)
# ----------------------------------------------------------------------
@register("roundrobin")
def _roundrobin(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(VertexAdditionStrategy(RoundRobinPS()))


@register("leastloaded")
def _leastloaded(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(VertexAdditionStrategy(LeastLoadedPS()))


@register("neighbormajority")
def _neighbormajority(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(VertexAdditionStrategy(NeighborMajorityPS()))


@register("ldg")
def _ldg(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(VertexAdditionStrategy(LDGPS()))


@register("cutedge")
def _cutedge(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(
        VertexAdditionStrategy(CutEdgePS(config.cutedge_partitioner))
    )


@register("repartition")
def _repartition(config: "AnytimeConfig") -> DynamicStrategy:
    return RepartitionStrategy(config.partitioner)


@register("adaptive")
def _adaptive(config: "AnytimeConfig") -> DynamicStrategy:
    # composite wrapper so deletion events route to the deletion
    # strategies while the adaptive chooser handles additions
    return CompositeStrategy(
        AdaptiveStrategy(
            CutEdgePS(config.cutedge_partitioner),
            RepartitionStrategy(config.partitioner),
            threshold=config.repartition_threshold,
        )
    )


@register("auto")
def _auto(config: "AnytimeConfig") -> DynamicStrategy:
    # policy-driven selection: config.strategy_policy names the policy,
    # and the adapter re-resolves through this registry per batch
    return PolicyDrivenStrategy(
        make_policy(config.strategy_policy, config), config
    )


# ----------------------------------------------------------------------
# built-in strategy policies
# ----------------------------------------------------------------------
@register_policy("signals")
def _signals(config: "AnytimeConfig") -> StrategyPolicy:
    return SignalDrivenPolicy()


@register_policy("threshold")
def _threshold(config: "AnytimeConfig") -> StrategyPolicy:
    return ThresholdPolicy(config.repartition_threshold)
