"""Table-driven registry of named dynamic strategies.

The engine resolves strategy *names* through this table instead of a
hard-coded if/elif chain, so downstream code can plug in new strategies
without editing the engine::

    from repro.core.strategies import STRATEGIES, register

    @register("mystrategy")
    def _make(config: AnytimeConfig) -> DynamicStrategy:
        return MyStrategy(...)

    engine.run(changes=stream, strategy="mystrategy")

A factory receives the engine's :class:`~repro.core.config.AnytimeConfig`
(partitioners, thresholds) and returns a fresh
:class:`~repro.core.strategies.base.DynamicStrategy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from ...errors import ConfigurationError
from .adaptive import AdaptiveStrategy, CompositeStrategy
from .assignment import (
    CutEdgePS,
    LDGPS,
    LeastLoadedPS,
    NeighborMajorityPS,
    RoundRobinPS,
)
from .base import DynamicStrategy
from .repartition import RepartitionStrategy
from .vertex_addition import VertexAdditionStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import AnytimeConfig

__all__ = ["STRATEGIES", "StrategyFactory", "register", "make_strategy"]

#: A factory building a fresh strategy from the engine configuration.
StrategyFactory = Callable[["AnytimeConfig"], DynamicStrategy]

#: Name -> factory table the engine resolves strategy strings against.
STRATEGIES: Dict[str, StrategyFactory] = {}


def register(
    name: str,
    factory: Optional[StrategyFactory] = None,
    *,
    overwrite: bool = False,
) -> Callable[[StrategyFactory], StrategyFactory]:
    """Register ``factory`` under ``name``; usable as a decorator.

    Re-registering an existing name raises
    :class:`~repro.errors.ConfigurationError` unless ``overwrite=True`` —
    silently shadowing a built-in is almost always a bug.
    """

    def _add(fn: StrategyFactory) -> StrategyFactory:
        if not overwrite and name in STRATEGIES:
            raise ConfigurationError(
                f"strategy {name!r} is already registered"
                " (pass overwrite=True to replace it)"
            )
        STRATEGIES[name] = fn
        return fn

    if factory is not None:
        _add(factory)
    return _add


def make_strategy(name: str, config: "AnytimeConfig") -> DynamicStrategy:
    """Build the registered strategy ``name`` for ``config``."""
    factory = STRATEGIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown strategy {name!r}; registered strategies:"
            f" {sorted(STRATEGIES)}"
        )
    return factory(config)


# ----------------------------------------------------------------------
# built-in strategies (the paper's A_rs variants)
# ----------------------------------------------------------------------
@register("roundrobin")
def _roundrobin(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(VertexAdditionStrategy(RoundRobinPS()))


@register("leastloaded")
def _leastloaded(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(VertexAdditionStrategy(LeastLoadedPS()))


@register("neighbormajority")
def _neighbormajority(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(VertexAdditionStrategy(NeighborMajorityPS()))


@register("ldg")
def _ldg(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(VertexAdditionStrategy(LDGPS()))


@register("cutedge")
def _cutedge(config: "AnytimeConfig") -> DynamicStrategy:
    return CompositeStrategy(
        VertexAdditionStrategy(CutEdgePS(config.cutedge_partitioner))
    )


@register("repartition")
def _repartition(config: "AnytimeConfig") -> DynamicStrategy:
    return RepartitionStrategy(config.partitioner)


@register("adaptive")
def _adaptive(config: "AnytimeConfig") -> DynamicStrategy:
    # composite wrapper so deletion events route to the deletion
    # strategies while the adaptive chooser handles additions
    return CompositeStrategy(
        AdaptiveStrategy(
            CutEdgePS(config.cutedge_partitioner),
            RepartitionStrategy(config.partitioner),
            threshold=config.repartition_threshold,
        )
    )
