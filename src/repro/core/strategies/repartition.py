"""Repartition-S (§IV.C.1.b): absorb large batches by repartitioning.

For large batches the per-edge anywhere relaxations become more expensive
than starting the placement over.  Repartition-S:

1. applies the batch to the global graph,
2. repartitions the *entire* grown graph with the DD partitioner,
3. migrates every existing vertex's DV row to its (possibly new) owner —
   this is the anytime reuse that separates Repartition-S from a restart:
   all partial shortest-path results survive,
4. rebuilds local sub-graphs / local APSPs and lets the RC loop converge
   (new vertices' rows start at +inf, which is why the paper notes
   Repartition-S "can lead to additional RC steps").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ...graph.changes import ChangeBatch
from ...partition.base import Partitioner
from ...partition.multilevel import MultilevelPartitioner
from ...types import Rank
from .base import DynamicStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ...runtime.cluster import Cluster

__all__ = ["RepartitionStrategy"]


class RepartitionStrategy(DynamicStrategy):
    """Full-graph repartitioning with partial-result migration."""

    name = "repartition"

    def __init__(self, partitioner: Optional[Partitioner] = None) -> None:
        self.partitioner = partitioner or MultilevelPartitioner(seed=2)

    def apply(self, cluster: "Cluster", batch: ChangeBatch, step: int) -> None:
        batch.validate(cluster.graph)
        if batch.edge_deletions or batch.edge_reweights or batch.vertex_deletions:
            # removals invalidate DV upper bounds; they are handled by the
            # deletion strategies before repartitioning would make sense
            raise ValueError("RepartitionStrategy handles additions only")
        old_assignment = (
            dict(cluster.partition.assignment) if cluster.partition else {}
        )

        # 1. grow the global graph and every DV by the new columns
        new_ids = batch.new_vertex_ids()
        batch.apply_to(cluster.graph)
        cluster.add_vertex_columns(new_ids)
        cluster.sync_compute()

        # 2. repartition the whole graph (parallel, like the DD phase)
        part = self.partitioner.partition(cluster.graph, cluster.nprocs)
        part.validate_against(cluster.graph)
        n, m = cluster.graph.num_vertices, cluster.graph.num_edges
        cluster.tracer.add_compute(
            cluster.cost.partition_time(n, 2 * m, cluster.nprocs)
            / cluster.nprocs
        )

        # 3. migrate partial results: every existing vertex's DV row moves
        #    from its old owner to its new owner (anytime reuse)
        rows = cluster.distance_rows()
        n_cols = cluster.n_columns
        migration: Dict[Tuple[Rank, Rank], int] = {}
        moved = 0
        for v, new_owner in part.assignment.items():
            old_owner = old_assignment.get(v)
            if old_owner is None or old_owner == new_owner:
                continue
            key = (old_owner, new_owner)
            migration[key] = migration.get(key, 0) + (n_cols + 1)
            moved += 1
        cluster.charge_comm_words(
            [(s, d, words) for (s, d), words in migration.items()]
        )

        # 4. rebuild workers around the new partition, seeding old rows
        cluster.install_partition(part, seed_rows=rows)
        for w in cluster.workers:
            w.recompute_local_apsp()
            w.queue_all_boundary_rows()
        cluster.sync_compute()
        cluster.tracer.note("migrated_rows", float(moved))
