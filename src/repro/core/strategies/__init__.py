"""Recombination strategies: placement, additions, deletions, repartition."""

from .adaptive import AdaptiveStrategy, CompositeStrategy
from .assignment import (
    CutEdgePS,
    LDGPS,
    LeastLoadedPS,
    NeighborMajorityPS,
    RoundRobinPS,
)
from .base import DynamicStrategy, ProcessorAssignmentStrategy
from .edge_addition import EdgeAdditionStrategy, apply_edge_addition
from .edge_deletion import EdgeDeletionStrategy, apply_edge_deletion
from .policy import (
    FixedPolicy,
    PolicyDecision,
    PolicyDrivenStrategy,
    SignalDrivenPolicy,
    StrategyPolicy,
    ThresholdPolicy,
)
from .rebalance import RebalancedStrategy, apply_migration, plan_rebalance
from .registry import (
    POLICIES,
    STRATEGIES,
    PolicyFactory,
    StrategyFactory,
    make_policy,
    make_strategy,
    register,
    register_policy,
)
from .repartition import RepartitionStrategy
from .vertex_addition import VertexAdditionStrategy
from .vertex_deletion import VertexDeletionStrategy, apply_vertex_deletion

__all__ = [
    "STRATEGIES",
    "StrategyFactory",
    "register",
    "make_strategy",
    "POLICIES",
    "PolicyFactory",
    "register_policy",
    "make_policy",
    "StrategyPolicy",
    "PolicyDecision",
    "FixedPolicy",
    "ThresholdPolicy",
    "SignalDrivenPolicy",
    "PolicyDrivenStrategy",
    "ProcessorAssignmentStrategy",
    "DynamicStrategy",
    "RoundRobinPS",
    "CutEdgePS",
    "LDGPS",
    "LeastLoadedPS",
    "NeighborMajorityPS",
    "VertexAdditionStrategy",
    "EdgeAdditionStrategy",
    "apply_edge_addition",
    "EdgeDeletionStrategy",
    "apply_edge_deletion",
    "VertexDeletionStrategy",
    "apply_vertex_deletion",
    "RepartitionStrategy",
    "RebalancedStrategy",
    "plan_rebalance",
    "apply_migration",
    "AdaptiveStrategy",
    "CompositeStrategy",
]
