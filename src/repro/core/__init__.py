"""Core anytime-anywhere algorithm: DD, IA, RC, strategies, engine."""

from .config import AnytimeConfig
from .engine import AnytimeAnywhereCloseness, RunResult
from .recombination import run_recombination
from .snapshots import AnytimeSnapshot, take_snapshot
from .strategies import (
    AdaptiveStrategy,
    CompositeStrategy,
    CutEdgePS,
    DynamicStrategy,
    EdgeAdditionStrategy,
    EdgeDeletionStrategy,
    LeastLoadedPS,
    NeighborMajorityPS,
    ProcessorAssignmentStrategy,
    RepartitionStrategy,
    RoundRobinPS,
    VertexAdditionStrategy,
    VertexDeletionStrategy,
)

__all__ = [
    "AnytimeConfig",
    "AnytimeAnywhereCloseness",
    "RunResult",
    "run_recombination",
    "AnytimeSnapshot",
    "take_snapshot",
    "ProcessorAssignmentStrategy",
    "DynamicStrategy",
    "RoundRobinPS",
    "CutEdgePS",
    "LeastLoadedPS",
    "NeighborMajorityPS",
    "VertexAdditionStrategy",
    "EdgeAdditionStrategy",
    "EdgeDeletionStrategy",
    "VertexDeletionStrategy",
    "RepartitionStrategy",
    "AdaptiveStrategy",
    "CompositeStrategy",
]
