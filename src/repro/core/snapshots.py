"""Anytime snapshots: interruptible intermediate results.

The *anytime* property means the algorithm can be stopped after any RC step
and yield a non-trivial solution whose quality improves monotonically.  A
snapshot captures the solution (closeness upper-bound estimates derived
from the current DVs) together with the modeled clock, so quality-vs-time
curves can be plotted and the monotonicity invariant property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

import numpy as np

from ..centrality.closeness import closeness_from_row
from ..types import VertexId

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.cluster import Cluster

__all__ = ["AnytimeSnapshot", "take_snapshot"]


@dataclass
class AnytimeSnapshot:
    """The interruptible state after one RC step."""

    step: int
    modeled_seconds: float
    wall_seconds: float
    closeness: Dict[VertexId, float]
    #: number of (source, target) pairs still at +inf
    unresolved_pairs: int
    #: number of vertices in the computation at snapshot time
    n_vertices: int

    @property
    def resolved_fraction(self) -> float:
        total = self.n_vertices * self.n_vertices
        if total == 0:
            return 1.0
        return 1.0 - self.unresolved_pairs / total


def take_snapshot(
    cluster: "Cluster", step: int, *, wf_improved: bool = False
) -> AnytimeSnapshot:
    """Capture the current solution (pure observation — not charged to the
    modeled clock)."""
    closeness: Dict[VertexId, float] = {}
    unresolved = 0
    for w in cluster.workers:
        if w.n_local == 0:
            continue
        finite = np.isfinite(w.dv)
        unresolved += int(w.dv.size - finite.sum())
        for v in w.owned:
            r = w.row_of[v]
            closeness[v] = closeness_from_row(
                w.dv[r],
                self_col=cluster.index.column(v),
                wf_improved=wf_improved,
            )
    return AnytimeSnapshot(
        step=step,
        modeled_seconds=cluster.tracer.modeled_seconds,
        wall_seconds=cluster.tracer.wall_seconds,
        closeness=closeness,
        unresolved_pairs=unresolved,
        n_vertices=cluster.n_columns,
    )
