"""The recombination (RC) loop — paper Fig. 1.

Each RC step:

1. **exchange** — personalized all-to-all delivery of queued boundary-DV
   rows (lines 9-15),
2. **refine** — cut-edge relaxation against fresh external rows, then the
   local min-plus (Floyd–Warshall-style) propagation (line 17's static
   refinement strategy),
3. **dynamic changes** — if the change stream schedules a batch at this
   step, the configured dynamic strategy incorporates it (line 16-17),

repeated "until no more updates in any processor" (line 18) and no further
changes are scheduled.  For a static graph this terminates within P-1
steps (the longest processor chain), which tests assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..errors import ConvergenceError
from ..graph.changes import ChangeStream
from .strategies.base import DynamicStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.cluster import Cluster
    from ..runtime.supervisor import Supervisor

__all__ = ["run_recombination"]


def run_recombination(
    cluster: "Cluster",
    *,
    strategy: Optional[DynamicStrategy] = None,
    changes: Optional[ChangeStream] = None,
    max_steps: int = 10_000,
    on_step: Optional[Callable[[int], None]] = None,
    start_step: int = 0,
    budget_modeled_seconds: Optional[float] = None,
    step_budget: Optional[int] = None,
    supervisor: Optional["Supervisor"] = None,
) -> int:
    """Run RC steps until convergence; returns the number of steps run.

    Parameters
    ----------
    strategy:
        Dynamic strategy applied to scheduled change batches.  Required if
        ``changes`` is non-empty.
    changes:
        Batches keyed by RC step (0-based, absolute — ``start_step`` lets a
        caller resume an interrupted loop without re-applying old batches).
    max_steps:
        Safety bound; exceeding it raises :class:`ConvergenceError`.
    on_step:
        Observer called after each completed step (snapshots).
    budget_modeled_seconds:
        Anytime interruption: stop (without error) once the modeled clock
        has advanced by this much since entry, even if not yet converged.
        The partial results remain valid upper bounds.
    step_budget:
        Discrete anytime interruption: run at most this many RC steps,
        then stop without error (the serve loop's pacing primitive —
        unlike ``max_steps``, reaching the budget is a normal return,
        not a :class:`ConvergenceError`).
    supervisor:
        Fault-tolerance supervisor.  Its :meth:`before_step` preamble
        (periodic checkpoints + scheduled crashes and their recoveries)
        runs at the start of every step, and the loop stays alive while
        crashes are still scheduled in the future — a fault after natural
        convergence must still be absorbed.
    """
    if changes and changes.last_step >= start_step and strategy is None:
        raise ValueError("a dynamic strategy is required to apply changes")
    clock_start = cluster.tracer.modeled_seconds
    step = start_step
    steps_run = 0
    while steps_run < max_steps:
        if step_budget is not None and steps_run >= step_budget:
            return steps_run  # paced: caller resumes with the next call
        # budget first: it is checked against the clock *before* the
        # convergence vote charges its all-reduce, so a fresh call always
        # starts at zero elapsed and is guaranteed to make progress
        # (unless the budget itself is zero)
        if (
            budget_modeled_seconds is not None
            and cluster.tracer.modeled_seconds - clock_start
            >= budget_modeled_seconds
        ):
            return steps_run  # interrupted: anytime result stands
        if supervisor is not None:
            supervisor.before_step(step)
            if supervisor.degraded_reason:
                # graceful degradation: recovery budgets are exhausted;
                # stop here — the surviving ranks' rows remain valid
                # upper bounds and form the partial anytime result
                return steps_run
        batch = changes.at_step(step) if changes else None
        future_changes = bool(changes) and changes.last_step > step
        future_faults = (
            supervisor is not None and supervisor.last_crash_step > step
        )
        if (
            batch is None
            and not future_changes
            and not future_faults
            and not cluster.any_pending()
        ):
            return steps_run
        cluster.tracer.begin("rc_step", step)
        try:
            delivered = cluster.exchange_boundary()
            rec = cluster.tracer._open
            if rec is not None and delivered:
                # rows landed this step (dense or delta): part of the
                # canonical per-step trace, so wire-format bugs show up
                # as trace diffs
                rec.info["rows_delivered"] = (
                    rec.info.get("rows_delivered", 0.0) + delivered
                )
            cluster.relax_and_propagate()
            if batch is not None:
                strategy.apply(cluster, batch, step)  # type: ignore[union-attr]
                if supervisor is not None:
                    supervisor.note_batch(batch)
        except BaseException:
            # close the phase so the tracer stays reusable and the span
            # tree stays balanced; the partial charge is kept
            cluster.tracer.abort()
            raise
        cluster.tracer.end()
        cluster.observe_superstep(step)
        if on_step is not None:
            on_step(step)
        step += 1
        steps_run += 1
    raise ConvergenceError(
        f"recombination did not converge within {max_steps} steps"
    )
