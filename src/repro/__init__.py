"""repro — anytime anywhere algorithms for vertex additions in large and
dynamic graphs.

A from-scratch reproduction of Santos, Korah, Murugappan & Subramanian,
"Efficient Anytime Anywhere Algorithms for Vertex Additions in Large and
Dynamic Graphs" (IPDPS Workshops 2017): distributed closeness centrality
on dynamic graphs with anywhere vertex additions, processor-assignment
strategies (RoundRobin-PS, CutEdge-PS), Repartition-S, and a simulated
LogP-metered message-passing cluster.

Quick start::

    from repro import AnytimeAnywhereCloseness, AnytimeConfig
    from repro.graph import barabasi_albert

    engine = AnytimeAnywhereCloseness(
        barabasi_albert(500, 3, seed=1), AnytimeConfig(nprocs=4)
    )
    engine.setup()
    print(engine.run().closeness)
"""

from .core.config import AnytimeConfig
from .core.engine import AnytimeAnywhereCloseness, RunResult
from .errors import ReproError
from .graph.changes import ChangeBatch, ChangeStream
from .graph.graph import Graph
from .runtime.chaos import FaultPlan

__version__ = "1.0.0"

__all__ = [
    "AnytimeAnywhereCloseness",
    "AnytimeConfig",
    "RunResult",
    "FaultPlan",
    "Graph",
    "ChangeBatch",
    "ChangeStream",
    "ReproError",
    "__version__",
]
