"""repro — anytime anywhere algorithms for vertex additions in large and
dynamic graphs.

A from-scratch reproduction of Santos, Korah, Murugappan & Subramanian,
"Efficient Anytime Anywhere Algorithms for Vertex Additions in Large and
Dynamic Graphs" (IPDPS Workshops 2017): distributed closeness centrality
on dynamic graphs with anywhere vertex additions, processor-assignment
strategies (RoundRobin-PS, CutEdge-PS), Repartition-S, and a simulated
LogP-metered message-passing cluster.

Quick start::

    import repro
    from repro.graph import barabasi_albert

    result = repro.closeness(barabasi_albert(500, 3, seed=1), nprocs=4)
    print(result.closeness)

or, keeping a live session around for streaming/anytime runs::

    import repro

    with repro.session(g, repro.AnytimeConfig(nprocs=4)) as s:
        s.feed(events)                  # queue change events
        s.step()                        # one admission + paced RC step
        print(s.signals.delta_hit_rate)
        print(s.result().closeness)     # drain + run to convergence
"""

from .core.config import AnytimeConfig, ResilienceConfig
from .core.engine import AnytimeAnywhereCloseness, RunResult, closeness
from .errors import ReproError
from .graph.changes import ChangeBatch, ChangeStream
from .graph.graph import Graph
from .obs import ConvergenceProbe, Observer, SignalView, build_hub
from .runtime.backends import available_backends
from .runtime.kernels import available_tiers
from .runtime.chaos import FaultPlan
from .runtime.health import HealthPolicy
from .serve import Session, session

__version__ = "1.0.0"

__all__ = [
    "AnytimeAnywhereCloseness",
    "AnytimeConfig",
    "ResilienceConfig",
    "RunResult",
    "Session",
    "SignalView",
    "closeness",
    "session",
    "available_backends",
    "available_tiers",
    "ConvergenceProbe",
    "Observer",
    "build_hub",
    "FaultPlan",
    "HealthPolicy",
    "Graph",
    "ChangeBatch",
    "ChangeStream",
    "ReproError",
    "__version__",
]
