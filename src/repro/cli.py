"""Command-line interface: regenerate any figure of the paper.

Examples::

    python -m repro figure5
    python -m repro figure8 --n-base 800 --nprocs 16
    python -m repro all --markdown --out results.md
    python -m repro partition --n 1000 --nparts 8
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from .bench.reporting import format_table, summary_rows, to_markdown
from .bench.scenarios import (
    ScenarioScale,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    scaling,
)

__all__ = ["main", "build_parser"]

_FIG_COLUMNS = {
    "figure4": ["inject_step", "strategy", "modeled_minutes", "rc_steps",
                "new_cut_edges", "wall_seconds"],
    "figure5": ["batch_size", "strategy", "modeled_minutes", "rc_steps",
                "new_cut_edges", "wall_seconds"],
    "figure6": ["batch_size", "strategy", "modeled_minutes", "rc_steps",
                "new_cut_edges", "wall_seconds"],
    "figure7": ["batch_size", "strategy", "new_cut_edges"],
    "figure8": ["per_step", "cumulative", "strategy", "modeled_minutes",
                "rc_steps", "wall_seconds"],
    "scaling": ["nprocs", "modeled_seconds", "comm_seconds", "comm_fraction",
                "speedup", "rc_steps"],
}

_FIGS: Dict[str, Callable[..., List[dict]]] = {
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "scaling": scaling,
}


def _add_chaos_args(p: argparse.ArgumentParser) -> None:
    """The seeded fault-injection / self-healing flag group."""
    p.add_argument("--chaos-seed", type=int, default=None,
                   help="run under seeded fault injection (message loss"
                        " + duplication) to exercise the chaos metrics")
    p.add_argument("--chaos-crash", type=str, action="append", default=None,
                   metavar="STEP:RANK",
                   help="crash RANK at superstep STEP (repeatable);"
                        " implies fault injection")
    p.add_argument("--chaos-straggler", type=str, action="append",
                   default=None, metavar="RANK:FACTOR",
                   help="slow RANK down by FACTOR (repeatable);"
                        " implies fault injection")
    p.add_argument("--chaos-loss", type=float, default=None,
                   metavar="P", help="message loss probability")
    p.add_argument("--chaos-dup", type=float, default=None,
                   metavar="P", help="message duplication probability")
    p.add_argument("--recovery", type=str, default=None,
                   choices=["warm", "checkpoint", "redistribute",
                            "escalate"],
                   help="crash recovery policy (escalate climbs the"
                        " warm -> checkpoint -> redistribute ladder)")
    p.add_argument("--health", action="store_true",
                   help="attach the health monitor: deadline tracking,"
                        " speculative straggler mitigation, seeded"
                        " backoff, graceful degradation")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Efficient Anytime Anywhere"
            " Algorithms for Vertex Additions in Large and Dynamic Graphs'"
            " (IPDPS-W 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n-base", type=int, default=None,
                       help="base graph size (default scenario scale)")
        p.add_argument("--nprocs", type=int, default=None,
                       help="simulated processors (paper: 16)")
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--small", action="store_true",
                       help="tiny smoke-test scale")
        p.add_argument("--verify", action="store_true",
                       help="validate final results against exact closeness")
        p.add_argument("--markdown", action="store_true",
                       help="emit a markdown table instead of plain text")
        p.add_argument("--out", type=str, default=None,
                       help="write the table to this file as well")

    for name in list(_FIGS) + ["all"]:
        p = sub.add_parser(
            name,
            help=(
                "run every figure" if name == "all"
                else f"regenerate the paper's {name}"
            ),
        )
        add_scale_args(p)

    pp = sub.add_parser("partition", help="partition a random graph and report quality")
    pp.add_argument("--n", type=int, default=1000)
    pp.add_argument("--m", type=int, default=3)
    pp.add_argument("--nparts", type=int, default=8)
    pp.add_argument("--seed", type=int, default=0)

    tp = sub.add_parser(
        "trace",
        help="run a dynamic analysis and print the per-phase time breakdown",
    )
    tp.add_argument("--n-base", type=int, default=400)
    tp.add_argument("--batch", type=int, default=40,
                    help="vertices added at the injection step")
    tp.add_argument("--inject-step", type=int, default=2)
    tp.add_argument("--nprocs", type=int, default=8)
    tp.add_argument("--strategy", type=str, default="cutedge")
    tp.add_argument("--seed", type=int, default=7)
    tp.add_argument("--backend", type=str, default=None,
                    choices=["serial", "process"],
                    help="execution backend (default: REPRO_BACKEND or"
                         " serial); results are bitwise-identical either"
                         " way, only wall time differs")
    tp.add_argument("--kernel-tier", type=str, default=None,
                    choices=["numpy", "scipy", "numba"],
                    help="kernel tier (default: REPRO_KERNEL_TIER or"
                         " numpy); scipy chunks the IA Dijkstra across"
                         " the process pool, numba uses compiled kernels"
                         " when installed")
    tp.add_argument("--json", type=str, default=None,
                    help="also dump the full trace to this JSON file")
    tp.add_argument("--trace-out", type=str, action="append", default=None,
                    metavar="FORMAT:PATH",
                    help="attach a trace exporter (repeatable):"
                         " jsonl:PATH, perfetto:PATH, or prom:PATH")
    tp.add_argument("--probe-convergence", action="store_true",
                    help="attach the per-superstep convergence probe")
    _add_chaos_args(tp)

    fp = sub.add_parser(
        "profile",
        help="fold an exported JSONL trace into deterministic"
             " cost-attribution tables: modeled time per phase, rank,"
             " and kernel tier, hot paths, wall-vs-modeled skew",
    )
    fp.add_argument("trace", type=str,
                    help="path to a jsonl trace written by --trace-out")
    fp.add_argument("--top", type=int, default=10,
                    help="hot paths to keep (default 10)")
    fp.add_argument("--json", type=str, default=None,
                    help="also dump the folded profile as JSON")
    fp.add_argument("--perfetto-out", type=str, default=None,
                    help="write the aggregated Perfetto view (one slice"
                         " per phase, one track per rank)")
    fp.add_argument("--no-wall", action="store_true",
                    help="omit the wall-clock annotation columns and the"
                         " skew section (fully deterministic output)")
    fp.add_argument("--out", type=str, default=None,
                    help="write the rendered profile to this file as well")

    rp = sub.add_parser(
        "report",
        help="render a run's exported JSONL trace into a per-phase and"
             " convergence summary",
    )
    rp.add_argument("trace", type=str,
                    help="path to a jsonl trace written by --trace-out")
    rp.add_argument("--out", type=str, default=None,
                    help="write the report to this file as well")

    vp = sub.add_parser(
        "serve",
        help="drive the streaming update service over a churn trace:"
             " admission-batched feed, signal-driven strategy selection,"
             " periodic report-style summaries",
    )
    vp.add_argument("--shape", type=str, default=None,
                    choices=["bursty-communities", "skew-grow",
                             "steady-small"],
                    help="synthesize a churn trace of this shape")
    vp.add_argument("--trace", type=str, default=None,
                    help="replay a JSONL change trace file instead of"
                         " synthesizing one (the base graph is rebuilt"
                         " from --n-base/--seed)")
    vp.add_argument("--n-base", type=int, default=120,
                    help="base graph size (barabasi-albert, m=2)")
    vp.add_argument("--ticks", type=int, default=24,
                    help="service ticks the synthesized trace spans")
    vp.add_argument("--nprocs", type=int, default=8)
    vp.add_argument("--seed", type=int, default=0)
    vp.add_argument("--strategy", type=str, default="auto",
                    help="strategy name for admitted batches; 'auto'"
                         " picks per batch from live signals")
    vp.add_argument("--backend", type=str, default=None,
                    choices=["serial", "process"])
    vp.add_argument("--kernel-tier", type=str, default=None,
                    choices=["numpy", "scipy", "numba"])
    vp.add_argument("--max-events", type=int, default=8,
                    help="admission: full-batch size trigger")
    vp.add_argument("--max-delay-ticks", type=int, default=4,
                    help="admission: staleness bound in service ticks")
    vp.add_argument("--summary-every", type=int, default=8,
                    help="emit a report-style summary every N ticks"
                         " (0 = only the final one)")
    vp.add_argument("--save-trace", type=str, default=None,
                    help="write the synthesized trace as JSONL and exit")
    vp.add_argument("--out", type=str, default=None,
                    help="write the serve log to this file as well")
    vp.add_argument("--trace-out", type=str, action="append", default=None,
                    metavar="FORMAT:PATH",
                    help="attach a trace exporter (repeatable):"
                         " jsonl:PATH, perfetto:PATH, or prom:PATH")
    vp.add_argument("--slo", type=str, default=None, metavar="SPECS.json",
                    help="load SLO specs and judge every tick; alert"
                         " transitions print as canonical slo= lines")
    vp.add_argument("--slo-out", type=str, default=None, metavar="PATH",
                    help="write the alert transitions as trace-event"
                         " JSONL (schema-validatable)")
    _add_chaos_args(vp)
    return parser


def _parse_pairs(
    specs: Optional[List[str]], flag: str, second: type
) -> tuple:
    """Parse repeatable ``A:B`` pair flags like ``--chaos-crash 2:1``."""
    out = []
    for spec in specs or []:
        try:
            a, b = spec.split(":", 1)
            out.append((int(a), second(b)))
        except ValueError:
            raise SystemExit(
                f"{flag} expects A:B (got {spec!r})"
            ) from None
    return tuple(out)


def _fault_plan_from_args(args: argparse.Namespace):
    """Build a FaultPlan from the --chaos-* flags, or None if absent."""
    crashes = _parse_pairs(args.chaos_crash, "--chaos-crash", int)
    stragglers = _parse_pairs(
        args.chaos_straggler, "--chaos-straggler", float
    )
    # --chaos-seed alone keeps its historical meaning: a light mixed
    # loss/duplication plan for exercising the chaos metrics
    implied = crashes or stragglers or (
        args.chaos_loss is not None or args.chaos_dup is not None
    )
    if args.chaos_seed is None and not implied:
        return None
    from .runtime.chaos import FaultPlan

    if implied:
        loss = args.chaos_loss or 0.0
        dup = args.chaos_dup or 0.0
    else:
        loss, dup = 0.05, 0.05
    return FaultPlan(
        seed=args.chaos_seed if args.chaos_seed is not None else 0,
        crashes=crashes,
        stragglers=stragglers,
        loss_prob=loss,
        dup_prob=dup,
    )


def _scale_from_args(args: argparse.Namespace) -> ScenarioScale:
    scale = ScenarioScale.small() if args.small else ScenarioScale()
    overrides = {}
    if args.n_base is not None:
        overrides["n_base"] = args.n_base
    if args.nprocs is not None:
        overrides["nprocs"] = args.nprocs
    if args.seed is not None:
        overrides["seed"] = args.seed
    return replace(scale, **overrides) if overrides else scale


def _emit(name: str, rows: List[dict], args: argparse.Namespace) -> str:
    cols = _FIG_COLUMNS[name]
    if not args.verify and "max_error" in cols:
        cols = [c for c in cols if c != "max_error"]
    table = to_markdown(rows, cols) if args.markdown else format_table(rows, cols)
    return f"== {name} ==\n{table}\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "partition":
        from .graph.generators import barabasi_albert
        from .partition import (
            BFSGrowingPartitioner,
            HashPartitioner,
            MultilevelPartitioner,
            RoundRobinPartitioner,
            SpectralPartitioner,
            partition_report,
        )

        g = barabasi_albert(args.n, args.m, seed=args.seed)
        rows = []
        for part in (
            MultilevelPartitioner(seed=args.seed),
            SpectralPartitioner(seed=args.seed),
            BFSGrowingPartitioner(seed=args.seed),
            HashPartitioner(),
            RoundRobinPartitioner(),
        ):
            rep = partition_report(g, part.partition(g, args.nparts))
            rows.append(
                {
                    "partitioner": part.name,
                    "edge_cut": rep["edge_cut"],
                    "balance": rep["balance"],
                    "cut_imbalance": rep["cut_imbalance"],
                }
            )
        print(format_table(rows))
        return 0

    if args.command == "profile":
        from .obs import load_events
        from .obs.profile import (
            dump_profile,
            fold_events,
            profile_to_perfetto,
            render_profile,
        )

        prof = fold_events(load_events(args.trace), top=args.top)
        text = render_profile(prof, include_wall=not args.no_wall)
        print(text, end="")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
        if args.json:
            dump_profile(prof, args.json, include_wall=not args.no_wall)
            print(f"profile written to {args.json}")
        if args.perfetto_out:
            import json as _json

            with open(args.perfetto_out, "w", encoding="utf-8") as fh:
                _json.dump(profile_to_perfetto(prof), fh)
            print(f"aggregated perfetto view written to {args.perfetto_out}")
        return 0

    if args.command == "report":
        from .obs import load_events, render_report

        text = render_report(load_events(args.trace))
        print(text, end="")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
        return 0

    if args.command == "trace":
        from . import AnytimeAnywhereCloseness, AnytimeConfig, ResilienceConfig
        from .bench.workloads import community_workload

        workload = community_workload(
            args.n_base, args.batch, seed=args.seed,
            inject_step=args.inject_step,
        )
        cfg_kwargs: Dict[str, object] = {}
        if args.backend is not None:
            cfg_kwargs["backend"] = args.backend
        if args.kernel_tier is not None:
            cfg_kwargs["kernel_tier"] = args.kernel_tier
        observers: List[str] = list(args.trace_out or [])
        if args.probe_convergence:
            observers.append("convergence")
        if observers:
            cfg_kwargs["observers"] = tuple(observers)
        if args.health:
            from .runtime.health import HealthPolicy

            cfg_kwargs["health"] = HealthPolicy()
        fault_plan = _fault_plan_from_args(args)
        if fault_plan is not None or args.recovery is not None:
            cfg_kwargs["resilience"] = ResilienceConfig(
                recovery=args.recovery or "warm", fault_plan=fault_plan
            )
        with AnytimeAnywhereCloseness(
            workload.base,
            AnytimeConfig(nprocs=args.nprocs, seed=args.seed,
                          collect_snapshots=False, **cfg_kwargs),
        ) as engine:
            engine.setup()
            result = engine.run(
                changes=workload.stream, strategy=args.strategy,
            )
            tracer = engine.cluster.tracer
        rows = [
            {"phase": name, "modeled_seconds": secs}
            for name, secs in sorted(
                tracer.by_phase().items(), key=lambda t: -t[1]
            )
        ]
        print(format_table(rows))
        summary = result.summary()
        print(
            "\n"
            + format_table(
                summary_rows([result]),
                [
                    "rc_steps",
                    "modeled_seconds",
                    "wall_seconds",
                    "wire_format",
                    "wire_words",
                    "boundary_words",
                    "boundary_rows_dense",
                    "boundary_rows_sparse",
                ],
            )
        )
        print(
            f"\ntotal modeled {summary['modeled_seconds']:.4f}s over"
            f" {summary['rc_steps']} RC steps"
            f" ({tracer.total_messages} messages,"
            f" {summary['wire_words']:,} words on the wire);"
            f" wall {summary['wall_seconds']:.2f}s"
        )
        if result.faults_injected or result.retries:
            print(
                f"chaos: {result.faults_injected} faults injected,"
                f" {result.retries} retries,"
                f" {result.recoveries} recoveries"
            )
        if result.recoveries_by_rung:
            rungs = ", ".join(
                f"{rung}={n} (mttr {result.mttr_by_rung[rung]:.4g}s)"
                for rung, n in sorted(result.recoveries_by_rung.items())
            )
            print(f"recovery ladder: {rungs}")
        if result.missed_deadlines or result.speculations:
            print(
                f"health: {result.missed_deadlines} missed deadlines,"
                f" {result.speculations} speculative re-executions,"
                f" {result.backoff_modeled_seconds:.4g}s modeled backoff"
            )
        if result.degraded:
            quality = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(result.quality.items())
            )
            print(
                f"DEGRADED ({result.degraded_reason}): partial anytime"
                f" result returned; quality: {quality}"
            )
        if result.convergence:
            for probe, sample in sorted(result.convergence.items()):
                pairs = ", ".join(
                    f"{k}={v:.4g}" for k, v in sorted(sample.items())
                )
                print(f"{probe}: {pairs}")
        for spec in observers:
            if ":" in spec:
                print(f"trace exported to {spec}")
        if args.json:
            tracer.save(args.json)
            print(f"full trace written to {args.json}")
        return 0

    if args.command == "serve":
        from . import AnytimeConfig
        from .graph.generators import barabasi_albert
        from .serve import (
            HybridAdmission,
            load_change_trace,
            save_change_trace,
            session,
            synthesize_churn,
        )

        if (args.shape is None) == (args.trace is None):
            raise SystemExit("serve needs exactly one of --shape / --trace")
        if args.shape is not None:
            churn = synthesize_churn(
                args.shape, n_base=args.n_base, ticks=args.ticks,
                seed=args.seed,
            )
            base, events, ticks = churn.base, list(churn.events), churn.ticks
        else:
            events = load_change_trace(args.trace)
            base = barabasi_albert(args.n_base, 2, seed=args.seed)
            ticks = max((t for t, _ in events), default=0) + 1
        if args.save_trace:
            save_change_trace(args.save_trace, events)
            print(f"trace written to {args.save_trace} ({len(events)} events)")
            return 0

        cfg_kwargs = {}
        if args.backend is not None:
            cfg_kwargs["backend"] = args.backend
        if args.kernel_tier is not None:
            cfg_kwargs["kernel_tier"] = args.kernel_tier
        if args.trace_out:
            cfg_kwargs["observers"] = tuple(args.trace_out)
        if args.health:
            from .runtime.health import HealthPolicy

            cfg_kwargs["health"] = HealthPolicy()
        fault_plan = _fault_plan_from_args(args)
        if fault_plan is not None or args.recovery is not None:
            from . import ResilienceConfig

            cfg_kwargs["resilience"] = ResilienceConfig(
                recovery=args.recovery or "warm", fault_plan=fault_plan
            )
        slo_specs = None
        if args.slo is not None:
            from .obs.slo import load_slo_specs

            slo_specs = load_slo_specs(args.slo)
        config = AnytimeConfig(
            nprocs=args.nprocs, seed=args.seed, collect_snapshots=False,
            **cfg_kwargs,
        )
        lines: List[str] = []
        if slo_specs is not None:
            for spec in slo_specs:
                lines.append(f"slo loaded: {spec.describe()}")
        with session(
            base, config,
            admission=HybridAdmission(args.max_events, args.max_delay_ticks),
            strategy=args.strategy,
            summary_interval=args.summary_every,
            slo=slo_specs,
        ) as s:
            svc = s.service
            for t in range(ticks):
                at_t = [ev for at, ev in events if at == t]
                if at_t:
                    s.feed(at_t)
                seen = len(svc.summaries)
                alerts_seen = len(svc.slo_alerts)
                lines.append(s.step().line())
                for alert in svc.slo_alerts[alerts_seen:]:
                    lines.append(alert.line())
                for summ in svc.summaries[seen:]:
                    lines.extend(summ.lines())
            result = s.result()
            final = svc.summarize(result)
            alerts = list(svc.slo_alerts)
            slo_status = svc.slo.status() if svc.slo is not None else []
        lines.append("serve drained; final state:")
        lines.extend(final.lines()[1:])
        if slo_specs is not None:
            firing = [row["slo"] for row in slo_status
                      if row["state"] == "firing"]
            lines.append(
                f"slo: {len(alerts)} alert transition(s);"
                f" firing at exit: {', '.join(firing) if firing else 'none'}"
            )
            if args.slo_out:
                from .obs.events import SpanEvent

                with open(args.slo_out, "w", encoding="utf-8") as fh:
                    for i, alert in enumerate(alerts):
                        ev = SpanEvent(
                            seq=i, kind="alert", level="slo",
                            name=alert.slo, t=alert.t, step=alert.tick,
                            attrs=alert.attrs(),
                        )
                        fh.write(ev.to_json() + "\n")
                lines.append(f"slo alerts written to {args.slo_out}")
        text = "\n".join(lines) + "\n"
        print(text, end="")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
        return 0

    scale = _scale_from_args(args)
    names = list(_FIGS) if args.command == "all" else [args.command]
    output: List[str] = []
    fig5_rows: Optional[List[dict]] = None
    for name in names:
        fn = _FIGS[name]
        if name == "figure7":
            # figure 7 derives from a figure-5 sweep; reuse it when `all`
            # already ran one instead of repeating the experiment
            rows = fn(scale, rows=fig5_rows)
        else:
            rows = fn(scale, verify=args.verify)
            if name == "figure5":
                fig5_rows = rows
        output.append(_emit(name, rows, args))
    text = "\n".join(output)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
