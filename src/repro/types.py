"""Shared type aliases and small value objects used across the library."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

#: A vertex identifier.  Vertices are dense non-negative integers; new
#: vertices appended by dynamic changes take the next free ids.
VertexId = int

#: Processor (worker) rank in the simulated cluster, ``0 <= rank < P``.
Rank = int

#: A weighted undirected edge ``(u, v, w)``.
WeightedEdge = Tuple[VertexId, VertexId, float]

#: An unweighted edge ``(u, v)``.
Edge = Tuple[VertexId, VertexId]

#: Adjacency mapping ``u -> {v: w}``.
Adjacency = Mapping[VertexId, Mapping[VertexId, float]]

#: A block assignment: ``assignment[v]`` is the rank owning vertex ``v``.
Assignment = Dict[VertexId, Rank]

#: Dense distance row / matrix dtype used throughout the library.
DIST_DTYPE = np.float64

#: A distance row or matrix (``float64``); bare ``np.ndarray`` is not
#: precise enough under ``mypy --strict`` (disallow_any_generics).
FloatArray = NDArray[np.float64]

#: Integer index arrays (row indices, permutations).
IntArray = NDArray[np.int64]

#: Boolean masks over rows / vertices.
BoolArray = NDArray[np.bool_]

#: Sentinel for "no path known yet".
INF = float("inf")


def as_vertex_list(vertices: Iterable[VertexId]) -> List[VertexId]:
    """Normalize an iterable of vertex ids to a sorted, duplicate-free list."""
    return sorted(set(int(v) for v in vertices))


def normalize_edge(u: VertexId, v: VertexId) -> Edge:
    """Return the canonical (min, max) ordering of an undirected edge."""
    return (u, v) if u <= v else (v, u)


def edge_key(u: VertexId, v: VertexId) -> Edge:
    """Alias of :func:`normalize_edge` kept for readability at call sites."""
    return normalize_edge(u, v)


def check_ranks(ranks: Sequence[Rank], nprocs: int) -> None:
    """Validate that all ranks are within ``[0, nprocs)``.

    Raises
    ------
    ValueError
        If any rank is out of range.
    """
    for r in ranks:
        if not 0 <= r < nprocs:
            raise ValueError(f"rank {r} out of range for {nprocs} processors")
