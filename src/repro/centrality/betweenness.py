"""Betweenness centrality: exact (Brandes) and sampled approximation.

The paper lists betweenness among the key SNA centrality measures (§IV)
and cites both the sampling approximation of Bader et al. (ref [17]) and
incremental betweenness updates (QUBE, ref [18]).  This module provides
the single-machine references:

* :func:`exact_betweenness` — Brandes' algorithm (2001), weighted via a
  Dijkstra traversal per source, O(nm + n^2 log n),
* :func:`approximate_betweenness` — Bader-style source sampling: run the
  Brandes accumulation from ``k`` random pivots and extrapolate by
  ``n / k``; unbiased, with error shrinking as pivots grow.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..graph.graph import Graph
from ..types import VertexId

__all__ = ["exact_betweenness", "approximate_betweenness"]


def _brandes_accumulate(
    graph: Graph, source: VertexId, scores: Dict[VertexId, float]
) -> None:
    """One source's dependency accumulation (weighted Brandes)."""
    dist: Dict[VertexId, float] = {source: 0.0}
    sigma: Dict[VertexId, float] = {source: 1.0}
    preds: Dict[VertexId, List[VertexId]] = {source: []}
    order: List[VertexId] = []
    seen: set[VertexId] = set()
    heap: List[tuple[float, int, VertexId]] = [(0.0, source, source)]
    while heap:
        d, _tie, v = heapq.heappop(heap)
        if v in seen:
            continue
        seen.add(v)
        order.append(v)
        for u, w in graph.neighbor_items(v):
            nd = d + w
            old = dist.get(u)
            if old is None or nd < old - 1e-12:
                dist[u] = nd
                sigma[u] = sigma[v]
                preds[u] = [v]
                heapq.heappush(heap, (nd, u, u))
            elif abs(nd - old) <= 1e-12 and u not in seen:
                sigma[u] = sigma.get(u, 0.0) + sigma[v]
                preds.setdefault(u, []).append(v)
    delta: Dict[VertexId, float] = {v: 0.0 for v in order}
    for v in reversed(order):
        for p in preds.get(v, ()):
            delta[p] += sigma[p] / sigma[v] * (1.0 + delta[v])
        if v != source:
            scores[v] = scores.get(v, 0.0) + delta[v]


def _finalize(
    graph: Graph, scores: Dict[VertexId, float], normalized: bool, scale: float
) -> Dict[VertexId, float]:
    n = graph.num_vertices
    out = {v: scores.get(v, 0.0) * scale for v in graph.vertices()}
    # undirected graphs: each pair counted from both endpoints
    for v in out:
        out[v] /= 2.0
    if normalized and n > 2:
        norm = 2.0 / ((n - 1) * (n - 2))
        for v in out:
            out[v] *= norm
    return out


def exact_betweenness(
    graph: Graph, *, normalized: bool = True
) -> Dict[VertexId, float]:
    """Exact shortest-path betweenness centrality (Brandes)."""
    scores: Dict[VertexId, float] = {}
    for s in graph.vertices():
        _brandes_accumulate(graph, s, scores)
    return _finalize(graph, scores, normalized, 1.0)


def approximate_betweenness(
    graph: Graph,
    n_pivots: int,
    *,
    normalized: bool = True,
    seed: Optional[int] = None,
) -> Dict[VertexId, float]:
    """Pivot-sampled betweenness (Bader et al. style).

    Runs the Brandes accumulation from ``n_pivots`` uniformly sampled
    sources and scales by ``n / n_pivots``.  With ``n_pivots >= n`` this
    degenerates to the exact computation.
    """
    if n_pivots < 1:
        raise ConfigurationError("n_pivots must be >= 1")
    vertices = graph.vertex_list()
    n = len(vertices)
    if n == 0:
        return {}
    if n_pivots >= n:
        return exact_betweenness(graph, normalized=normalized)
    rng = np.random.default_rng(seed)
    pivots = rng.choice(n, size=n_pivots, replace=False)
    scores: Dict[VertexId, float] = {}
    for i in pivots:
        _brandes_accumulate(graph, vertices[int(i)], scores)
    return _finalize(graph, scores, normalized, n / n_pivots)
