"""Solution-quality metrics for anytime snapshots.

The anytime property guarantees monotonically non-decreasing solution
quality; these metrics quantify it: distance-level errors against ground
truth and rank-level agreement of the induced centrality ordering.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from ..types import VertexId

__all__ = [
    "distance_error",
    "closeness_error",
    "rank_correlation",
    "top_k_overlap",
]


def distance_error(
    approx: np.ndarray, exact: np.ndarray
) -> Dict[str, float]:
    """Error statistics between two distance matrices of the same shape.

    ``inf`` entries in ``approx`` that are finite in ``exact`` count as
    *unresolved*; finite-vs-finite entries contribute absolute error.
    Approximate distances are upper bounds, so negative errors indicate a
    correctness bug (tests assert ``min_signed >= 0``).
    """
    if approx.shape != exact.shape:
        raise ValueError(f"shape mismatch: {approx.shape} vs {exact.shape}")
    finite_exact = np.isfinite(exact)
    finite_both = finite_exact & np.isfinite(approx)
    unresolved = int((finite_exact & ~np.isfinite(approx)).sum())
    if finite_both.any():
        diff = approx[finite_both] - exact[finite_both]
        mae = float(np.abs(diff).mean())
        mx = float(np.abs(diff).max())
        min_signed = float(diff.min())
    else:
        mae = mx = 0.0
        min_signed = 0.0
    total = int(finite_exact.sum())
    return {
        "mae": mae,
        "max": mx,
        "min_signed": min_signed,
        "unresolved": float(unresolved),
        "unresolved_frac": float(unresolved / total) if total else 0.0,
    }


def closeness_error(
    approx: Dict[VertexId, float], exact: Dict[VertexId, float]
) -> Dict[str, float]:
    """MAE / max error between two closeness maps (shared keys)."""
    keys = sorted(set(approx) & set(exact))
    if not keys:
        return {"mae": 0.0, "max": 0.0}
    a = np.array([approx[k] for k in keys])
    e = np.array([exact[k] for k in keys])
    d = np.abs(a - e)
    return {"mae": float(d.mean()), "max": float(d.max())}


def rank_correlation(
    approx: Dict[VertexId, float], exact: Dict[VertexId, float]
) -> float:
    """Spearman rank correlation of two centrality maps (shared keys)."""
    keys = sorted(set(approx) & set(exact))
    n = len(keys)
    if n < 2:
        return 1.0
    a = np.array([approx[k] for k in keys])
    e = np.array([exact[k] for k in keys])

    def _ranks(x: np.ndarray) -> np.ndarray:
        order = np.argsort(x)
        ranks = np.empty(n, dtype=np.float64)
        ranks[order] = np.arange(n, dtype=np.float64)
        # average ranks over ties for a proper Spearman
        for val in np.unique(x):
            mask = x == val
            if mask.sum() > 1:
                ranks[mask] = ranks[mask].mean()
        return ranks

    ra, re = _ranks(a), _ranks(e)
    sa, se = ra.std(), re.std()
    if sa == 0.0 or se == 0.0:
        return 1.0 if (sa == se) else 0.0
    return float(np.corrcoef(ra, re)[0, 1])


def top_k_overlap(
    approx: Dict[VertexId, float], exact: Dict[VertexId, float], k: int
) -> float:
    """|top-k(approx) ∩ top-k(exact)| / k — headline-actor agreement."""
    if k <= 0:
        raise ValueError("k must be positive")
    def top(d: Dict[VertexId, float]) -> Set[VertexId]:
        return {
            v for v, _ in sorted(d.items(), key=lambda t: (-t[1], t[0]))[:k]
        }

    return len(top(approx) & top(exact)) / k
