"""Closeness centrality from distance data.

The paper's definition (§IV): ``C(v) = 1 / sum_u d(v, u)`` — the inverse of
the sum of shortest-path distances from ``v`` to all other vertices.  For
graphs that are not (yet) fully explored or are disconnected, the sum is
taken over *reachable* vertices only, with an optional Wasserman–Faust
correction that scales by the fraction of the graph reached (making values
comparable across components).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..types import VertexId

__all__ = ["closeness_from_matrix", "closeness_from_row", "rank_vertices"]


def closeness_from_row(
    row: np.ndarray, *, self_col: Optional[int] = None, wf_improved: bool = False
) -> float:
    """Closeness of one vertex from its distance row.

    Parameters
    ----------
    row: distances to every vertex; ``inf`` marks unreachable.
    self_col: index of the vertex itself (excluded from the sum); if None,
        zeros are assumed to be only the self-distance.
    wf_improved: apply the Wasserman–Faust scaling ``(r-1)/(n-1)`` where
        ``r`` is the number of reached vertices.
    """
    n = row.size
    if n <= 1:
        return 0.0
    finite = np.isfinite(row)
    if self_col is not None:
        finite = finite.copy()
        finite[self_col] = False
    total = float(row[finite].sum())
    reached = int(finite.sum())
    if self_col is None:
        # the self entry is 0 and contributes nothing; discount it from r
        reached -= int(np.count_nonzero(row == 0.0) >= 1)
    if total <= 0.0 or reached <= 0:
        return 0.0
    c = reached / total if wf_improved else 1.0 / total
    if wf_improved:
        c *= reached / (n - 1)
    return c


def closeness_from_matrix(
    dist: np.ndarray,
    ids: Sequence[VertexId],
    *,
    wf_improved: bool = False,
) -> Dict[VertexId, float]:
    """Closeness for every vertex of a full distance matrix.

    ``dist[i, j]`` is the distance from ``ids[i]`` to ``ids[j]``.
    """
    n = len(ids)
    if dist.shape != (n, n):
        raise ValueError(f"distance matrix {dist.shape} does not match {n} ids")
    out: Dict[VertexId, float] = {}
    for i, v in enumerate(ids):
        out[v] = closeness_from_row(dist[i], self_col=i, wf_improved=wf_improved)
    return out


def rank_vertices(closeness: Dict[VertexId, float]) -> List[VertexId]:
    """Vertices sorted by decreasing closeness (ties by id)."""
    return [v for v, _c in sorted(closeness.items(), key=lambda t: (-t[1], t[0]))]
