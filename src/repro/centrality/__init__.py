"""Centrality measures, exact references, and solution-quality metrics."""

from .betweenness import approximate_betweenness, exact_betweenness
from .closeness import closeness_from_matrix, closeness_from_row, rank_vertices
from .error import (
    closeness_error,
    distance_error,
    rank_correlation,
    top_k_overlap,
)
from .landmarks import landmark_closeness, top_k_closeness
from .measures import (
    degree_centrality,
    eccentricity_from_matrix,
    eccentricity_from_row,
    exact_eccentricity,
    exact_harmonic,
    harmonic_from_matrix,
    harmonic_from_row,
    radius_diameter,
)
from .exact import (
    apsp_dijkstra,
    apsp_floyd_warshall,
    exact_closeness,
    sssp_dijkstra,
)

__all__ = [
    "closeness_from_matrix",
    "closeness_from_row",
    "rank_vertices",
    "apsp_dijkstra",
    "apsp_floyd_warshall",
    "exact_closeness",
    "sssp_dijkstra",
    "harmonic_from_row",
    "harmonic_from_matrix",
    "exact_harmonic",
    "eccentricity_from_row",
    "eccentricity_from_matrix",
    "exact_eccentricity",
    "radius_diameter",
    "degree_centrality",
    "exact_betweenness",
    "approximate_betweenness",
    "landmark_closeness",
    "top_k_closeness",
    "distance_error",
    "closeness_error",
    "rank_correlation",
    "top_k_overlap",
]
