"""Landmark (pivot) approximate closeness and top-k ranking.

The paper cites Okamoto, Chen & Li, "Ranking of closeness centrality for
large-scale social networks" (ref [22]): estimate every vertex's average
distance from a sample of landmark BFS/Dijkstra trees, then extract the
exact top-k by re-evaluating only a candidate set slightly larger than k.

* :func:`landmark_closeness` — the estimator: ``Ĉ(v) = 1 / (n-1) /
  avg_landmark d(v, l)`` scaled to the paper's ``1/Σd`` convention; an
  unbiased estimate of the true average distance with error
  O(sqrt(log n / #landmarks)) (Eppstein–Wang).
* :func:`top_k_closeness` — Okamoto-style hybrid: rank by the estimate,
  compute exact closeness for the top ``k + padding`` candidates, return
  the exact top-k.

These are single-machine references complementing the distributed
pipeline: at the paper's "large and dynamic" scale, estimation is what a
practitioner runs between exact anytime refreshes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse.csgraph as csgraph

from ..errors import ConfigurationError
from ..graph.graph import Graph
from ..types import VertexId
from .closeness import closeness_from_row

__all__ = ["landmark_closeness", "top_k_closeness"]


def landmark_closeness(
    graph: Graph,
    n_landmarks: int,
    *,
    seed: Optional[int] = None,
) -> Dict[VertexId, float]:
    """Estimate closeness from ``n_landmarks`` sampled shortest-path trees.

    Each landmark contributes one Dijkstra; per vertex the average distance
    to the (reachable) landmarks estimates its average distance to the
    whole graph, giving ``Ĉ(v) = 1 / (avg_dist * (n - 1))`` rescaled to the
    paper's ``1/Σd`` convention.  Unreachable vertices get 0.
    """
    if n_landmarks < 1:
        raise ConfigurationError("n_landmarks must be >= 1")
    view = graph.to_csr()
    n = len(view)
    if n == 0:
        return {}
    rng = np.random.default_rng(seed)
    k = min(n_landmarks, n)
    pivots = rng.choice(n, size=k, replace=False)
    dist = csgraph.dijkstra(view.matrix, directed=False, indices=pivots)
    # dist[i, j] = d(pivot_i, vertex_j); undirected => d(vertex, pivot)
    finite = np.isfinite(dist)
    counts = finite.sum(axis=0)
    sums = np.where(finite, dist, 0.0).sum(axis=0)
    # a vertex that is itself a pivot sees its own 0-distance entry; drop
    # it from the average (it is not a distance to "another" vertex)
    pivot_set = set(int(p) for p in pivots)
    out: Dict[VertexId, float] = {}
    for j, v in enumerate(view.order):
        c = int(counts[j])
        if j in pivot_set:
            c -= 1
        if c <= 0:
            out[v] = 0.0
            continue
        avg = sums[j] / c
        if avg <= 0.0:
            out[v] = 0.0
            continue
        # estimate of sum over all n-1 others = avg * (n - 1)
        out[v] = 1.0 / (avg * (n - 1))
    return out


def top_k_closeness(
    graph: Graph,
    k: int,
    *,
    n_landmarks: Optional[int] = None,
    padding_factor: float = 2.0,
    seed: Optional[int] = None,
) -> List[Tuple[VertexId, float]]:
    """Exact top-k closeness via landmark pre-ranking (Okamoto-style).

    1. estimate all vertices with :func:`landmark_closeness`,
    2. take the best ``ceil(k * padding_factor) + n_landmarks`` candidates,
    3. compute their *exact* closeness (one Dijkstra per candidate),
    4. return the exact top-k as ``[(vertex, closeness), ...]``.

    With enough padding the result equals the exact top-k at a fraction of
    the full APSP cost (the quality/padding tradeoff is benchmarked in
    ``benchmarks/bench_landmarks.py``).
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    if padding_factor < 1.0:
        raise ConfigurationError("padding_factor must be >= 1")
    view = graph.to_csr()
    n = len(view)
    if n == 0:
        return []
    if n_landmarks is None:
        n_landmarks = max(int(math.sqrt(n)), 4)
    estimates = landmark_closeness(graph, n_landmarks, seed=seed)
    n_candidates = min(int(math.ceil(k * padding_factor)) + n_landmarks, n)
    candidates = sorted(estimates, key=lambda v: (-estimates[v], v))[
        :n_candidates
    ]
    idx = [view.index[v] for v in candidates]
    dist = csgraph.dijkstra(view.matrix, directed=False, indices=idx)
    exact: Dict[VertexId, float] = {}
    for row, v in zip(dist, candidates):
        exact[v] = closeness_from_row(row, self_col=view.index[v])
    ranked = sorted(exact.items(), key=lambda t: (-t[1], t[0]))
    return ranked[:k]
