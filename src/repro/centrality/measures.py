"""Additional SNA measures derived from the distance-vector substrate.

The anytime-anywhere framework was built as a general SNA engine (the
paper's §I cites companion work on other centrality measures).  Everything
that is a function of per-source distance rows comes for free from the
same DVs the closeness pipeline maintains — and inherits the anytime
property (each measure computed from upper-bound rows converges
monotonically):

* **harmonic centrality** — ``sum_u 1/d(v,u)``; robust to disconnection,
* **eccentricity** — ``max_u d(v,u)`` over reached vertices (and the
  graph-level **radius** / **diameter**),
* **degree centrality** — structural, straight from the graph.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..graph.graph import Graph
from ..types import VertexId
from .exact import apsp_dijkstra

__all__ = [
    "harmonic_from_row",
    "harmonic_from_matrix",
    "exact_harmonic",
    "eccentricity_from_row",
    "eccentricity_from_matrix",
    "exact_eccentricity",
    "radius_diameter",
    "degree_centrality",
]


def harmonic_from_row(row: np.ndarray, *, self_col: Optional[int] = None) -> float:
    """Harmonic centrality of one vertex from its distance row."""
    mask = np.isfinite(row) & (row > 0.0)
    if self_col is not None:
        mask = mask.copy()
        mask[self_col] = False
    vals = row[mask]
    if vals.size == 0:
        return 0.0
    return float(np.sum(1.0 / vals))


def harmonic_from_matrix(
    dist: np.ndarray, ids: Sequence[VertexId]
) -> Dict[VertexId, float]:
    n = len(ids)
    if dist.shape != (n, n):
        raise ValueError(f"distance matrix {dist.shape} does not match {n} ids")
    return {
        v: harmonic_from_row(dist[i], self_col=i) for i, v in enumerate(ids)
    }


def exact_harmonic(graph: Graph) -> Dict[VertexId, float]:
    """Ground-truth harmonic centrality."""
    dist, ids = apsp_dijkstra(graph)
    return harmonic_from_matrix(dist, ids)


def eccentricity_from_row(
    row: np.ndarray, *, self_col: Optional[int] = None
) -> float:
    """Eccentricity over *reached* vertices; 0.0 for an isolated vertex."""
    finite = np.isfinite(row)
    if self_col is not None:
        finite = finite.copy()
        finite[self_col] = False
    vals = row[finite]
    if vals.size == 0:
        return 0.0
    return float(vals.max())


def eccentricity_from_matrix(
    dist: np.ndarray, ids: Sequence[VertexId]
) -> Dict[VertexId, float]:
    n = len(ids)
    if dist.shape != (n, n):
        raise ValueError(f"distance matrix {dist.shape} does not match {n} ids")
    return {
        v: eccentricity_from_row(dist[i], self_col=i)
        for i, v in enumerate(ids)
    }


def exact_eccentricity(graph: Graph) -> Dict[VertexId, float]:
    dist, ids = apsp_dijkstra(graph)
    return eccentricity_from_matrix(dist, ids)


def radius_diameter(ecc: Dict[VertexId, float]) -> Tuple[float, float]:
    """Graph radius and diameter from an eccentricity map."""
    if not ecc:
        return 0.0, 0.0
    vals = [e for e in ecc.values() if e > 0.0]
    if not vals:
        return 0.0, 0.0
    return float(min(vals)), float(max(vals))


def degree_centrality(graph: Graph) -> Dict[VertexId, float]:
    """Degree centrality ``deg(v) / (n - 1)`` (1.0 for n <= 1 vertices)."""
    n = graph.num_vertices
    if n <= 1:
        return {v: 0.0 for v in graph.vertices()}
    return {v: graph.degree(v) / (n - 1) for v in graph.vertices()}
