"""Exact single-machine reference algorithms.

These are the ground truth the distributed anytime-anywhere results are
validated against, and the engine of the Baseline-Restart comparison's
correctness checks: Dijkstra-based APSP (SciPy CSR) and a pure-NumPy
Floyd–Warshall.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse.csgraph as csgraph

from ..graph.graph import Graph
from ..types import VertexId
from .closeness import closeness_from_matrix

__all__ = [
    "apsp_dijkstra",
    "apsp_floyd_warshall",
    "exact_closeness",
    "sssp_dijkstra",
]


def apsp_dijkstra(
    graph: Graph, order: Optional[Sequence[VertexId]] = None
) -> Tuple[np.ndarray, List[VertexId]]:
    """All-pairs shortest paths via per-source Dijkstra (SciPy).

    Returns ``(dist, ids)`` with ``dist[i, j] = d(ids[i], ids[j])``.
    """
    view = graph.to_csr(order)
    if len(view) == 0:
        return np.zeros((0, 0)), []
    dist = csgraph.dijkstra(view.matrix, directed=False)
    return dist, list(view.order)


def apsp_floyd_warshall(
    graph: Graph, order: Optional[Sequence[VertexId]] = None
) -> Tuple[np.ndarray, List[VertexId]]:
    """All-pairs shortest paths via vectorized Floyd–Warshall.

    O(n^3) — used as an independent cross-check of :func:`apsp_dijkstra`
    in tests, and for small graphs.
    """
    view = graph.to_csr(order)
    n = len(view)
    if n == 0:
        return np.zeros((0, 0)), []
    dist = np.full((n, n), np.inf, dtype=np.float64)
    m = view.matrix.tocoo()
    dist[m.row, m.col] = np.minimum(dist[m.row, m.col], m.data)
    np.fill_diagonal(dist, 0.0)
    for k in range(n):
        np.minimum(dist, dist[:, k][:, None] + dist[k][None, :], out=dist)
    return dist, list(view.order)


def sssp_dijkstra(graph: Graph, source: VertexId) -> Dict[VertexId, float]:
    """Single-source shortest paths from ``source`` (reference)."""
    view = graph.to_csr()
    idx = view.index[source]
    dist = csgraph.dijkstra(view.matrix, directed=False, indices=idx)
    return {v: float(dist[i]) for i, v in enumerate(view.order)}


def exact_closeness(
    graph: Graph, *, wf_improved: bool = False
) -> Dict[VertexId, float]:
    """Ground-truth closeness centrality of every vertex."""
    dist, ids = apsp_dijkstra(graph)
    return closeness_from_matrix(dist, ids, wf_improved=wf_improved)
