"""Render an exported JSONL trace into a human-readable run report.

Backs the ``repro report`` CLI subcommand: load a ``jsonl:PATH`` export
(written during a run) and summarize where modeled time went per phase,
how the convergence probes evolved per superstep, and the final metrics
registry — without rerunning anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = ["TraceReport", "load_events", "render_report"]


def load_events(path: str) -> List[Dict[str, Any]]:
    """Load one event dict per non-empty line of a JSONL export."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class TraceReport:
    """Aggregated view of one run's event stream."""

    #: per-phase rows: name, count, modeled seconds, span of steps
    phases: List[Dict[str, Any]] = field(default_factory=list)
    #: per-superstep probe samples: step, then probe attrs
    convergence: List[Dict[str, Any]] = field(default_factory=list)
    #: final metric series -> value (from ``metric`` flush events)
    metrics: Dict[str, float] = field(default_factory=dict)
    #: run-level end attrs (modeled seconds, converged, ...)
    run: Dict[str, Any] = field(default_factory=dict)
    #: SLO alert transitions, in emission order (``alert`` events)
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    #: spans left open by an aborted run (truncated at the last event)
    truncated_spans: int = 0


def _aggregate(events: List[Dict[str, Any]]) -> TraceReport:
    report = TraceReport()
    # phase/superstep spans: pair begins with ends by (level, name) stack
    open_spans: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    phase_agg: Dict[str, Dict[str, Any]] = {}
    phase_order: List[str] = []
    last_t = 0.0
    for ev in events:
        kind, level = ev.get("kind"), ev.get("level")
        key = (str(level), str(ev.get("name")))
        t = ev.get("t")
        if isinstance(t, (int, float)):
            last_t = max(last_t, float(t))
        if kind == "begin":
            open_spans.setdefault(key, []).append(ev)
        elif kind == "end":
            stack = open_spans.get(key)
            begin = stack.pop() if stack else None
            if level == "run":
                report.run = dict(ev.get("attrs") or {})
                report.run["modeled_seconds"] = ev.get("t")
            elif level in ("phase", "superstep"):
                name = str(ev.get("name"))
                agg = phase_agg.get(name)
                if agg is None:
                    agg = phase_agg[name] = {
                        "phase": name,
                        "count": 0,
                        "modeled_seconds": 0.0,
                    }
                    phase_order.append(name)
                agg["count"] += 1
                if begin is not None:
                    agg["modeled_seconds"] += float(ev["t"]) - float(
                        begin["t"]
                    )
                for k, v in (ev.get("attrs") or {}).items():
                    if isinstance(v, (int, float)) and not isinstance(
                        v, bool
                    ):
                        agg[k] = agg.get(k, 0.0) + v
        elif kind == "point" and level == "superstep":
            row: Dict[str, Any] = {"step": ev.get("step")}
            row.update(ev.get("attrs") or {})
            report.convergence.append(row)
        elif kind == "metric":
            value = (ev.get("attrs") or {}).get("value")
            if isinstance(value, (int, float)):
                report.metrics[str(ev.get("name"))] = float(value)
        elif kind == "alert":
            row = {"slo": ev.get("name"), "tick": ev.get("step")}
            row.update(ev.get("attrs") or {})
            report.alerts.append(row)
    # spans left open by an aborted run: truncate at the last timestamp
    # so mid-phase aborts still render a useful report
    for (level, name), stack in sorted(open_spans.items()):
        for begin in stack:
            report.truncated_spans += 1
            if level == "run":
                report.run.setdefault("aborted", True)
                report.run.setdefault("modeled_seconds", last_t)
                continue
            if level not in ("phase", "superstep"):
                continue
            agg = phase_agg.get(name)
            if agg is None:
                agg = phase_agg[name] = {
                    "phase": name,
                    "count": 0,
                    "modeled_seconds": 0.0,
                }
                phase_order.append(name)
            agg["count"] += 1
            begin_t = begin.get("t")
            if isinstance(begin_t, (int, float)):
                agg["modeled_seconds"] += max(0.0, last_t - float(begin_t))
            agg["truncated"] = agg.get("truncated", 0.0) + 1
    report.phases = [phase_agg[name] for name in phase_order]
    return report


def render_report(events: List[Dict[str, Any]]) -> str:
    """Render the per-phase + convergence + metrics summary as text."""
    # deferred: repro.bench imports the engine, which imports repro.obs
    from ..bench.reporting import format_table

    report = _aggregate(events)
    sections: List[str] = []

    if not events:
        sections.append("(empty trace: no events)")

    if report.run:
        pairs = ", ".join(
            f"{k}={v}" for k, v in sorted(report.run.items())
        )
        sections.append(f"run: {pairs}")
    if report.truncated_spans:
        sections.append(
            f"warning: {report.truncated_spans} span(s) never closed"
            " (run aborted mid-phase); durations are truncated at the"
            " last event"
        )

    sections.append("phases (modeled time by span):")
    if report.phases:
        cols = ["phase", "count", "modeled_seconds"]
        extra = sorted(
            {
                k
                for row in report.phases
                for k in row
                if k not in cols
            }
        )
        sections.append(format_table(report.phases, cols + extra))
    else:
        sections.append("(no phase spans in trace)")

    sections.append("")
    sections.append("convergence (per-superstep probes):")
    if report.convergence:
        cols = ["step"] + sorted(
            {k for row in report.convergence for k in row if k != "step"}
        )
        sections.append(format_table(report.convergence, cols))
    else:
        sections.append("(no convergence probe samples in trace)")

    if report.alerts:
        sections.append("")
        sections.append("slo alerts (state transitions):")
        cols = ["slo", "tick"] + sorted(
            {
                k
                for row in report.alerts
                for k in row
                if k not in ("slo", "tick")
            }
        )
        sections.append(format_table(report.alerts, cols))
        firing = sum(
            1 for row in report.alerts if row.get("state") == "firing"
        )
        sections.append(
            f"({firing} firing / {len(report.alerts) - firing} resolved)"
        )

    if report.metrics:
        sections.append("")
        sections.append("final metrics:")
        rows = [
            {"series": k, "value": v}
            for k, v in sorted(report.metrics.items())
        ]
        sections.append(format_table(rows, ["series", "value"]))

    return "\n".join(sections) + "\n"
