"""Observers and the hub that fans events out to them.

An :class:`Observer` consumes :class:`~repro.obs.events.SpanEvent`
records (exporters are observers); the :class:`ObserverHub` owns the
observer list, the shared :class:`~repro.obs.registry.MetricsRegistry`,
the per-run event sequence counter, and any attached convergence probes.

Zero-cost-when-off: instrumented call sites guard on ``hub.enabled``
(one attribute read and a branch) and the default hub has no observers,
so an unobserved run executes no observability code beyond the guards —
the overhead benchmark pins this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .events import AttrValue, SpanEvent
from .registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.cluster import Cluster
    from .convergence import ConvergenceProbe

__all__ = ["NULL_HUB", "NullObserver", "Observer", "ObserverHub"]


class Observer:
    """Base class for event consumers (exporters, test collectors)."""

    def on_event(self, event: SpanEvent) -> None:
        """Consume one event; must not mutate any algorithm state."""

    def close(self, registry: MetricsRegistry) -> None:
        """Flush/finalize, with the final metrics registry for dumps."""


class NullObserver(Observer):
    """Discards events.

    Listing it still *enables* instrumentation (spans are walked, the
    metrics registry fills), which is how ``observers=("metrics",)``
    turns on in-memory telemetry without writing any file.
    """


class ObserverHub:
    """Event fan-out + metrics registry + probe list for one engine."""

    def __init__(
        self,
        observers: Sequence[Observer] = (),
        probes: Sequence["ConvergenceProbe"] = (),
    ) -> None:
        self.observers: List[Observer] = list(observers)
        self.probes: List["ConvergenceProbe"] = list(probes)
        self.registry = MetricsRegistry()
        #: last sample of each probe, keyed by probe name (the anytime
        #: "quantified quality statement" attached to interrupted runs)
        self.last_samples: Dict[str, Dict[str, float]] = {}
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when any observer or probe is attached."""
        return bool(self.observers) or bool(self.probes)

    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        level: str,
        name: str,
        t: float,
        *,
        step: Optional[int] = None,
        rank: Optional[int] = None,
        attrs: Optional[Dict[str, AttrValue]] = None,
        wall: Optional[float] = None,
    ) -> None:
        if not self.observers:
            return
        event = SpanEvent(
            seq=self._seq,
            kind=kind,
            level=level,
            name=name,
            t=t,
            step=step,
            rank=rank,
            attrs=attrs or {},
            wall=wall,
        )
        self._seq += 1
        for obs in self.observers:
            obs.on_event(event)

    def span_begin(
        self,
        level: str,
        name: str,
        t: float,
        *,
        step: Optional[int] = None,
        rank: Optional[int] = None,
    ) -> None:
        self.emit("begin", level, name, t, step=step, rank=rank)

    def span_end(
        self,
        level: str,
        name: str,
        t: float,
        *,
        step: Optional[int] = None,
        rank: Optional[int] = None,
        attrs: Optional[Dict[str, AttrValue]] = None,
        wall: Optional[float] = None,
    ) -> None:
        self.emit(
            "end", level, name, t, step=step, rank=rank, attrs=attrs,
            wall=wall,
        )

    def point(
        self,
        level: str,
        name: str,
        t: float,
        *,
        step: Optional[int] = None,
        rank: Optional[int] = None,
        attrs: Optional[Dict[str, AttrValue]] = None,
    ) -> None:
        self.emit("point", level, name, t, step=step, rank=rank, attrs=attrs)

    # ------------------------------------------------------------------
    def sample_probes(self, cluster: "Cluster", step: int) -> None:
        """Run every attached quality probe after one completed superstep."""
        for probe in self.probes:
            attrs = probe.sample(cluster, step)
            self.last_samples[probe.name] = dict(attrs)
            for key, value in attrs.items():
                self.registry.gauge(f"repro_{probe.name}_{key}", value)
            self.point(
                "superstep",
                probe.name,
                cluster.tracer.now(),
                step=step,
                attrs=dict(attrs),
            )

    # ------------------------------------------------------------------
    def sample_counters(
        self, names: Sequence[str], t: float, *, step: Optional[int] = None
    ) -> None:
        """Emit one ``metric`` event per current series of ``names``.

        Called once per superstep with the well-known gauge names so the
        Perfetto exporter renders them as counter *tracks* (time-series
        lanes) rather than only a final flush-time value.
        """
        if not self.observers:
            return
        for name in names:
            for key, value in self.registry.series_values(name).items():
                self.emit(
                    "metric", "metrics", key, t, step=step,
                    attrs={"value": value},
                )

    # ------------------------------------------------------------------
    def flush_metrics(self, t: float) -> None:
        """Emit one ``metric`` event per registry series (JSONL dumps)."""
        if not self.observers:
            return
        for key, value in self.registry.snapshot().items():
            self.emit(
                "metric", "metrics", key, t, attrs={"value": value}
            )

    def close(self, t: Optional[float] = None) -> None:
        """Close every observer exactly once (flushes exporter files).

        Pass the final modeled clock as ``t`` to dump the metrics
        registry as ``metric`` events before the exporters close.
        """
        if self._closed:
            return
        self._closed = True
        if t is not None:
            self.flush_metrics(t)
        for obs in self.observers:
            obs.close(self.registry)


#: the shared disabled hub — default for unobserved clusters/tracers
NULL_HUB = ObserverHub()
