"""The metrics registry: typed counters, gauges, and histograms.

A registry is a flat map of *series* — a metric name plus a sorted label
set — to float values, updated in place by the cluster and its workers.
The process backend needs no extra plumbing: worker compute charges and
message counters are replayed coordinator-side by the ``*_apply`` merge
(in rank order), so every registry update happens in the coordinating
process under both backends and the aggregated values are identical.

Well-known series (the names the exporters, the report renderer, and the
benchmarks agree on) are module constants; ad-hoc series are fine too.

Determinism: values derive only from modeled quantities (words, rows,
modeled seconds, imbalance ratios) — never from the host clock — so the
rendered dump is byte-identical across runs and backends.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ACTIVE_WORKERS",
    "BOUNDARY_ROWS",
    "BOUNDARY_WORDS",
    "DELTA_HIT_RATE",
    "FAULTS",
    "BACKOFF_SECONDS",
    "GRAPH_VERTICES",
    "HEALTH_STATE",
    "LOAD_CUT_IMBALANCE",
    "LOAD_VERTEX_IMBALANCE",
    "MISSED_DEADLINES",
    "PENDING_ROWS",
    "RANK_COMPUTE_SECONDS",
    "RETRIES",
    "SLO_VIOLATIONS",
    "SPECULATIONS",
    "UNACKED_ROWS",
    "WIRE_WORDS",
    "COUNTER_TRACK_SERIES",
    "Histogram",
    "MetricsRegistry",
    "SignalView",
]

# --- well-known series ------------------------------------------------
#: total words charged to the modeled wire (counter)
WIRE_WORDS = "repro_wire_words_total"
#: boundary-exchange payload words, labeled by wire format (counter)
BOUNDARY_WORDS = "repro_boundary_words_total"
#: boundary rows shipped, labeled ``encoding=dense|sparse`` (counter)
BOUNDARY_ROWS = "repro_boundary_rows_total"
#: fraction of boundary rows that went out as sparse deltas (gauge)
DELTA_HIT_RATE = "repro_delta_hit_rate"
#: DV rows queued for exchange, labeled by rank (gauge)
PENDING_ROWS = "repro_pending_rows"
#: DV rows in flight awaiting acknowledgement, labeled by rank (gauge)
UNACKED_ROWS = "repro_unacked_rows"
#: packet retransmissions forced by chaos losses/failures (counter)
RETRIES = "repro_retries_total"
#: injected fault events (counter)
FAULTS = "repro_faults_total"
#: per-worker vertex-count imbalance, max/mean - 1 (gauge, §IV.C.1.a)
LOAD_VERTEX_IMBALANCE = "repro_load_vertex_imbalance"
#: per-worker cut-degree imbalance, max/mean - 1 (gauge, §IV.C.1.a)
LOAD_CUT_IMBALANCE = "repro_load_cut_imbalance"
#: workers owning at least one vertex (gauge)
ACTIVE_WORKERS = "repro_active_workers"
#: modeled seconds of one rank's kernel in one superstep (histogram)
RANK_COMPUTE_SECONDS = "repro_rank_compute_modeled_seconds"
#: liveness state per rank: 0=healthy 1=suspect 2=degraded 3=dead (gauge)
HEALTH_STATE = "repro_rank_health_state"
#: superstep deadlines missed by straggling ranks (counter)
MISSED_DEADLINES = "repro_missed_deadlines_total"
#: speculative kernel re-executions that beat the straggler (counter)
SPECULATIONS = "repro_speculations_total"
#: modeled seconds of exponential retry backoff (counter)
BACKOFF_SECONDS = "repro_backoff_modeled_seconds_total"
#: vertices currently in the analyzed graph (gauge)
GRAPH_VERTICES = "repro_graph_vertices"
#: SLO alerts fired by the serve-loop evaluator, labeled by slo (counter)
SLO_VIOLATIONS = "repro_slo_violations_total"

#: gauges sampled every superstep as Perfetto counter tracks — real
#: time-series lanes in the trace viewer, not just span annotations
COUNTER_TRACK_SERIES = (
    LOAD_VERTEX_IMBALANCE,
    LOAD_CUT_IMBALANCE,
    ACTIVE_WORKERS,
    DELTA_HIT_RATE,
    PENDING_ROWS,
    UNACKED_ROWS,
    GRAPH_VERTICES,
)

#: default histogram bucket upper bounds (modeled seconds, log-spaced)
_DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)

Labels = Tuple[Tuple[str, str], ...]


def _series_key(name: str, labels: Labels) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def _labels(items: Dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in items.items()))


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus-style)."""

    def __init__(self, buckets: Sequence[float] = _DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # +inf last
        self.total = 0.0
        self.n = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.n += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, count)`` pairs with cumulative counts, +Inf last."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((repr(bound), running))
        out.append(("+Inf", running + self.counts[-1]))
        return out


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by name + sorted labels."""

    def __init__(self) -> None:
        #: metric base name -> "counter" | "gauge" | "histogram"
        self._types: Dict[str, str] = {}
        #: full series key -> current value (counters and gauges)
        self._values: Dict[str, float] = {}
        #: base name -> label set -> value (structured view of _values)
        self._labeled: Dict[str, Dict[Labels, float]] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _declare(self, name: str, kind: str) -> None:
        existing = self._types.setdefault(name, kind)
        if existing != kind:
            raise ValueError(
                f"metric {name!r} already declared as {existing}, not {kind}"
            )

    def _set(self, name: str, labels: Labels, value: float) -> None:
        self._values[_series_key(name, labels)] = value
        self._labeled.setdefault(name, {})[labels] = value

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` to a counter series."""
        self._declare(name, "counter")
        lab = _labels(labels)
        key = _series_key(name, lab)
        self._set(name, lab, self._values.get(key, 0.0) + amount)

    def counter_set(self, name: str, total: float, **labels: str) -> None:
        """Set a counter series to a known cumulative total.

        The cluster keeps its own monotone totals (wire words, boundary
        rows); sampling copies them in rather than re-deriving deltas.
        """
        self._declare(name, "counter")
        self._set(name, _labels(labels), total)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge series to its current value."""
        self._declare(name, "gauge")
        self._set(name, _labels(labels), value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into a histogram series."""
        self._declare(name, "histogram")
        key = _series_key(name, _labels(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------------
    def type_of(self, name: str) -> Optional[str]:
        return self._types.get(name)

    def value(self, name: str, **labels: str) -> Optional[float]:
        return self._values.get(_series_key(name, _labels(labels)))

    def labeled_values(self, name: str) -> Dict[Labels, float]:
        """Every series of a metric, keyed by its sorted label tuple."""
        return dict(sorted(self._labeled.get(name, {}).items()))

    def series_values(self, name: str) -> Dict[str, float]:
        """Every series of a metric, keyed by its full series key."""
        return {
            _series_key(name, labels): value
            for labels, value in sorted(self._labeled.get(name, {}).items())
        }

    def snapshot(self) -> Dict[str, float]:
        """All scalar series (counters + gauges), sorted by key."""
        out = dict(sorted(self._values.items()))
        for key, hist in sorted(self._histograms.items()):
            out[f"{key}_count"] = float(hist.n)
            out[f"{key}_sum"] = hist.total
        return out

    def render_prometheus(self) -> str:
        """Prometheus text-exposition dump of every series."""
        lines: List[str] = []
        by_name: Dict[str, List[str]] = {}
        for key in self._values:
            base = key.split("{", 1)[0]
            by_name.setdefault(base, []).append(key)
        for base in sorted(by_name):
            lines.append(f"# TYPE {base} {self._types[base]}")
            for key in sorted(by_name[base]):
                lines.append(f"{key} {self._values[key]:.17g}")
        hist_names = sorted(
            {key.split("{", 1)[0] for key in self._histograms}
        )
        for base in hist_names:
            lines.append(f"# TYPE {base} histogram")
            for key in sorted(self._histograms):
                if key.split("{", 1)[0] != base:
                    continue
                hist = self._histograms[key]
                name, brace, rest = key.partition("{")
                for le, count in hist.cumulative():
                    if brace:
                        labeled = f'{name}_bucket{{{rest[:-1]},le="{le}"}}'
                    else:
                        labeled = f'{name}_bucket{{le="{le}"}}'
                    lines.append(f"{labeled} {count}")
                lines.append(f"{name}_sum{brace}{rest} {hist.total:.17g}")
                lines.append(f"{name}_count{brace}{rest} {hist.n}")
        return "\n".join(lines) + ("\n" if lines else "")


class SignalView:
    """Read-only window over a metrics registry (plus probe samples).

    Strategy policies choose the next dynamic strategy from live run
    signals; handing them the registry itself would let a buggy policy
    perturb the run it is steering.  A ``SignalView`` exposes only
    lookups — the well-known load/wire/queue gauges as properties, and
    the latest convergence-probe sample — so policies stay pure readers
    and the non-perturbation invariant (observers on/off never changes
    results) extends to policy-driven runs.

    All values derive from modeled quantities, so two runs of the same
    seeded scenario see byte-identical signals and therefore make
    byte-identical policy decisions.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        samples: Optional[Mapping[str, Mapping[str, float]]] = None,
    ) -> None:
        self._registry = registry
        self._samples: Dict[str, Dict[str, float]] = {
            name: dict(sample)
            for name, sample in (samples or {}).items()
        }

    # -- generic lookups ----------------------------------------------
    def get(self, name: str, default: float = 0.0, **labels: str) -> float:
        """Current value of one series, or ``default`` if never set."""
        value = self._registry.value(name, **labels)
        return default if value is None else value

    def per_rank(self, name: str) -> Dict[int, float]:
        """All ``rank``-labeled series of a metric, keyed by rank."""
        out: Dict[int, float] = {}
        for labels, value in self._registry.labeled_values(name).items():
            rank = dict(labels).get("rank")
            if rank is not None:
                out[int(rank)] = value
        return out

    def sample(self, probe: str = "convergence") -> Dict[str, float]:
        """Latest sample of a convergence probe (empty if not attached)."""
        return dict(self._samples.get(probe, {}))

    def snapshot(self) -> Dict[str, float]:
        """All scalar series, sorted by key (debugging/reporting aid)."""
        return self._registry.snapshot()

    # -- well-known signals -------------------------------------------
    @property
    def vertex_imbalance(self) -> float:
        """Per-worker vertex-count imbalance, max/mean - 1."""
        return self.get(LOAD_VERTEX_IMBALANCE)

    @property
    def cut_imbalance(self) -> float:
        """Per-worker cut-degree imbalance, max/mean - 1."""
        return self.get(LOAD_CUT_IMBALANCE)

    @property
    def delta_hit_rate(self) -> float:
        """Fraction of boundary rows shipped as sparse deltas."""
        return self.get(DELTA_HIT_RATE)

    @property
    def active_workers(self) -> float:
        """Workers currently owning at least one vertex."""
        return self.get(ACTIVE_WORKERS)

    @property
    def graph_vertices(self) -> float:
        """Vertices currently in the analyzed graph."""
        return self.get(GRAPH_VERTICES)

    @property
    def pending_rows(self) -> float:
        """DV rows queued for exchange, summed over ranks."""
        return sum(self.per_rank(PENDING_ROWS).values())

    @property
    def unacked_rows(self) -> float:
        """DV rows in flight awaiting acknowledgement, summed over ranks."""
        return sum(self.per_rank(UNACKED_ROWS).values())

    @property
    def residual_max(self) -> float:
        """Largest closeness change in the last sampled superstep."""
        return self.sample().get("residual_max", float("inf"))

    @property
    def residual_mean(self) -> float:
        """Mean closeness change in the last sampled superstep."""
        return self.sample().get("residual_mean", float("inf"))

    @property
    def resolved_fraction(self) -> float:
        """Fraction of distance pairs already finite."""
        return self.sample().get("resolved_fraction", 0.0)
