"""Anytime convergence telemetry: per-superstep quality probes.

The paper's anytime claim is only useful if an interrupted run can say
*how good* its answer is.  A :class:`ConvergenceProbe` samples the
cluster after each completed RC superstep and produces a small dict of
deterministic quality figures:

* ``residual_max`` / ``residual_mean`` — change in the closeness
  estimate since the previous superstep (Cauchy-style residual; large
  means still moving, ``0.0`` means the estimate has stabilized),
* ``pending_rows`` / ``unacked_rows`` — DV rows still queued or in
  flight (nonzero means more information is coming),
* ``resolved_fraction`` — fraction of (source, target) distance pairs
  already finite,
* ``oracle_match_fraction`` — fraction of DV entries equal to the
  ground-truth distance, when an oracle is supplied (tests / analysis).

Probes are *pure observation*: they never charge the modeled clock and
never mutate algorithm state, so enabling them cannot change results.
They are also opt-in — the default JSONL observer does not pay the
per-superstep closeness recomputation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from ..centrality.exact import apsp_dijkstra
from ..graph.graph import Graph
from ..types import VertexId

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.cluster import Cluster

__all__ = ["ConvergenceProbe", "DistanceOracle", "exact_distance_oracle"]


class DistanceOracle:
    """Ground-truth shortest-path distances for oracle-based probes."""

    def __init__(self, rows: Dict[VertexId, Dict[VertexId, float]]) -> None:
        self._rows = rows

    def row(self, source: VertexId) -> Optional[Dict[VertexId, float]]:
        return self._rows.get(source)


def exact_distance_oracle(graph: Graph) -> DistanceOracle:
    """Build a :class:`DistanceOracle` from the *final* graph.

    For dynamic scenarios pass the graph **after** all planned vertex
    additions — "final value" means the value at convergence on the end
    state, which is what an anytime run is converging toward.
    """
    dist, ids = apsp_dijkstra(graph)
    rows: Dict[VertexId, Dict[VertexId, float]] = {}
    for i, u in enumerate(ids):
        rows[u] = {v: float(dist[i, j]) for j, v in enumerate(ids)}
    return DistanceOracle(rows)


class ConvergenceProbe:
    """Samples solution quality after each completed RC superstep."""

    name = "convergence"

    def __init__(
        self,
        oracle: Optional[DistanceOracle] = None,
        *,
        wf_improved: bool = False,
    ) -> None:
        self.oracle = oracle
        self.wf_improved = wf_improved
        self._prev: Optional[Dict[VertexId, float]] = None
        #: sample history, one dict per sampled superstep (analysis aid)
        self.history: Dict[int, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    def sample(self, cluster: "Cluster", step: int) -> Dict[str, float]:
        from ..core.snapshots import take_snapshot

        snap = take_snapshot(cluster, step, wf_improved=self.wf_improved)
        closeness = snap.closeness

        residual_max = 0.0
        residual_sum = 0.0
        if self._prev is not None and closeness:
            for v, value in closeness.items():
                prev = self._prev.get(v)
                delta = abs(value - prev) if prev is not None else value
                residual_sum += delta
                if delta > residual_max:
                    residual_max = delta
            residual_mean = residual_sum / len(closeness)
        else:
            # first sample: no previous estimate to compare against
            residual_mean = residual_max = float("inf") if closeness else 0.0
        self._prev = closeness

        pending = sum(w.pending_row_count() for w in cluster.workers)
        unacked = sum(w.unacked_row_count() for w in cluster.workers)

        attrs: Dict[str, float] = {
            "residual_max": residual_max,
            "residual_mean": residual_mean,
            "pending_rows": float(pending),
            "unacked_rows": float(unacked),
            "resolved_fraction": snap.resolved_fraction,
        }
        if self.oracle is not None:
            attrs["oracle_match_fraction"] = self._oracle_match(cluster)
        self.history[step] = dict(attrs)
        return attrs

    # ------------------------------------------------------------------
    def _oracle_match(self, cluster: "Cluster") -> float:
        """Fraction of DV entries already at their ground-truth value."""
        ids = list(cluster.index.ids)
        total = 0
        matched = 0
        for w in cluster.workers:
            for v in w.owned:
                oracle_row = (
                    self.oracle.row(v) if self.oracle is not None else None
                )
                dv = w.dv[w.row_of[v]]
                total += len(ids)
                if oracle_row is None:
                    continue
                truth = np.array(
                    [oracle_row.get(u, np.inf) for u in ids]
                )
                matched += int(
                    np.sum(
                        (dv[: len(ids)] == truth)
                        | (np.isinf(dv[: len(ids)]) & np.isinf(truth))
                    )
                )
        if total == 0:
            return 1.0
        return matched / total
