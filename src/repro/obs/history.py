"""The benchmark regression ledger: normalized append-only history.

``benchmarks/history/`` holds one JSONL file per benchmark; every line
is one :class:`BenchRecord` — a single ``(bench, case, metric)``
measurement.  Bench reports (the ``BENCH_*.json`` blobs the bench
scripts already write) are flattened into records by
:func:`records_from_report`, appended by ``tools/bench_history.py``,
and judged against the committed baseline by ``tools/bench_diff.py``.

Gating: metrics whose name contains a *gated substring* (default
``"modeled"``) are regression-gated — modeled-time figures are
deterministic, so any increase beyond the threshold is a real
performance regression, not noise.  Wall-clock figures ride along as
informational context and are never gated.

Determinism: record identity (bench/case/metric/value/unit/context) is
a pure function of the bench report; the ``created`` stamp is an
annotation added by the tools layer (this module never reads a clock)
and is ignored by comparisons.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "SCHEMA_VERSION",
    "BenchRecord",
    "RecordKey",
    "DiffRow",
    "BenchDiff",
    "append_records",
    "diff_records",
    "latest_by_key",
    "load_records",
    "records_from_report",
    "records_from_rows",
    "render_diff",
]

#: bump when the record field set changes incompatibly
SCHEMA_VERSION = 1

#: (bench, case, metric, sorted context items) — the ledger identity
RecordKey = Tuple[str, str, str, Tuple[Tuple[str, str], ...]]

#: metric-name substrings selecting the regression-gated figures
DEFAULT_GATED_SUBSTRINGS = ("modeled",)

#: relative increase on a gated metric that fails the diff
DEFAULT_THRESHOLD = 0.05

#: list-item keys promoted into the case path when flattening reports
_CASE_KEYS = ("name", "case", "backend", "tier", "strategy", "shape", "label")

#: report keys that are bookkeeping, not measurements
_SKIP_KEYS = frozenset({"bench", "pass", "failures", "schema_version"})


@dataclass(frozen=True)
class BenchRecord:
    """One measurement of one benchmark case."""

    #: benchmark name (``BENCH_<bench>.json`` / history file stem)
    bench: str
    #: case path inside the bench report (dotted; "" for top-level)
    case: str
    #: metric name (the numeric leaf's key)
    metric: str
    value: float
    #: optional unit annotation ("seconds", "ratio", "count", ...)
    unit: str = ""
    #: string context labels (scale, backend, host class, ...)
    context: Mapping[str, str] = field(default_factory=dict)
    #: ISO-8601 stamp added by the tools layer (annotation only)
    created: Optional[str] = None
    schema_version: int = SCHEMA_VERSION

    @property
    def key(self) -> Tuple[str, str, str, Tuple[Tuple[str, str], ...]]:
        """The identity compared across runs.

        Context labels are part of the identity so one ledger can hold
        the same metric at several scales (CI smoke vs full runs)
        without the two overwriting each other.
        """
        return (
            self.bench,
            self.case,
            self.metric,
            tuple(sorted(self.context.items())),
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "bench": self.bench,
            "case": self.case,
            "metric": self.metric,
            "value": self.value,
        }
        if self.unit:
            out["unit"] = self.unit
        if self.context:
            out["context"] = {k: self.context[k] for k in sorted(self.context)}
        if self.created is not None:
            out["created"] = self.created
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_dict(raw: Mapping[str, Any]) -> "BenchRecord":
        return BenchRecord(
            bench=str(raw["bench"]),
            case=str(raw.get("case", "")),
            metric=str(raw["metric"]),
            value=float(raw["value"]),
            unit=str(raw.get("unit", "")),
            context={
                str(k): str(v)
                for k, v in (raw.get("context") or {}).items()
            },
            created=(
                str(raw["created"]) if raw.get("created") is not None
                else None
            ),
            schema_version=int(raw.get("schema_version", SCHEMA_VERSION)),
        )


def _guess_unit(metric: str) -> str:
    lower = metric.lower()
    if "seconds" in lower or lower.endswith("_s"):
        return "seconds"
    if any(tok in lower for tok in ("ratio", "rate", "fraction", "overhead",
                                    "speedup", "share")):
        return "ratio"
    if any(tok in lower for tok in ("words", "rows", "count", "steps",
                                    "ticks", "events", "vertices", "edges")):
        return "count"
    return ""


def _case_segment(item: Mapping[str, Any], index: int) -> str:
    parts = [
        str(item[k]) for k in _CASE_KEYS
        if isinstance(item.get(k), (str, int)) and str(item[k]) != ""
    ]
    return "=".join(parts) if parts else str(index)


def _flatten(
    obj: Any, case: str, out: List[Tuple[str, str, float]]
) -> None:
    """Collect ``(case, metric, value)`` triples from a report node."""
    if isinstance(obj, Mapping):
        for key in sorted(obj):
            if case == "" and key in _SKIP_KEYS:
                continue
            value = obj[key]
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out.append((case, str(key), float(value)))
            elif isinstance(value, (Mapping, list)):
                sub = f"{case}.{key}" if case else str(key)
                _flatten(value, sub, out)
    elif isinstance(obj, list):
        for i, item in enumerate(obj):
            if isinstance(item, Mapping):
                seg = _case_segment(item, i)
                sub = f"{case}[{seg}]" if case else f"[{seg}]"
                _flatten(item, sub, out)


def records_from_report(
    report: Mapping[str, Any],
    *,
    bench: Optional[str] = None,
    context: Optional[Mapping[str, str]] = None,
    created: Optional[str] = None,
) -> List[BenchRecord]:
    """Flatten one ``BENCH_*.json`` report into normalized records.

    Every numeric leaf becomes one record; the dotted path to the leaf
    is the case, with list items labeled by their identifying keys
    (``name`` / ``backend`` / ``tier`` / ...).  Booleans and the
    bookkeeping keys (``bench``/``pass``/``failures``) are skipped.
    """
    name = bench or str(report.get("bench", "unknown"))
    triples: List[Tuple[str, str, float]] = []
    _flatten(report, "", triples)
    ctx: Dict[str, str] = {}
    if "smoke" in report:
        # scale is part of the ledger identity: smoke-scale CI runs and
        # full-scale runs of the same bench never judge each other
        ctx["scale"] = "smoke" if report.get("smoke") else "full"
    ctx.update(context or {})
    return [
        BenchRecord(
            bench=name,
            case=case,
            metric=metric,
            value=value,
            unit=_guess_unit(metric),
            context=ctx,
            created=created,
        )
        for case, metric, value in triples
    ]


def records_from_rows(
    bench: str,
    rows: Iterable[Mapping[str, Any]],
    *,
    context: Optional[Mapping[str, str]] = None,
    created: Optional[str] = None,
) -> List[BenchRecord]:
    """Normalize pytest-bench table rows (list of flat dicts).

    Non-numeric cells of a row form its case label; numeric cells
    become one record each.
    """
    out: List[BenchRecord] = []
    ctx = dict(context or {})
    for i, row in enumerate(rows):
        labels = [
            f"{k}={row[k]}" for k in sorted(row)
            if isinstance(row[k], str) and row[k] != ""
        ]
        case = ",".join(labels) if labels else str(i)
        for key in sorted(row):
            value = row[key]
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            out.append(
                BenchRecord(
                    bench=bench,
                    case=case,
                    metric=str(key),
                    value=float(value),
                    unit=_guess_unit(str(key)),
                    context=ctx,
                    created=created,
                )
            )
    return out


# ----------------------------------------------------------------------
# ledger IO
# ----------------------------------------------------------------------
def append_records(
    path: Union[str, Path], records: Iterable[BenchRecord]
) -> int:
    """Append records to a ledger file (created, with parents, if new)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(target, "a", encoding="utf-8") as fh:
        for rec in records:
            fh.write(rec.to_json())
            fh.write("\n")
            count += 1
    return count


def load_records(path: Union[str, Path]) -> List[BenchRecord]:
    """Load every record of one ledger file (skipping blank lines)."""
    out: List[BenchRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(BenchRecord.from_dict(json.loads(line)))
    return out


def latest_by_key(
    records: Iterable[BenchRecord],
) -> Dict[RecordKey, BenchRecord]:
    """Newest record per :attr:`BenchRecord.key` — files are
    append-only, so the last occurrence wins."""
    out: Dict[RecordKey, BenchRecord] = {}
    for rec in records:
        out[rec.key] = rec
    return out


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiffRow:
    """One compared metric: baseline vs current."""

    bench: str
    case: str
    metric: str
    base: float
    new: float
    #: (new - base) / |base|; inf when base == 0 and new != 0
    delta: float
    #: is this metric regression-gated (a modeled-time figure)?
    gated: bool
    #: gated and worsened beyond the threshold
    regressed: bool


@dataclass
class BenchDiff:
    """Outcome of one baseline comparison."""

    rows: List[DiffRow] = field(default_factory=list)
    #: baseline keys with no current measurement (informational)
    missing: List[RecordKey] = field(default_factory=list)
    #: current keys absent from the baseline (new coverage)
    added: List[RecordKey] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> List[DiffRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff_records(
    baseline: Iterable[BenchRecord],
    current: Iterable[BenchRecord],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    gated_substrings: Tuple[str, ...] = DEFAULT_GATED_SUBSTRINGS,
) -> BenchDiff:
    """Compare the newest current records against the baseline.

    A gated metric regresses when it *increases* by more than
    ``threshold`` relative to the baseline (modeled figures are costs:
    more is worse).  Ungated metrics are reported but never fail.
    """
    base_map = latest_by_key(baseline)
    cur_map = latest_by_key(current)
    out = BenchDiff(threshold=threshold)
    for key in sorted(base_map):
        base = base_map[key]
        cur = cur_map.get(key)
        if cur is None:
            out.missing.append(key)
            continue
        if base.value == 0.0:
            delta = 0.0 if cur.value == 0.0 else float("inf")
        else:
            delta = (cur.value - base.value) / abs(base.value)
        gated = any(sub in base.metric.lower() for sub in gated_substrings)
        regressed = gated and delta > threshold
        out.rows.append(
            DiffRow(
                bench=base.bench,
                case=base.case,
                metric=base.metric,
                base=base.value,
                new=cur.value,
                delta=delta,
                gated=gated,
                regressed=regressed,
            )
        )
    for key in sorted(set(cur_map) - set(base_map)):
        out.added.append(key)
    return out


def render_diff(diff: BenchDiff, *, show_all: bool = False) -> str:
    """Human-readable diff summary (``tools/bench_diff.py`` output)."""
    lines: List[str] = []
    shown = [
        r for r in diff.rows
        if show_all or r.regressed or (r.gated and abs(r.delta) > 0.0)
    ]
    if shown:
        lines.append(
            f"{'bench':<22} {'case':<34} {'metric':<32}"
            f" {'base':>12} {'new':>12} {'delta':>9} flag"
        )
        for r in shown:
            flag = "REGRESSED" if r.regressed else (
                "gated" if r.gated else ""
            )
            delta = (
                "inf" if r.delta == float("inf") else f"{r.delta:+.1%}"
            )
            lines.append(
                f"{r.bench:<22} {r.case[:34]:<34} {r.metric[:32]:<32}"
                f" {r.base:>12.6g} {r.new:>12.6g} {delta:>9} {flag}"
            )
    lines.append(
        f"compared {len(diff.rows)} metrics"
        f" ({sum(1 for r in diff.rows if r.gated)} gated,"
        f" threshold {diff.threshold:.0%}):"
        f" {len(diff.regressions)} regression(s),"
        f" {len(diff.missing)} missing, {len(diff.added)} new"
    )
    if diff.regressions:
        lines.append("FAIL: gated modeled-time metrics regressed")
    else:
        lines.append("OK: no gated regressions")
    return "\n".join(lines) + "\n"
