"""`repro.obs` — the unified observability layer.

Four parts, threading through the engine, cluster, workers, and both
execution backends:

1. **Hierarchical spans** (:mod:`repro.obs.events`) — a structured
   ``run → phase → superstep → rank_kernel`` event stream keyed on the
   deterministic modeled clock (byte-identical across runs/backends);
   wall time is annotation only.
2. **Metrics registry** (:mod:`repro.obs.registry`) — typed counters /
   gauges / histograms with well-known series for wire traffic, delta
   hit rate, queue depths, chaos accounting, and load imbalance.
3. **Convergence telemetry** (:mod:`repro.obs.convergence`) —
   per-superstep quality probes so anytime interruptions come with a
   quantified quality statement.
4. **Exporters** (:mod:`repro.obs.exporters`) — JSONL, Chrome
   trace-event/Perfetto, and Prometheus text, selected by
   ``FORMAT:PATH`` specs via :func:`build_hub` /
   ``AnytimeConfig.observers`` / CLI ``--trace-out``.

Instrumentation is zero-cost-when-off: every call site guards on
``hub.enabled`` and the default :data:`NULL_HUB` has no observers.
"""

from __future__ import annotations

from typing import Sequence, Union

from .convergence import ConvergenceProbe, DistanceOracle, exact_distance_oracle
from .events import EVENT_KINDS, EVENT_LEVELS, SpanEvent, canonical_line
from .exporters import (
    JSONLExporter,
    PerfettoExporter,
    PrometheusExporter,
    make_exporter,
    parse_spec,
)
from .history import (
    BenchDiff,
    BenchRecord,
    append_records,
    diff_records,
    load_records,
    records_from_report,
    records_from_rows,
    render_diff,
)
from .observer import NULL_HUB, NullObserver, Observer, ObserverHub
from .profile import (
    Profile,
    fold_cluster,
    fold_events,
    profile_to_perfetto,
    render_profile,
)
from .registry import Histogram, MetricsRegistry, SignalView
from .report import TraceReport, load_events, render_report
from .slo import (
    SLO_KINDS,
    SLOAlert,
    SLOEvaluator,
    SLOSample,
    SLOSpec,
    load_slo_specs,
    specs_from_json,
)

__all__ = [
    "EVENT_KINDS",
    "EVENT_LEVELS",
    "NULL_HUB",
    "SLO_KINDS",
    "BenchDiff",
    "BenchRecord",
    "ConvergenceProbe",
    "DistanceOracle",
    "Histogram",
    "JSONLExporter",
    "MetricsRegistry",
    "NullObserver",
    "Observer",
    "ObserverHub",
    "PerfettoExporter",
    "Profile",
    "PrometheusExporter",
    "SLOAlert",
    "SLOEvaluator",
    "SLOSample",
    "SLOSpec",
    "SignalView",
    "SpanEvent",
    "TraceReport",
    "append_records",
    "build_hub",
    "canonical_line",
    "diff_records",
    "exact_distance_oracle",
    "fold_cluster",
    "fold_events",
    "load_events",
    "load_records",
    "load_slo_specs",
    "make_exporter",
    "parse_spec",
    "profile_to_perfetto",
    "records_from_report",
    "records_from_rows",
    "render_diff",
    "render_profile",
    "render_report",
    "specs_from_json",
]

#: a spec is an exporter string (``"jsonl:PATH"``, ``"perfetto:PATH"``,
#: ``"prom:PATH"``), a keyword (``"metrics"``, ``"convergence"``), or a
#: ready-made :class:`Observer` / :class:`ConvergenceProbe` instance
ObserverSpec = Union[str, Observer, ConvergenceProbe]


def build_hub(specs: Sequence[object] = ()) -> ObserverHub:
    """Build an :class:`ObserverHub` from observer specs.

    Keywords: ``"metrics"`` enables in-memory instrumentation without
    writing any file (a :class:`NullObserver`), ``"convergence"``
    attaches a default :class:`ConvergenceProbe`.  An empty spec list
    returns the shared disabled :data:`NULL_HUB`.
    """
    if not specs:
        return NULL_HUB
    observers: list[Observer] = []
    probes: list[ConvergenceProbe] = []
    for spec in specs:
        if isinstance(spec, Observer):
            observers.append(spec)
        elif isinstance(spec, ConvergenceProbe):
            probes.append(spec)
        elif spec == "metrics":
            observers.append(NullObserver())
        elif spec == "convergence":
            probes.append(ConvergenceProbe())
        elif isinstance(spec, str):
            observers.append(make_exporter(spec))
        else:
            raise TypeError(
                f"observer spec must be a string, Observer, or"
                f" ConvergenceProbe, got {type(spec).__name__}"
            )
    return ObserverHub(observers, probes)
