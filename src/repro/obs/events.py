"""The structured event model of the observability layer.

One run produces a totally ordered stream of :class:`SpanEvent` records
arranged in a four-level hierarchy::

    run  >  phase  >  superstep  >  rank_kernel

* **run** — one ``engine.run()`` call (RC to convergence / budget),
* **phase** — one tracer phase (``domain_decomposition``,
  ``initial_approximation``, ``checkpoint``, ``fault_recovery``, ...),
* **superstep** — one RC step (``rc_step`` tracer records),
* **rank_kernel** — one rank's metered compute inside a BSP superstep.

Determinism contract: every field except ``wall`` is a pure function of
the algorithm's deterministic state — the event key is the **modeled
clock** (``t``), never the host clock — so the exported stream is
byte-identical across runs and across execution backends.  Wall time is
carried as an *annotation only* and is stripped before any
byte-comparison (see :func:`canonical_line`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

__all__ = [
    "EVENT_KINDS",
    "EVENT_LEVELS",
    "SpanEvent",
    "canonical_line",
]

#: the four span levels plus the synthetic levels metric dumps and SLO
#: alerts land on
EVENT_LEVELS = ("run", "phase", "superstep", "rank_kernel", "metrics", "slo")

#: ``begin``/``end`` delimit spans; ``point`` is an instant observation;
#: ``metric`` carries one metrics-registry series sample (per-superstep
#: counter tracks and the close-time flush); ``alert`` is an SLO state
#: transition emitted by the serve-loop SLO engine
EVENT_KINDS = ("begin", "end", "point", "metric", "alert")

#: attribute values are scalars so every exporter can serialize them
AttrValue = Union[float, int, str, bool]


@dataclass(frozen=True)
class SpanEvent:
    """One record of the observability stream."""

    #: monotone sequence number (deterministic tiebreak for equal ``t``)
    seq: int
    #: one of :data:`EVENT_KINDS`
    kind: str
    #: one of :data:`EVENT_LEVELS`
    level: str
    #: span / probe / series name (e.g. ``"rc_step"``, ``"convergence"``)
    name: str
    #: modeled-clock timestamp in seconds — the deterministic event key
    t: float
    #: RC step the event belongs to, when applicable
    step: Optional[int] = None
    #: rank the event belongs to (``rank_kernel`` level), when applicable
    rank: Optional[int] = None
    #: deterministic scalar payload (modeled times, counts, ratios)
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    #: wall-clock annotation; never part of the deterministic identity
    wall: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict with a stable field set (schema-validated)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "level": self.level,
            "name": self.name,
            "t": self.t,
            "step": self.step,
            "rank": self.rank,
            "attrs": dict(self.attrs),
            "wall": self.wall,
        }

    def to_json(self) -> str:
        """One deterministic JSON line (keys sorted, wall included)."""
        return json.dumps(self.to_dict(), sort_keys=True)


def canonical_line(line: str) -> str:
    """A JSONL event line with its wall annotation nulled.

    Byte-identity tests compare canonical lines: two runs (or two
    backends) must agree on everything except how long the host took.
    """
    obj = json.loads(line)
    obj["wall"] = None
    return json.dumps(obj, sort_keys=True)
