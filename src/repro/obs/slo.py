"""Declarative SLOs over the streaming serve loop.

An :class:`SLOSpec` states one objective about the serving behaviour of
the anytime pipeline; an :class:`SLOEvaluator` judges every
:class:`~repro.serve.service.UpdateService` tick against the loaded
specs and emits :class:`SLOAlert` state transitions (``firing`` /
``resolved``).

Evaluation is **deterministic**: every input derives from the modeled
clock and modeled quantities (tick modeled latency, convergence-probe
residuals, delta-hit rate, degraded flags, per-rank health states), so
two runs of the same seeded scenario — on either backend — produce
byte-identical alert streams.  The evaluator is also **non-perturbing**:
it only reads the engine's :class:`~repro.obs.registry.SignalView` and
the tick's :class:`~repro.core.engine.RunResult`; it never touches the
clock or algorithm state.

Objective kinds (:data:`SLO_KINDS`):

* ``tick_latency`` — the nearest-rank ``percentile`` of per-tick
  modeled seconds over the last ``window`` ticks must stay at or below
  ``threshold``.  Burn rate = statistic / threshold.
* ``staleness`` — the convergence probe's ``residual_max`` must stay at
  or below ``threshold``; ticks above it are *bad* and may consume at
  most a ``budget_fraction`` of the window.  (No probe attached ⇒ the
  objective reports no data and never fires.)
* ``delta_hit_rate`` — the sparse-delta hit rate must stay at or above
  the ``threshold`` floor (bad ticks budgeted as above; ticks before
  any boundary row ships carry no data).
* ``degraded_budget`` — degraded ticks (graceful-degradation exits)
  burn the window's ``budget_fraction``; the evaluator fires only when
  the budget is exhausted, it never crashes on degraded results.
* ``rank_health`` — the worst per-rank health state (0=healthy,
  1=suspect, 2=degraded, 3=dead) must stay at or below ``threshold``.

For budgeted kinds, burn rate = bad fraction / budget fraction (bad
tick *count* when the budget is zero), so ``burn >= 1`` exactly when
the objective fires.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError

__all__ = [
    "SLO_KINDS",
    "SLOAlert",
    "SLOEvaluator",
    "SLOSample",
    "SLOSpec",
    "load_slo_specs",
    "specs_from_json",
]

#: the objective kinds the evaluator knows how to judge
SLO_KINDS = (
    "tick_latency",
    "staleness",
    "delta_hit_rate",
    "degraded_budget",
    "rank_health",
)

#: kinds judged by bad-tick budget rather than a windowed percentile
_BUDGETED_KINDS = frozenset(SLO_KINDS) - {"tick_latency"}


def _fmt(value: float) -> str:
    """Canonical float rendering for alert lines (deterministic)."""
    return f"{value:.9g}"


@dataclass(frozen=True)
class SLOSpec:
    """One declarative serving objective."""

    #: unique objective name (one token; appears in canonical lines)
    name: str
    #: one of :data:`SLO_KINDS`
    kind: str
    #: the objective bound (seconds / residual / rate / state / count)
    threshold: float
    #: sliding evaluation window, in service ticks
    window: int = 8
    #: tolerated bad-tick fraction of the window (budgeted kinds)
    budget_fraction: float = 0.0
    #: nearest-rank percentile evaluated by ``tick_latency`` (0..1]
    percentile: float = 0.95
    #: free-text annotation (never enters canonical lines)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ConfigurationError(
                f"slo name must be one non-empty token, got {self.name!r}"
            )
        if self.kind not in SLO_KINDS:
            raise ConfigurationError(
                f"unknown slo kind {self.kind!r}; choose from {SLO_KINDS}"
            )
        if self.threshold < 0.0:
            raise ConfigurationError(
                f"slo {self.name!r}: threshold must be >= 0"
            )
        if self.kind == "tick_latency" and self.threshold <= 0.0:
            raise ConfigurationError(
                f"slo {self.name!r}: tick_latency threshold must be > 0"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"slo {self.name!r}: window must be >= 1 ticks"
            )
        if not 0.0 <= self.budget_fraction < 1.0:
            raise ConfigurationError(
                f"slo {self.name!r}: budget_fraction must be in [0, 1)"
            )
        if not 0.0 < self.percentile <= 1.0:
            raise ConfigurationError(
                f"slo {self.name!r}: percentile must be in (0, 1]"
            )

    def describe(self) -> str:
        """One-line human summary of the objective."""
        if self.kind == "tick_latency":
            return (
                f"{self.name}: p{self.percentile * 100:g} tick modeled"
                f" latency <= {_fmt(self.threshold)}s over {self.window}"
                " ticks"
            )
        relation = ">=" if self.kind == "delta_hit_rate" else "<="
        return (
            f"{self.name}: {self.kind} {relation} {_fmt(self.threshold)}"
            f" for >= {_fmt(1.0 - self.budget_fraction)} of"
            f" {self.window} ticks"
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "window": self.window,
            "budget_fraction": self.budget_fraction,
            "percentile": self.percentile,
        }
        if self.description:
            out["description"] = self.description
        return out


@dataclass(frozen=True)
class SLOSample:
    """The deterministic inputs one service tick exposes to evaluation."""

    #: service tick index
    tick: int
    #: engine modeled clock after the tick (alert timestamp key)
    t: float
    #: modeled seconds this tick advanced the clock by
    tick_seconds: float
    #: convergence-probe ``residual_max`` (None = no probe attached)
    residual_max: Optional[float] = None
    #: sparse-delta hit rate (None until any boundary row shipped)
    delta_hit_rate: Optional[float] = None
    #: did this tick's run exit via graceful degradation?
    degraded: bool = False
    #: worst per-rank health state (None = no health monitor)
    rank_health_max: Optional[float] = None


@dataclass(frozen=True)
class SLOAlert:
    """One SLO state transition (``firing`` or ``resolved``)."""

    tick: int
    #: modeled clock at the transition
    t: float
    slo: str
    kind: str
    #: ``"firing"`` | ``"resolved"``
    state: str
    #: the evaluated statistic at the transition
    value: float
    threshold: float
    burn_rate: float
    bad_ticks: int
    window: int

    def line(self) -> str:
        """Canonical one-line form (pinned byte-for-byte in CI)."""
        return (
            f"slo={self.slo} state={self.state} kind={self.kind}"
            f" tick={self.tick} t={self.t:.6f} value={_fmt(self.value)}"
            f" threshold={_fmt(self.threshold)}"
            f" burn={_fmt(self.burn_rate)} bad={self.bad_ticks}"
            f" window={self.window}"
        )

    def attrs(self) -> Dict[str, Union[float, int, str, bool]]:
        """Deterministic scalar payload for the ``alert`` trace event."""
        return {
            "kind": self.kind,
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "burn_rate": self.burn_rate,
            "bad_ticks": self.bad_ticks,
            "window": self.window,
        }


def _percentile_nearest_rank(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    # ceil(q * n), guarded against float drift on exact multiples
    rank = max(1, math.ceil(q * len(ordered) - 1e-12))
    return ordered[min(rank, len(ordered)) - 1]


class _SpecState:
    """Sliding-window state of one spec inside the evaluator."""

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        #: tick_latency: recent values; budgeted kinds: recent bad flags
        self.values: Deque[float] = deque(maxlen=spec.window)
        self.bad: Deque[bool] = deque(maxlen=spec.window)
        self.firing = False
        self.samples = 0
        self.transitions = 0

    # ------------------------------------------------------------------
    def extract(self, sample: SLOSample) -> Tuple[Optional[float], bool]:
        """The tick's (value, bad) under this spec; value None = no data."""
        spec = self.spec
        if spec.kind == "tick_latency":
            return sample.tick_seconds, sample.tick_seconds > spec.threshold
        if spec.kind == "staleness":
            if sample.residual_max is None:
                return None, False
            return sample.residual_max, sample.residual_max > spec.threshold
        if spec.kind == "delta_hit_rate":
            if sample.delta_hit_rate is None:
                return None, False
            return (
                sample.delta_hit_rate,
                sample.delta_hit_rate < spec.threshold,
            )
        if spec.kind == "degraded_budget":
            value = 1.0 if sample.degraded else 0.0
            return value, sample.degraded
        # rank_health
        if sample.rank_health_max is None:
            return None, False
        return (
            sample.rank_health_max,
            sample.rank_health_max > spec.threshold,
        )

    def observe(self, sample: SLOSample) -> Optional[SLOAlert]:
        """Advance the window by one tick; return a transition, if any."""
        spec = self.spec
        value, bad = self.extract(sample)
        if value is None:
            # no data: the window does not advance and the state holds
            return None
        self.samples += 1
        self.values.append(value)
        self.bad.append(bad)
        if spec.kind == "tick_latency":
            stat = _percentile_nearest_rank(
                list(self.values), spec.percentile
            )
            now_firing = stat > spec.threshold
            burn = stat / spec.threshold
            reported = stat
        else:
            bad_count = sum(1 for b in self.bad if b)
            fraction = bad_count / len(self.bad)
            now_firing = fraction > spec.budget_fraction
            if spec.budget_fraction > 0.0:
                burn = fraction / spec.budget_fraction
            else:
                burn = float(bad_count)
            reported = value
        if now_firing == self.firing:
            return None
        self.firing = now_firing
        self.transitions += 1
        return SLOAlert(
            tick=sample.tick,
            t=sample.t,
            slo=spec.name,
            kind=spec.kind,
            state="firing" if now_firing else "resolved",
            value=reported,
            threshold=spec.threshold,
            burn_rate=burn,
            bad_ticks=sum(1 for b in self.bad if b),
            window=spec.window,
        )

    def status(self) -> Dict[str, Any]:
        spec = self.spec
        bad_count = sum(1 for b in self.bad if b)
        if spec.kind == "tick_latency":
            burn = (
                _percentile_nearest_rank(list(self.values), spec.percentile)
                / spec.threshold
                if self.values
                else 0.0
            )
        elif spec.budget_fraction > 0.0 and self.bad:
            burn = (bad_count / len(self.bad)) / spec.budget_fraction
        else:
            burn = float(bad_count)
        return {
            "slo": spec.name,
            "kind": spec.kind,
            "state": "firing" if self.firing else "ok",
            "threshold": spec.threshold,
            "burn_rate": burn,
            "bad_ticks": bad_count,
            "window": spec.window,
            "samples": self.samples,
            "transitions": self.transitions,
        }


class SLOEvaluator:
    """Judges every service tick against a set of :class:`SLOSpec`s.

    Purely functional over the tick's :class:`SLOSample` plus its own
    sliding windows — no clocks, no randomness — so the alert stream is
    a deterministic function of the serve scenario.
    """

    def __init__(self, specs: Sequence[SLOSpec]) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(f"duplicate slo names: {dupes}")
        self.specs: Tuple[SLOSpec, ...] = tuple(specs)
        self._states: List[_SpecState] = [_SpecState(s) for s in specs]
        #: every transition so far, in emission order
        self.alerts: List[SLOAlert] = []

    def observe(self, sample: SLOSample) -> List[SLOAlert]:
        """Evaluate one tick; return (and record) new transitions."""
        out: List[SLOAlert] = []
        for state in self._states:
            alert = state.observe(sample)
            if alert is not None:
                out.append(alert)
        self.alerts.extend(out)
        return out

    def status(self) -> List[Dict[str, Any]]:
        """Current state of every objective (for summaries/reports)."""
        return [state.status() for state in self._states]

    @property
    def firing(self) -> List[str]:
        """Names of objectives currently in violation."""
        return [s.spec.name for s in self._states if s.firing]


# ----------------------------------------------------------------------
# spec loading
# ----------------------------------------------------------------------
def specs_from_json(data: Any) -> List[SLOSpec]:
    """Build specs from parsed JSON: a list of spec objects, or an
    object with a ``"slos"`` list (the schema-validated file form)."""
    if isinstance(data, dict):
        data = data.get("slos")
    if not isinstance(data, list):
        raise ConfigurationError(
            "slo specs must be a JSON array (or an object with a"
            " 'slos' array)"
        )
    specs: List[SLOSpec] = []
    for i, raw in enumerate(data):
        if not isinstance(raw, dict):
            raise ConfigurationError(f"slo spec #{i} is not an object")
        known = {
            "name", "kind", "threshold", "window", "budget_fraction",
            "percentile", "description",
        }
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ConfigurationError(
                f"slo spec #{i}: unknown fields {unknown}"
            )
        try:
            specs.append(
                SLOSpec(
                    name=str(raw["name"]),
                    kind=str(raw["kind"]),
                    threshold=float(raw["threshold"]),
                    window=int(raw.get("window", 8)),
                    budget_fraction=float(raw.get("budget_fraction", 0.0)),
                    percentile=float(raw.get("percentile", 0.95)),
                    description=str(raw.get("description", "")),
                )
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"slo spec #{i}: missing required field {exc.args[0]!r}"
            ) from None
    return specs


def load_slo_specs(path: str) -> List[SLOSpec]:
    """Load and validate an SLO spec file (JSON)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return specs_from_json(data)
