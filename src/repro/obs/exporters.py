"""Pluggable trace exporters: JSONL, Chrome trace-event, Prometheus.

Exporters are :class:`~repro.obs.observer.Observer` subclasses selected
by spec string (``"FORMAT:PATH"``) from :data:`AnytimeConfig.observers`
or the CLI ``--trace-out`` flag:

* ``jsonl:PATH`` — one :class:`SpanEvent` JSON object per line, in
  emission order.  The deterministic archival format; `repro report`
  and the byte-identity tests consume it.
* ``perfetto:PATH`` — Chrome trace-event JSON (``{"traceEvents": []}``)
  loadable in ``ui.perfetto.dev`` / ``chrome://tracing``.  Timestamps
  are the modeled clock in microseconds; rank kernels land on one
  thread track per rank.
* ``prom:PATH`` — Prometheus text-exposition dump of the final metrics
  registry (written at close; events are ignored).

All writes are plain-text UTF-8 and deterministic except the ``wall``
annotation on JSONL events (strip with
:func:`repro.obs.events.canonical_line` before byte comparison).
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional

from .events import SpanEvent
from .observer import Observer
from .registry import MetricsRegistry

__all__ = [
    "JSONLExporter",
    "PerfettoExporter",
    "PrometheusExporter",
    "make_exporter",
    "parse_spec",
]


class JSONLExporter(Observer):
    """Streams events to a JSON-lines file (one event per line)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[IO[str]] = None

    def on_event(self, event: SpanEvent) -> None:
        if self._fh is None:
            self._fh = open(self.path, "w", encoding="utf-8")
        self._fh.write(event.to_json())
        self._fh.write("\n")

    def close(self, registry: MetricsRegistry) -> None:
        if self._fh is None:
            # no events — still leave a valid (empty) export behind
            self._fh = open(self.path, "w", encoding="utf-8")
        self._fh.close()
        self._fh = None


#: trace-event thread ids: run/phase/superstep spans share the main
#: track; rank kernels get one track per rank (tid = rank + 1)
_MAIN_TID = 0


class PerfettoExporter(Observer):
    """Buffers events and writes Chrome trace-event JSON at close."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._events: List[Dict[str, object]] = []
        self._max_rank = -1

    @staticmethod
    def _us(t: float) -> float:
        return t * 1e6

    def on_event(self, event: SpanEvent) -> None:
        tid = _MAIN_TID if event.rank is None else event.rank + 1
        if event.rank is not None and event.rank > self._max_rank:
            self._max_rank = event.rank
        args: Dict[str, object] = dict(event.attrs)
        if event.step is not None:
            args["step"] = event.step
        base: Dict[str, object] = {
            "name": event.name,
            "cat": event.level,
            "ts": self._us(event.t),
            "pid": 0,
            "tid": tid,
        }
        if event.kind == "begin":
            self._events.append({**base, "ph": "B", "args": args})
        elif event.kind == "end":
            self._events.append({**base, "ph": "E", "args": args})
        elif event.kind == "point":
            dur = event.attrs.get("modeled_seconds")
            if event.level == "rank_kernel" and isinstance(
                dur, (int, float)
            ):
                # render metered kernels as complete slices on the
                # rank's track instead of zero-width instants
                self._events.append(
                    {**base, "ph": "X", "dur": self._us(float(dur)),
                     "args": args}
                )
            else:
                self._events.append(
                    {**base, "ph": "i", "s": "t", "args": args}
                )
        elif event.kind == "metric":
            value = event.attrs.get("value", 0)
            self._events.append(
                {**base, "ph": "C", "args": {"value": value}}
            )
        elif event.kind == "alert":
            # SLO state transitions: global-scope instants so they are
            # visible across every track in the viewer
            self._events.append({**base, "ph": "i", "s": "g", "args": args})

    def close(self, registry: MetricsRegistry) -> None:
        meta: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": _MAIN_TID,
                "args": {"name": "repro (modeled clock)"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": _MAIN_TID,
                "args": {"name": "coordinator"},
            },
        ]
        for rank in range(self._max_rank + 1):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": rank + 1,
                    "args": {"name": f"rank {rank}"},
                }
            )
        doc = {
            "traceEvents": meta + self._events,
            "displayTimeUnit": "ms",
        }
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
        self._events = []


class PrometheusExporter(Observer):
    """Writes the final metrics registry as Prometheus text at close."""

    def __init__(self, path: str) -> None:
        self.path = path

    def close(self, registry: MetricsRegistry) -> None:
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(registry.render_prometheus())


_FORMATS = ("jsonl", "perfetto", "prom")


def parse_spec(spec: str) -> "tuple[str, str]":
    """Split a ``FORMAT:PATH`` exporter spec, validating the format."""
    fmt, sep, path = spec.partition(":")
    fmt = fmt.strip().lower()
    if fmt == "prometheus":
        fmt = "prom"
    if not sep or not path or fmt not in _FORMATS:
        raise ValueError(
            f"invalid exporter spec {spec!r}; expected FORMAT:PATH with "
            f"FORMAT one of {_FORMATS}"
        )
    return fmt, path


def make_exporter(spec: str) -> Observer:
    """Build an exporter from a ``FORMAT:PATH`` spec string."""
    fmt, path = parse_spec(spec)
    if fmt == "jsonl":
        return JSONLExporter(path)
    if fmt == "perfetto":
        return PerfettoExporter(path)
    return PrometheusExporter(path)
